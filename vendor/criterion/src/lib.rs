//! Vendored stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! workspace ships the subset of criterion its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling this harness runs each
//! benchmark for a small fixed number of iterations and prints the mean
//! wall-clock time per iteration — enough to compare orders of magnitude
//! and to keep `cargo bench` fast, while preserving source compatibility
//! with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (after one warm-up call).
const ITERATIONS: u32 = 10;

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `pci/x2_y2_c3`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark identifier by `bench_function` /
/// `bench_with_input`.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then [`ITERATIONS`] timed calls.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.mean = start.elapsed() / ITERATIONS;
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into_id(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the fixed iteration count is not
    /// affected.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; ignored.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_id(), f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (printing-only in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, mut f: F) {
    let mut bencher = Bencher {
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!(
        "bench {full:<60} {:>12.3} µs/iter",
        bencher.mean.as_secs_f64() * 1e6
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("plain", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
        assert!(calls > 0);
    }

    criterion_group!(test_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn macro_generated_group_runs() {
        test_group();
    }
}
