//! Vendored stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! workspace ships the subset of criterion its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling this harness runs each
//! benchmark for a small fixed number of iterations and prints the mean
//! wall-clock time per iteration — enough to compare orders of magnitude
//! and to keep `cargo bench` fast, while preserving source compatibility
//! with the real crate.
//!
//! ## Trajectory file
//!
//! In addition to printing, every measurement is recorded in a process-wide
//! registry; [`criterion_main!`] flushes the registry on exit by appending
//! one JSON line to a trajectory file (`BENCH_results.json` in the working
//! directory, overridable through the `PCQ_BENCH_RESULTS` environment
//! variable). Each line is a self-contained run record
//! `{"bench": …, "unix_ms": …, "results": [{"id": …, "mean_ns": …}, …]}`,
//! so appending across runs yields a machine-readable performance
//! trajectory that CI can archive and diff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Number of timed iterations per benchmark (after one warm-up call).
const ITERATIONS: u32 = 10;

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `pci/x2_y2_c3`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark identifier by `bench_function` /
/// `bench_with_input`.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then [`ITERATIONS`] timed calls.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.mean = start.elapsed() / ITERATIONS;
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into_id(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the fixed iteration count is not
    /// affected.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; ignored.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_id(), f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (printing-only in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, mut f: F) {
    let mut bencher = Bencher {
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!(
        "bench {full:<60} {:>12.3} µs/iter",
        bencher.mean.as_secs_f64() * 1e6
    );
    results().lock().unwrap().push(BenchRecord {
        id: full,
        mean_ns: bencher.mean.as_nanos(),
    });
}

/// One measured benchmark: its full id (`group/function/param`) and the
/// mean wall-clock time per iteration in nanoseconds.
struct BenchRecord {
    id: String,
    mean_ns: u128,
}

fn results() -> &'static Mutex<Vec<BenchRecord>> {
    static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
    &RESULTS
}

/// Default trajectory file name, relative to the working directory of the
/// bench process (for `cargo bench` that is the bench crate's root).
pub const DEFAULT_TRAJECTORY_FILE: &str = "BENCH_results.json";

/// Environment variable overriding the trajectory file path.
pub const TRAJECTORY_PATH_ENV: &str = "PCQ_BENCH_RESULTS";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_run_record(bench: &str, unix_ms: u128, records: &[BenchRecord]) -> String {
    let results: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                r#"{{"id":"{}","mean_ns":{}}}"#,
                json_escape(&r.id),
                r.mean_ns
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"{}\",\"unix_ms\":{},\"results\":[{}]}}",
        json_escape(bench),
        unix_ms,
        results.join(",")
    )
}

/// The bench-binary name: the executable's file stem with cargo's trailing
/// `-<hash>` disambiguator stripped (e.g. `cq_eval-687d…` → `cq_eval`).
fn bench_name() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, suffix))
            if !suffix.is_empty() && suffix.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Appends the recorded measurements of this process to the trajectory file
/// and clears the registry. Called by [`criterion_main!`] after all groups
/// have run; a no-op when nothing was measured. Failures to write are
/// reported on stderr but never fail the bench run.
pub fn flush_results_to_trajectory() {
    let records: Vec<BenchRecord> = std::mem::take(&mut *results().lock().unwrap());
    if records.is_empty() {
        return;
    }
    let path =
        std::env::var(TRAJECTORY_PATH_ENV).unwrap_or_else(|_| DEFAULT_TRAJECTORY_FILE.to_string());
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let line = render_run_record(&bench_name(), unix_ms, &records);
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    match written {
        Ok(()) => println!("bench trajectory appended to {path}"),
        Err(e) => eprintln!("warning: cannot append bench trajectory to {path}: {e}"),
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target. After all groups
/// have run, appends the measurements to the trajectory file (see the
/// crate-level documentation).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_results_to_trajectory();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("plain", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
        assert!(calls > 0);
    }

    criterion_group!(test_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn macro_generated_group_runs() {
        test_group();
    }

    #[test]
    fn run_records_render_as_one_json_line() {
        let records = vec![
            BenchRecord {
                id: "g/a".to_string(),
                mean_ns: 1500,
            },
            BenchRecord {
                id: "g/b\"quoted\"".to_string(),
                mean_ns: 0,
            },
        ];
        let line = render_run_record("cq_eval", 42, &records);
        assert_eq!(
            line,
            r#"{"bench":"cq_eval","unix_ms":42,"results":[{"id":"g/a","mean_ns":1500},{"id":"g/b\"quoted\"","mean_ns":0}]}"#
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn bench_name_strips_cargo_hash_suffix() {
        // bench_name() reads argv0 of the test binary, which cargo names
        // `criterion-<hex>`; the suffix must be stripped.
        assert_eq!(bench_name(), "criterion");
    }

    #[test]
    fn flushing_appends_to_the_trajectory_file() {
        let dir = std::env::temp_dir().join(format!("criterion-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        for run in 0..2 {
            let line = render_run_record(
                "demo",
                run,
                &[BenchRecord {
                    id: "g/x".to_string(),
                    mean_ns: 7,
                }],
            );
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{line}").unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2, "one JSON record per run");
        assert!(content
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
