//! Vendored no-op stand-in for `serde_derive`.
//!
//! The build environment for this repository has no network access, and
//! nothing in the workspace actually serializes data yet — the
//! `#[derive(serde::Serialize, serde::Deserialize)]` attributes on the core
//! types only declare intent. These derives therefore expand to nothing:
//! the annotated types compile unchanged, `#[serde(...)]` helper attributes
//! are accepted and ignored, and no trait impls are generated. Swapping the
//! real serde back in (root `Cargo.toml`) restores full serialization
//! without touching any annotated type.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts the input (and `#[serde(...)]`
/// helper attributes) and generates no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts the input (and `#[serde(...)]`
/// helper attributes) and generates no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
