//! Vendored stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace ships the subset of proptest it uses: the [`Strategy`] trait
//! with `prop_map` / `prop_shuffle`, range and tuple strategies, [`Just`],
//! [`collection::vec`], the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the standard assertion message; it is not minimized first.
//! * **Fully deterministic.** Each `proptest!` test derives its RNG seed
//!   from [`test_runner::Config::rng_seed`] (fixed, overridable) and the
//!   test's `module_path!()::name`, so `cargo test` is reproducible run to
//!   run and machine to machine.
//!
//! The names and call shapes mirror proptest 1.x so the workspace can switch
//! back to the real crate by editing one line in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Default seed mixed into every per-test RNG. Change `rng_seed` in a
    /// test's `proptest_config` to explore a different deterministic stream.
    pub const DEFAULT_RNG_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base seed for the deterministic per-test RNG.
        pub rng_seed: u64,
    }

    impl Config {
        /// A config running `cases` cases with the default fixed seed.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                rng_seed: DEFAULT_RNG_SEED,
            }
        }

        /// Overrides the base RNG seed, keeping determinism.
        pub fn with_rng_seed(mut self, seed: u64) -> Self {
            self.rng_seed = seed;
            self
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config::with_cases(256)
        }
    }

    /// Deterministic RNG driving strategy generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for one property: FNV-1a over the test's full path
        /// mixed with the config seed, so distinct tests draw distinct but
        /// reproducible streams.
        pub fn deterministic(test_path: &str, base_seed: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ base_seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// The [`Strategy`] trait and the combinators used by the workspace.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// just draws a value from the deterministic [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Shuffles the generated collection (Fisher-Yates).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { source: self }
        }
    }

    /// Strategy that always produces a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_shuffle`].
    #[derive(Clone)]
    pub struct Shuffle<S> {
        source: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut items = self.source.generate(rng);
            for i in (1..items.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                items.swap(i, j);
            }
            items
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

// The inclusive-range helper above needs gen_range(Range<usize>) only; keep
// the blanket impl local to strategy.rs usage.

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, with an optional
/// formatted message. Panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro's grammar the workspace uses:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comments and a `#[test]` attribute before each property are
///     /// accepted (and the attribute is implied).
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0..3usize, 1..5)) {
///         prop_assert!(x < 10);
///         prop_assert!(v.len() < 5);
///     }
/// }
/// ```
///
/// Each property becomes a `#[test]` that replays `cases` deterministic
/// inputs derived from the config seed and the test's path.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.rng_seed,
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::{Config, TestRng};

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::deterministic("tests::bounds", 1);
        let strat = (
            0usize..4,
            10u64..20,
            crate::collection::vec(0usize..3, 1..6),
        );
        for _ in 0..200 {
            let (a, b, v) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::deterministic("tests::shuffle", 2);
        let strat = crate::strategy::Just((0..10usize).collect::<Vec<_>>()).prop_shuffle();
        for _ in 0..50 {
            let mut p = strat.generate(&mut rng);
            p.sort_unstable();
            assert_eq!(p, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = TestRng::deterministic("tests::det", 3);
            let strat = crate::collection::vec(0usize..100, 5..6);
            strat.generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    crate::proptest! {
        #![proptest_config(Config::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..5, y in 0usize..5) {
            crate::prop_assert!(x < 5 && y < 5);
            crate::prop_assert_eq!(x + y, y + x);
        }
    }
}
