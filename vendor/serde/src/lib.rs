//! Vendored stand-in for the crates.io `serde` crate.
//!
//! The build environment for this repository has no network access, so this
//! crate provides just enough of serde's surface for the workspace to
//! compile: the [`Serialize`] / [`Deserialize`] traits (with the simplified
//! [`Serializer`] / [`Deserializer`] contracts the manual `Symbol` impls in
//! `cq::intern` rely on) and re-exported no-op derive macros. No data
//! format ships with it; restoring the real serde is a one-line change in
//! the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Simplified serializer contract: the workspace only ever serializes
/// interned strings.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serializes a string slice.
    fn serialize_str(self, value: &str) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Simplified deserializer contract: the workspace only ever deserializes
/// strings (which are then re-interned).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error;

    /// Reads an owned string.
    fn read_string(self) -> Result<String, Self::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.read_string()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StringSerializer;

    impl Serializer for StringSerializer {
        type Ok = String;
        type Error = ();

        fn serialize_str(self, value: &str) -> Result<String, ()> {
            Ok(value.to_owned())
        }
    }

    struct StringDeserializer(String);

    impl<'de> Deserializer<'de> for StringDeserializer {
        type Error = ();

        fn read_string(self) -> Result<String, ()> {
            Ok(self.0)
        }
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Annotated {
        #[serde(skip)]
        _field: u32,
    }

    #[test]
    fn string_roundtrip() {
        let out = "hello".serialize(StringSerializer).unwrap();
        assert_eq!(out, "hello");
        let back = String::deserialize(StringDeserializer(out)).unwrap();
        assert_eq!(back, "hello");
    }
}
