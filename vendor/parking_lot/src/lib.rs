//! Vendored stand-in for the crates.io `parking_lot` crate.
//!
//! The build environment for this repository has no network access, so this
//! crate wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! API (the subset the workspace uses: [`RwLock`] and [`Mutex`]). Poisoned
//! locks are recovered rather than propagated, matching `parking_lot`'s
//! behavior of not poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock whose guard never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
