//! Vendored stand-in for the crates.io `rand` crate (0.8 API surface).
//!
//! The build environment for this repository has no network access, so the
//! workspace ships the small, dependency-free subset of `rand` it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and the
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] methods. All
//! generators are deterministic (SplitMix64), which the property-based and
//! experiment suites rely on for reproducibility.
//!
//! The implementation intentionally mirrors the names and call shapes of
//! `rand` 0.8 so the workspace can switch back to the real crate by editing
//! one line in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64` in `[0, 1)`, uniform `u64`/`u32`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics on empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be sampled by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits -> [0, 1), the same construction rand uses.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is irrelevant for the tiny spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for rand's
    /// `StdRng`; statistically far weaker, but more than adequate for
    /// generating small test workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_generic(&mut &mut rng);
        assert!(v < 10);
    }
}
