//! `pcq-analyze` — command-line static analyzer for parallel-correctness and
//! transferability of conjunctive queries.
//!
//! ```text
//! USAGE:
//!   pcq-analyze analyze    <query>
//!   pcq-analyze pc         <query> <policy-file>
//!   pcq-analyze transfer   <query-from> <query-to> [--no-skip | --strongly-minimal]
//!   pcq-analyze hypercube  <query> <query-prime>
//!   pcq-analyze run        <query> <policy> <instance> [--workers N] [--json]
//!                          [--rounds N] [--schedule S] [--feedback R]
//!                          [--streaming] [--semi-naive]
//!                          [--distribute-workers N]
//!                          [--join-strategy binary|multiway|auto]
//!                          [--transport memory|process|socket]
//!                          [--fault-inject N] [--trace FILE]
//!                          [--metrics FILE] [--slow-eval-us N]
//!   pcq-analyze run        --scenario <file.pcq> [--json] [--workers N]
//!                          [--rounds N] [--feedback R] [--semi-naive]
//!                          [--transport T] [--reshuffle-always]
//!                          [--trace FILE] [--metrics FILE]
//!   pcq-analyze trace      summarize <trace.json> [--json]
//!   pcq-analyze trace      diff <base.json> <new.json> [--json]
//!                          [--threshold PCT] [--min-us N]
//!   pcq-analyze encode     (query|instance|scenario) <spec>
//!   pcq-analyze decode
//!   pcq-analyze worker     [--connect host:port --token K] [--fail-after N]
//!                          [--slow-eval-us N]
//!   pcq-analyze bench-diff <trajectory-file> [--threshold-pct P]
//!                          [--min-ns N] [--window N] [--bench NAME]...
//!
//! ARGUMENTS:
//!   <query>        a named workload family (triangle, example3.5,
//!                  chain:<len>, star:<rays>, cycle:<len>), a file path, or a
//!                  literal query such as "T(x, z) :- R(x, y), R(y, z)."
//!   <policy-file>  a text file with one line per node:
//!                      n0: R(a, b) R(b, c)
//!                      n1: R(b, a)
//!                  an optional line `default: n0 n1` assigns unlisted facts.
//!   <policy>       hypercube:<budget>, broadcast:<nodes>,
//!                  round-robin:<nodes>, or a policy file as above.
//!   <instance>     random:<domain>:<facts>[:seed],
//!                  zipf:<domain>:<facts>:<exponent-percent>[:seed], a file
//!                  of facts, or literal facts such as "R(a, b). R(b, c)."
//!   <file.pcq>     a scenario file in the wire crate's textual format:
//!                  query (or a `queries { … }` sequence), instance,
//!                  schedule, rounds, feedback in one file.
//! ```
//!
//! `run` reshuffles the instance under the policy and evaluates the query
//! through the one-round engine, reporting result size, per-node load and
//! per-node timings (`--json` for machine-readable output, emitted through
//! the `wire::json` serializer). With `--rounds N` it iterates
//! distribute→evaluate cycles through the multi-round engine instead:
//! `--schedule` names per-round policies (`hash-join:<k>,hypercube:<b>,…`;
//! default: the `<policy>` argument every round), `--feedback R` renames
//! each round's outputs into relation `R` before the next reshuffle
//! (making the query effectively recursive), and the result is compared
//! against the global fixpoint of the centralized iterated query.
//! `--streaming` streams chunks to workers instead of materializing them;
//! `--semi-naive` switches the rounds to incremental mode: only the facts
//! new since the previous round are reshuffled, nodes keep their
//! accumulated state across rounds, and each local evaluation is one
//! differential pass over the delta — the final result is identical to
//! full re-evaluation, the late-round work is not (requires a
//! `--distribute-workers` shards the reshuffle
//! phase. `--join-strategy` picks the local join algorithm every node runs
//! (`binary` = pairwise hash joins, `multiway` = the leapfrog-style
//! worst-case-optimal join, `auto` = multiway exactly for cyclic queries;
//! default auto); the options travel with every round, so wire workers
//! and the multi-round engine honor them too. With
//! `--transport process` local evaluation leaves this process entirely:
//! chunks are binary-encoded and shipped over stdio pipes to `--workers N`
//! `pcq-analyze worker` subprocesses; `--transport socket` carries the
//! same protocol over TCP — the coordinator binds a loopback listener and
//! each worker connects back with `--connect host:port --token K`. Both
//! wire transports pipeline several jobs per worker and survive a worker
//! dying mid-round by requeueing its unanswered jobs onto the survivors;
//! `--fault-inject N` demonstrates that path by making worker 0 die after
//! N eval jobs (requires ≥ 2 workers and a wire transport). `--scenario
//! file.pcq` replaces the three positional specs with one scenario file.
//! A scenario may list several queries in a `queries { … }` block: the
//! engine runs them in sequence over the same instance and checks
//! **pc-transferability** between consecutive queries — when
//! parallel-correctness transfers, the next query's reshuffle is elided
//! and it evaluates directly on the shards resident from its predecessor;
//! when it does not transfer, the instance is re-distributed from
//! scratch. `--reshuffle-always` disables the elision (the baseline its
//! communication saving is measured against), and the JSON report gains
//! `transfer_checks` and `elided_reshuffles`.
//!
//! `--trace FILE` records a distributed trace of the whole run: engine
//! rounds, distribute/reshuffle phases, per-node joins, cache and
//! transfer-oracle decisions on the coordinator, plus every wire worker's
//! evaluation spans (shipped back at each barrier and merged onto the
//! coordinator's timeline). The output is Chrome trace-event JSON — open
//! it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, or
//! roll it up with `pcq-analyze trace summarize FILE [--json]`: per-phase
//! aggregates, per-process totals, and the round-by-round critical path.
//! Tracing off (the default) costs nothing but one relaxed atomic load
//! per instrumentation site. If the per-thread trace buffers overflow,
//! the run warns on stderr and stamps `droppedEvents` into the trace file
//! (and `dropped_events` into `--json` output) so incomplete timelines
//! are never mistaken for complete ones.
//!
//! `trace diff` aligns two trace summaries — per-phase totals, per-round
//! durations, per-process wall clock — and reports the deltas *with
//! causes*: each regressed round names the phases that grew inside it.
//! Exit code 1 means at least one phase or round grew by more than
//! `--threshold` percent (default 25; `--min-us` filters noise, default
//! 1000µs) — point it at a stored baseline trace in CI to gate on
//! distributed-performance regressions, not just result correctness.
//!
//! `run --metrics FILE` writes the merged metrics registries (engine +
//! transport) as one JSON document: every counter, and for every
//! histogram (`round_latency_us`, `chunk_facts`, `window_wait_us`,
//! `frame_bytes`) the exact count/sum/min/max plus p50/p90/p99
//! nearest-rank quantiles over the most recent 4096 samples. The same
//! block appears under `"histograms"` in `run --json` output.
//! `--slow-eval-us N` makes every wire worker sleep N µs per eval job —
//! an injected-latency knob for exercising `trace diff` end to end.
//!
//! `encode` writes one binary frame (magic `PCQW`) for a query, an
//! instance or a scenario to stdout; `decode` reads one frame from stdin
//! and prints its textual form — `encode … | decode` is the identity.
//! `worker` runs the chunk-evaluation loop that `--transport process`
//! drives (over stdio) or, with `--connect`, the socket-transport variant
//! that dials the coordinator; it is not meant to be invoked
//! interactively.
//!
//! `bench-diff` compares the most recent entry per bench in a
//! `BENCH_results.json` trajectory against the **median of the previous
//! `--window` entries** (default 3; window 1 reproduces plain
//! latest-vs-previous) and fails (exit 1) when any benchmark regressed by
//! more than the threshold (default 25%, ignoring entries faster than
//! `--min-ns`, default 100µs) — the CI regression gate.
//!
//! Exit code 0 means the property holds (for `run`: the distributed result
//! equals the centralized reference; for `bench-diff`: no regression),
//! 1 means it does not, 2 means a usage or parse error.

use std::process::ExitCode;

use pcq::obs;
use pcq::prelude::*;
use pcq::wire;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(holds) => {
            if holds {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            // A worker's runtime failure (protocol desync, injected fault)
            // is not a usage mistake; the usage text would only bury it.
            if !message.starts_with("worker failed:") {
                eprintln!();
                eprintln!("{}", usage());
            }
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  pcq-analyze analyze    <query>\n  pcq-analyze pc         <query> <policy-file>\n  pcq-analyze transfer   <query-from> <query-to> [--no-skip | --strongly-minimal]\n  pcq-analyze hypercube  <query> <query-prime>\n  pcq-analyze run        <query> <policy> <instance> [--workers N] [--json]\n                         [--rounds N] [--schedule S] [--feedback R]\n                         [--streaming] [--semi-naive]\n                         [--distribute-workers N]\n                         [--join-strategy binary|multiway|auto]\n                         [--transport memory|process|socket]\n                         [--fault-inject N] [--trace FILE]\n                         [--metrics FILE] [--slow-eval-us N]\n  pcq-analyze run        --scenario <file.pcq> [--json] [--workers N]\n                         [--rounds N] [--feedback R] [--semi-naive]\n                         [--transport T] [--reshuffle-always]\n                         [--trace FILE] [--metrics FILE]\n  pcq-analyze trace      summarize <trace.json> [--json]\n  pcq-analyze trace      diff <base.json> <new.json> [--json]\n                         [--threshold PCT] [--min-us N]\n  pcq-analyze encode     (query|instance|scenario) <spec>\n  pcq-analyze decode\n  pcq-analyze worker     [--connect host:port --token K] [--fail-after N]\n                         [--slow-eval-us N]\n  pcq-analyze bench-diff <trajectory-file> [--threshold-pct P] [--min-ns N]\n                         [--window N] [--bench NAME]...\n\nrun specs:\n  <query>    triangle | example3.5 | chain:<len> | star:<rays> | cycle:<len> | file | literal\n  <policy>   hypercube:<budget> | broadcast:<nodes> | round-robin:<nodes> | policy-file\n  <instance> random:<domain>:<facts>[:seed] | zipf:<domain>:<facts>:<exp-percent>[:seed] | file | literal\n  <schedule> comma-separated per-round policies: hash-join:<k> | hypercube:<b> | broadcast:<n>\n  <file.pcq> a textual scenario file (see the README's wire-format section)"
}

fn run(args: &[String]) -> Result<bool, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "analyze" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            Ok(analyze(&query))
        }
        "pc" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let policy = load_policy(args.get(2).ok_or("missing <policy-file>")?)?;
            Ok(parallel_correctness(&query, &policy))
        }
        "transfer" => {
            let from = load_query(args.get(1).ok_or("missing <query-from>")?)?;
            let to = load_query(args.get(2).ok_or("missing <query-to>")?)?;
            let mode = args.get(3).map(String::as_str);
            transfer(&from, &to, mode)
        }
        "hypercube" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let prime = load_query(args.get(2).ok_or("missing <query-prime>")?)?;
            Ok(hypercube(&query, &prime))
        }
        "run" => run_command(&args[1..]),
        "trace" => trace_command(&args[1..]),
        "encode" => encode_command(&args[1..]),
        "decode" => decode_command(&args[1..]),
        "worker" => worker_command(&args[1..]),
        "bench-diff" => bench_diff(&args[1..]),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Reads `spec` as a file when one exists at that path, else treats the
/// spec itself as the literal text — the shared resolution rule for every
/// file-or-literal argument (queries, instances, scenarios).
fn read_spec_text(spec: &str) -> Result<String, String> {
    if std::path::Path::new(spec).exists() {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))
    } else {
        Ok(spec.to_string())
    }
}

/// Loads a query from a file path, or parses the argument itself when it is
/// not an existing file.
fn load_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    let text = read_spec_text(arg)?;
    ConjunctiveQuery::parse(text.trim()).map_err(|e| format!("cannot parse query '{arg}': {e}"))
}

/// Resolves a `run` query spec: a named workload family first, then the
/// file-or-literal fallback of [`load_query`].
fn load_run_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    match workloads::named_query(arg) {
        Ok(q) => Ok(q),
        Err(named_err) => load_query(arg).map_err(|parse_err| {
            format!("cannot resolve query spec '{arg}': {named_err}; {parse_err}")
        }),
    }
}

/// Resolves a `run` instance spec: a named generator over the query's
/// schema, a file of facts, or literal facts.
fn load_run_instance(arg: &str, query: &ConjunctiveQuery) -> Result<Instance, String> {
    match workloads::named_instance(arg, &query.schema()) {
        Ok(i) => Ok(i),
        Err(named_err) => {
            let text = read_spec_text(arg)?;
            cq::parse_instance(text.trim()).map_err(|parse_err| {
                format!("cannot resolve instance spec '{arg}': {named_err}; {parse_err}")
            })
        }
    }
}

/// Resolves a `run` policy spec: `hypercube:<budget>`, `broadcast:<nodes>`,
/// `round-robin:<nodes>`, or a policy file. Boxed so single- and
/// multi-round paths can mix spec-named and schedule-named policies.
fn load_run_policy(
    arg: &str,
    query: &ConjunctiveQuery,
    instance: &Instance,
) -> Result<Box<dyn DistributionPolicy>, String> {
    let named_err = match arg.split_once(':') {
        Some(("hypercube", budget)) => {
            let budget: usize = budget
                .parse()
                .map_err(|_| format!("policy spec '{arg}': '{budget}' is not a number"))?;
            return HypercubePolicy::uniform(query, budget)
                .map(|p| Box::new(p) as Box<dyn DistributionPolicy>)
                .map_err(|e| format!("policy spec '{arg}': {e}"));
        }
        Some(("broadcast", nodes)) | Some(("round-robin", nodes)) => {
            let n: usize = nodes
                .parse()
                .map_err(|_| format!("policy spec '{arg}': '{nodes}' is not a number"))?;
            if n == 0 {
                return Err(format!("policy spec '{arg}': need at least one node"));
            }
            let network = Network::with_size(n);
            let policy = if arg.starts_with("broadcast") {
                ExplicitPolicy::broadcast(&network, instance)
            } else {
                ExplicitPolicy::round_robin(&network, instance)
            };
            return Ok(Box::new(policy));
        }
        _ => format!("'{arg}' is not hypercube:<budget>, broadcast:<nodes> or round-robin:<nodes>"),
    };
    if std::path::Path::new(arg).exists() {
        load_policy(arg).map(|p| Box::new(p) as Box<dyn DistributionPolicy>)
    } else {
        Err(format!(
            "cannot resolve policy spec: {named_err}, and no such policy file exists"
        ))
    }
}

/// Which side of the [`Transport`] seam evaluates node chunks.
enum TransportChoice {
    /// The classic simulated cluster: chunks evaluate on an in-process
    /// worker pool ([`InMemoryTransport`]).
    Memory,
    /// Chunks are binary-encoded and shipped to `pcq-analyze worker`
    /// subprocesses over stdio pipes ([`ProcessTransport`]).
    Process,
    /// The same worker protocol over TCP: the coordinator listens on
    /// loopback and spawned workers connect back ([`SocketTransport`]).
    Socket,
}

impl TransportChoice {
    fn label(&self) -> &'static str {
        match self {
            TransportChoice::Memory => "memory",
            TransportChoice::Process => "process",
            TransportChoice::Socket => "socket",
        }
    }
}

/// Parsed flags of the `run` subcommand.
struct RunOptions {
    workers: usize,
    distribute_workers: usize,
    streaming: bool,
    semi_naive: bool,
    json: bool,
    rounds: Option<usize>,
    schedule: Option<String>,
    feedback: Option<String>,
    scenario: Option<String>,
    transport: TransportChoice,
    /// `--fault-inject N`: worker 0 dies after N eval jobs, exercising the
    /// wire transports' mid-round requeue path.
    fault_inject: Option<usize>,
    /// `--join-strategy`: the local join algorithm every node evaluates
    /// with (`None` = the evaluator's default, auto).
    join_strategy: Option<JoinStrategy>,
    /// `--reshuffle-always`: disable transferability-driven reshuffle
    /// elision in multi-query scenarios (the measurement baseline).
    reshuffle_always: bool,
    /// `--trace FILE`: record a distributed trace of the run — coordinator
    /// spans plus every worker's, merged onto one timeline — and write it
    /// as Chrome trace-event JSON (loadable in Perfetto, summarizable with
    /// `pcq-analyze trace summarize`).
    trace: Option<String>,
    /// `--metrics FILE`: write the merged metrics registries (counters +
    /// histogram quantiles) as a JSON document after the run.
    metrics: Option<String>,
    /// `--slow-eval-us N`: every worker sleeps N microseconds inside each
    /// eval span — an artificial latency regression for `trace diff`
    /// fixtures (requires a wire transport).
    slow_eval_us: Option<u64>,
}

/// Brackets a traced `run`: starts the process-wide trace recorder and the
/// root span before the selected arm executes, and on finish drains the
/// merged timeline and writes the Chrome trace-event file.
struct TraceSession {
    path: Option<String>,
    root: Option<obs::Span>,
}

impl TraceSession {
    fn begin(path: Option<&str>) -> TraceSession {
        let root = path.map(|_| {
            obs::start_trace();
            obs::span!("run")
        });
        TraceSession {
            path: path.map(str::to_string),
            root,
        }
    }

    fn finish(self, result: Result<bool, String>) -> Result<bool, String> {
        let Some(path) = self.path else {
            return result;
        };
        drop(self.root);
        let events = obs::end_trace();
        let dropped = obs::dropped_events();
        let mut doc = wire::trace_export::chrome_trace(&events);
        if dropped > 0 {
            eprintln!(
                "trace: WARNING: {dropped} events dropped (per-thread buffer full) — \
                 the timeline in {path} is incomplete"
            );
            doc.push("droppedEvents", JsonValue::from(dropped));
        }
        match std::fs::write(&path, format!("{doc}\n")) {
            // A failed run is the primary error; only surface a write
            // failure when it would otherwise be silently lost.
            Ok(()) => result,
            Err(e) => result.and(Err(format!("cannot write trace to {path}: {e}"))),
        }
    }
}

/// Loads a Chrome trace-event file into a summary, carrying the
/// document's `droppedEvents` marker along — shared by `trace summarize`
/// and `trace diff`. Malformed JSON and corrupted documents surface as
/// clean errors (exit 2), never a parser panic.
fn load_trace_summary(path: &str) -> Result<wire::TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let events = wire::events_from_doc(&doc).map_err(|e| format!("{path}: {e}"))?;
    wire::check_well_formed(&events).map_err(|e| format!("{path}: {e}"))?;
    let mut summary = wire::TraceSummary::from_events(&events);
    summary.dropped_events = wire::dropped_events_field(&doc);
    Ok(summary)
}

/// The `trace` subcommand: offline tooling over Chrome trace-event files
/// written by `run --trace`. `summarize` validates the document (parse,
/// reconstruction, span-nesting well-formedness) and prints per-phase,
/// per-process and per-round rollups (`--json` for machine-readable
/// output). `diff` compares two such files phase by phase and round by
/// round, failing (exit 1) when anything regressed past the threshold.
fn trace_command(args: &[String]) -> Result<bool, String> {
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let mut json = false;
            let mut path: Option<&String> = None;
            for arg in &args[1..] {
                match arg.as_str() {
                    "--json" => json = true,
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag '{other}'"))
                    }
                    _ if path.is_none() => path = Some(arg),
                    other => return Err(format!("unexpected argument '{other}'")),
                }
            }
            let path = path.ok_or("trace summarize needs a trace file")?;
            let summary = load_trace_summary(path)?;
            if json {
                println!("{}", summary.to_json());
            } else {
                print!("{summary}");
            }
            Ok(true)
        }
        Some("diff") => {
            let mut json = false;
            let mut options = wire::DiffOptions::default();
            let mut paths: Vec<&String> = Vec::new();
            let mut iter = args[1..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--threshold" => {
                        let value = iter.next().ok_or("--threshold needs a percentage")?;
                        options.threshold_pct = value
                            .parse::<f64>()
                            .ok()
                            .filter(|pct| pct.is_finite() && *pct >= 0.0)
                            .ok_or(format!(
                                "--threshold: '{value}' is not a non-negative percentage"
                            ))?;
                    }
                    "--min-us" => {
                        let value = iter.next().ok_or("--min-us needs a number")?;
                        options.min_us = value
                            .parse()
                            .map_err(|_| format!("--min-us: '{value}' is not a number"))?;
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag '{other}'"))
                    }
                    _ => paths.push(arg),
                }
            }
            let [base_path, new_path] = paths[..] else {
                return Err("trace diff needs <base.json> <new.json>".to_string());
            };
            let base = load_trace_summary(base_path)?;
            let new = load_trace_summary(new_path)?;
            let diff = wire::diff_summaries(&base, &new, options);
            if json {
                println!("{}", diff.to_json());
            } else {
                print!("{diff}");
            }
            Ok(diff.clean())
        }
        Some(other) => Err(format!("unknown trace subcommand '{other}'")),
        None => Err("trace needs a subcommand (summarize | diff)".to_string()),
    }
}

/// The per-worker `pcq-analyze worker …` argument lists for a wire
/// transport: with fault injection, worker 0 gets `--fail-after N`; with
/// latency injection, every worker gets `--slow-eval-us N`.
fn worker_argv(
    workers: usize,
    fault_inject: Option<usize>,
    slow_eval_us: Option<u64>,
) -> Vec<Vec<String>> {
    (0..workers)
        .map(|i| {
            let mut args = vec!["worker".to_string()];
            if i == 0 {
                if let Some(n) = fault_inject {
                    args.push("--fail-after".to_string());
                    args.push(n.to_string());
                }
            }
            if let Some(us) = slow_eval_us {
                args.push("--slow-eval-us".to_string());
                args.push(us.to_string());
            }
            args
        })
        .collect()
}

fn coordinator_exe() -> Result<std::path::PathBuf, String> {
    std::env::current_exe().map_err(|e| format!("cannot find current executable: {e}"))
}

/// Starts the worker subprocesses behind `--transport process`.
fn spawn_process_transport(opts: &RunOptions) -> Result<ProcessTransport, String> {
    ProcessTransport::spawn_commands(
        coordinator_exe()?,
        &worker_argv(opts.workers, opts.fault_inject, opts.slow_eval_us),
    )
    .map_err(|e| format!("cannot start process transport: {e}"))
}

/// Starts the listener and connecting workers behind `--transport socket`.
fn spawn_socket_transport(opts: &RunOptions) -> Result<SocketTransport, String> {
    SocketTransport::spawn_commands(
        coordinator_exe()?,
        &worker_argv(opts.workers, opts.fault_inject, opts.slow_eval_us),
    )
    .map_err(|e| format!("cannot start socket transport: {e}"))
}

/// The `worker` subcommand: the far side of the wire transports. With no
/// flags it speaks the protocol on stdio (the process transport); with
/// `--connect host:port --token K` it dials a socket-transport
/// coordinator. `--fail-after N` injects a mid-round death for
/// fault-tolerance tests and smokes.
fn worker_command(args: &[String]) -> Result<bool, String> {
    let mut connect: Option<String> = None;
    let mut token: u64 = 0;
    let mut fail_after: Option<u64> = None;
    let mut slow_eval_us: u64 = 0;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(iter.next().ok_or("--connect needs host:port")?.to_string())
            }
            "--token" => {
                let value = iter.next().ok_or("--token needs a number")?;
                token = value
                    .parse()
                    .map_err(|_| format!("--token: '{value}' is not a number"))?;
            }
            "--fail-after" => {
                let value = iter.next().ok_or("--fail-after needs a number")?;
                fail_after = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--fail-after: '{value}' is not a number"))?,
                );
            }
            "--slow-eval-us" => {
                let value = iter.next().ok_or("--slow-eval-us needs a number")?;
                slow_eval_us = value
                    .parse()
                    .map_err(|_| format!("--slow-eval-us: '{value}' is not a number"))?;
            }
            other => return Err(format!("unknown worker argument '{other}'")),
        }
    }
    match connect {
        Some(addr) => wire::run_worker_connect(&addr, token, fail_after, slow_eval_us),
        None => wire::run_worker_slowed(
            std::io::stdin().lock(),
            std::io::stdout().lock(),
            fail_after,
            slow_eval_us,
        ),
    }
    .map(|()| true)
    .map_err(|e| format!("worker failed: {e}"))
}

/// The `run` subcommand: one-round evaluation of a workload triple, or —
/// with `--rounds` or `--scenario` — the iterated multi-round evaluation.
///
/// Exit-code contract: 0 = the distributed result equals the centralized
/// reference (one-round result, or the global fixpoint of the iterated
/// query), 1 = answers lost or round cap too small.
fn run_command(args: &[String]) -> Result<bool, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut opts = RunOptions {
        workers: 1,
        distribute_workers: 1,
        streaming: false,
        semi_naive: false,
        json: false,
        rounds: None,
        schedule: None,
        feedback: None,
        scenario: None,
        transport: TransportChoice::Memory,
        fault_inject: None,
        join_strategy: None,
        reshuffle_always: false,
        trace: None,
        metrics: None,
        slow_eval_us: None,
    };
    let mut iter = args.iter();
    let parse_count = |flag: &str, value: Option<&String>| -> Result<usize, String> {
        let value = value.ok_or(format!("{flag} needs a number"))?;
        let n: usize = value
            .parse()
            .map_err(|_| format!("{flag}: '{value}' is not a number"))?;
        if n == 0 {
            return Err(format!("{flag} must be at least 1"));
        }
        Ok(n)
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--streaming" => opts.streaming = true,
            "--reshuffle-always" => opts.reshuffle_always = true,
            "--semi-naive" => opts.semi_naive = true,
            "--workers" => opts.workers = parse_count("--workers", iter.next())?,
            "--distribute-workers" => {
                opts.distribute_workers = parse_count("--distribute-workers", iter.next())?
            }
            "--rounds" => opts.rounds = Some(parse_count("--rounds", iter.next())?),
            "--schedule" => {
                opts.schedule = Some(
                    iter.next()
                        .ok_or("--schedule needs a policy list")?
                        .to_string(),
                )
            }
            "--feedback" => {
                opts.feedback = Some(
                    iter.next()
                        .ok_or("--feedback needs a relation name")?
                        .to_string(),
                )
            }
            "--scenario" => {
                opts.scenario = Some(
                    iter.next()
                        .ok_or("--scenario needs a file path")?
                        .to_string(),
                )
            }
            "--transport" => {
                let name = iter.next().ok_or("--transport needs a name")?;
                opts.transport = match name.as_str() {
                    "memory" | "mem" => TransportChoice::Memory,
                    "process" => TransportChoice::Process,
                    "socket" => TransportChoice::Socket,
                    other => {
                        return Err(format!(
                            "--transport: '{other}' is not 'memory', 'process' or 'socket'"
                        ))
                    }
                };
            }
            "--fault-inject" => {
                opts.fault_inject = Some(parse_count("--fault-inject", iter.next())?)
            }
            "--trace" => {
                opts.trace = Some(
                    iter.next()
                        .ok_or("--trace needs an output file path")?
                        .to_string(),
                )
            }
            "--metrics" => {
                opts.metrics = Some(
                    iter.next()
                        .ok_or("--metrics needs an output file path")?
                        .to_string(),
                )
            }
            "--slow-eval-us" => {
                let value = iter.next().ok_or("--slow-eval-us needs a number")?;
                opts.slow_eval_us = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--slow-eval-us: '{value}' is not a number"))?,
                );
            }
            "--join-strategy" => {
                let name = iter.next().ok_or("--join-strategy needs a name")?;
                opts.join_strategy = Some(JoinStrategy::parse(name).ok_or(format!(
                    "--join-strategy: '{name}' is not 'binary', 'multiway' or 'auto'"
                ))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ => positional.push(arg),
        }
    }
    if !matches!(opts.transport, TransportChoice::Memory) && opts.streaming {
        // Streaming is an in-memory allocation optimization (borrowed
        // chunks); shipping to another process always materializes.
        return Err("--streaming cannot be combined with a wire transport".to_string());
    }
    if opts.fault_inject.is_some() {
        if matches!(opts.transport, TransportChoice::Memory) {
            return Err(
                "--fault-inject needs a wire transport (--transport process|socket)".to_string(),
            );
        }
        if opts.workers < 2 {
            return Err(
                "--fault-inject needs --workers >= 2 (survivors must absorb the dead \
                 worker's jobs)"
                    .to_string(),
            );
        }
    }
    if opts.slow_eval_us.is_some() && matches!(opts.transport, TransportChoice::Memory) {
        // The sleep is injected on the worker side of the wire protocol;
        // in-memory evaluation has no worker process to slow down.
        return Err(
            "--slow-eval-us needs a wire transport (--transport process|socket)".to_string(),
        );
    }
    if opts.reshuffle_always && opts.scenario.is_none() {
        // Elision only ever happens between the queries of a multi-query
        // scenario; anywhere else the flag would silently do nothing.
        return Err(
            "--reshuffle-always requires --scenario (it disables the reshuffle \
                    elision between a scenario's queries)"
                .to_string(),
        );
    }
    if opts.semi_naive {
        if opts.rounds.is_none() && opts.scenario.is_none() {
            return Err("--semi-naive requires --rounds (it is a multi-round mode)".to_string());
        }
        if opts.streaming {
            // Deltas are materialized (and small by construction); the
            // borrowed-chunk streaming path does not apply to them.
            return Err("--semi-naive cannot be combined with --streaming".to_string());
        }
    }

    let session = TraceSession::begin(opts.trace.as_deref());
    session.finish(run_dispatch(&positional, &opts))
}

/// The selected `run` arm — multi-query scenario, single-query
/// multi-round, or plain one-round evaluation — after flag parsing and
/// validation. Split out of [`run_command`] so a [`TraceSession`] can
/// bracket every arm uniformly.
fn run_dispatch(positional: &[&String], opts: &RunOptions) -> Result<bool, String> {
    if let Some(path) = opts.scenario.clone() {
        if !positional.is_empty() {
            return Err(
                "--scenario replaces the positional <query> <policy> <instance> specs".to_string(),
            );
        }
        if opts.schedule.is_some() {
            return Err(
                "--schedule cannot be combined with --scenario (the file has its own schedule)"
                    .to_string(),
            );
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let scenario = Scenario::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let policies = scenario
            .build_schedule()
            .map_err(|e| format!("{path}: {e}"))?;
        let rounds = opts.rounds.unwrap_or(scenario.rounds);
        let feedback = opts
            .feedback
            .clone()
            .or_else(|| scenario.feedback.map(|f| f.to_string()));
        let schedule_label = scenario
            .schedule
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        if scenario.queries.len() > 1 {
            return run_multi_query(
                &scenario.queries,
                Some(schedule_label),
                &path,
                &scenario.instance,
                policies,
                rounds,
                feedback.as_deref(),
                opts,
            );
        }
        return run_multi_round(
            scenario.query(),
            &format!("scenario:{path}"),
            Some(schedule_label),
            &path,
            &scenario.instance,
            policies,
            rounds,
            feedback.as_deref(),
            opts,
        );
    }

    let [query_spec, policy_spec, instance_spec] = positional[..] else {
        return Err("run needs <query> <policy> <instance> (or --scenario <file>)".to_string());
    };

    if opts.rounds.is_none() {
        // These flags only mean something across rounds; silently running a
        // single round instead would misreport what the user asked for.
        if opts.schedule.is_some() {
            return Err("--schedule requires --rounds".to_string());
        }
        if opts.feedback.is_some() {
            return Err("--feedback requires --rounds".to_string());
        }
    }

    let query = load_run_query(query_spec)?;
    let instance = load_run_instance(instance_spec, &query)?;

    if let Some(rounds) = opts.rounds {
        // The <policy> positional is always resolved — a typo'd spec must
        // fail even when --schedule overrides which policies actually run;
        // without --schedule the single <policy> spec repeats every round.
        let positional_policy = load_run_policy(policy_spec, &query, &instance)?;
        let policies: Vec<Box<dyn DistributionPolicy>> = match &opts.schedule {
            Some(spec) => workloads::named_schedule(spec, &query)?,
            None => vec![positional_policy],
        };
        return run_multi_round(
            &query,
            policy_spec,
            opts.schedule.clone(),
            instance_spec,
            &instance,
            policies,
            rounds,
            opts.feedback.as_deref(),
            opts,
        );
    }

    let policy = load_run_policy(policy_spec, &query, &instance)?;
    let eval_options = run_eval_options(opts);
    let resolved = eval_options.resolved_strategy(&query);
    let engine = OneRoundEngine::new(policy.as_ref())
        .workers(opts.workers)
        .distribute_workers(opts.distribute_workers)
        .streaming(opts.streaming)
        .eval_options(eval_options);
    // `total` covers only the one-round run; the centralized evaluation
    // below is a correctness check, not part of the round being measured.
    let total_start = std::time::Instant::now();
    let mut registries: Vec<std::sync::Arc<obs::Registry>> = Vec::new();
    let outcome = match opts.transport {
        TransportChoice::Memory if opts.streaming => engine.evaluate(&query, &instance),
        TransportChoice::Memory => {
            // The same transport `evaluate` would construct internally,
            // held here so its metrics registry outlives the round.
            let mut transport = InMemoryTransport::new(opts.workers);
            let outcome = engine
                .evaluate_via(&mut transport, 0, &query, &instance)
                .expect("the in-memory transport is infallible");
            registries.push(transport.registry());
            outcome
        }
        TransportChoice::Process => {
            let mut transport = spawn_process_transport(opts)?;
            registries.push(transport.metrics_registry());
            engine
                .evaluate_via(&mut transport, 0, &query, &instance)
                .map_err(|e| e.to_string())?
        }
        TransportChoice::Socket => {
            let mut transport = spawn_socket_transport(opts)?;
            registries.push(transport.metrics_registry());
            engine
                .evaluate_via(&mut transport, 0, &query, &instance)
                .map_err(|e| e.to_string())?
        }
    };
    let total = total_start.elapsed();
    let metrics = export_metrics(opts, &registries)?;
    let correct = outcome.result == cq::evaluate(&query, &instance);

    if opts.json {
        let per_node = JsonValue::array(outcome.per_node_output.keys().map(|node| {
            JsonValue::object([
                ("node", JsonValue::from(node.as_str())),
                (
                    "load",
                    JsonValue::from(outcome.per_node_load.get(node).copied().unwrap_or(0)),
                ),
                (
                    "output",
                    JsonValue::from(outcome.per_node_output.get(node).copied().unwrap_or(0)),
                ),
                (
                    "time_us",
                    JsonValue::from(
                        outcome
                            .per_node_time
                            .get(node)
                            .copied()
                            .unwrap_or_default()
                            .as_micros(),
                    ),
                ),
            ])
        }));
        let doc = JsonValue::object([
            ("query", JsonValue::from(query.to_string())),
            ("policy", JsonValue::from(policy_spec.as_str())),
            ("instance", JsonValue::from(instance_spec.as_str())),
            ("instance_facts", JsonValue::from(instance.len())),
            ("workers", JsonValue::from(outcome.workers)),
            ("transport", JsonValue::from(opts.transport.label())),
            (
                "join_strategy",
                JsonValue::object([
                    (
                        "requested",
                        JsonValue::from(eval_options.join_strategy.label()),
                    ),
                    ("resolved", JsonValue::from(resolved.label())),
                ]),
            ),
            (
                "index_cache",
                JsonValue::object([
                    ("hits", JsonValue::from(outcome.index_cache_hits)),
                    ("misses", JsonValue::from(outcome.index_cache_misses)),
                ]),
            ),
            ("result_size", JsonValue::from(outcome.result.len())),
            ("parallel_correct", JsonValue::from(correct)),
            (
                "stats",
                JsonValue::object([
                    ("nodes", JsonValue::from(outcome.stats.nodes)),
                    (
                        "total_assigned",
                        JsonValue::from(outcome.stats.total_assigned),
                    ),
                    (
                        "distinct_assigned",
                        JsonValue::from(outcome.stats.distinct_assigned),
                    ),
                    ("max_load", JsonValue::from(outcome.stats.max_load)),
                    ("skipped", JsonValue::from(outcome.stats.skipped)),
                    (
                        "replication_factor",
                        JsonValue::fixed(outcome.stats.replication_factor, 4),
                    ),
                ]),
            ),
            (
                "timings_us",
                JsonValue::object([
                    (
                        "distribute",
                        JsonValue::from(outcome.distribute_time.as_micros()),
                    ),
                    (
                        "local_eval",
                        JsonValue::from(outcome.local_eval_time.as_micros()),
                    ),
                    ("total", JsonValue::from(total.as_micros())),
                ]),
            ),
            ("per_node", per_node),
            ("histograms", histograms_block(&metrics)),
        ]);
        let doc = with_dropped_events(doc, opts);
        println!("{doc}");
    } else {
        println!("query:       {query}");
        println!("policy:      {policy_spec}");
        println!("instance:    {instance_spec} ({} facts)", instance.len());
        println!("workers:     {}", outcome.workers);
        println!("transport:   {}", opts.transport.label());
        println!(
            "join:        {} (resolved: {})",
            eval_options.join_strategy.label(),
            resolved.label()
        );
        println!(
            "index cache: {} hits / {} misses",
            outcome.index_cache_hits, outcome.index_cache_misses
        );
        println!("result size: {}", outcome.result.len());
        println!(
            "correct:     {}",
            if correct {
                "yes"
            } else {
                "NO (one-round result differs from centralized)"
            }
        );
        println!("distribution: {}", outcome.stats);
        println!(
            "timings:     distribute={}µs local_eval={}µs total={}µs skew={:.2}",
            outcome.distribute_time.as_micros(),
            outcome.local_eval_time.as_micros(),
            total.as_micros(),
            outcome.time_skew()
        );
        for (node, output) in &outcome.per_node_output {
            println!(
                "  {node}: load={} output={} time={}µs",
                outcome.per_node_load.get(node).copied().unwrap_or(0),
                output,
                outcome
                    .per_node_time
                    .get(node)
                    .copied()
                    .unwrap_or_default()
                    .as_micros()
            );
        }
    }
    Ok(correct)
}

/// The evaluation options every node runs with, as selected by the `run`
/// flags — shipped with each round, so they hold across wire transports
/// and the multi-round engine alike.
fn run_eval_options(opts: &RunOptions) -> EvalOptions {
    EvalOptions {
        join_strategy: opts.join_strategy.unwrap_or_default(),
        ..EvalOptions::default()
    }
}

/// Collects the run's metrics registries into one JSON document
/// (counters summed, histograms unioned), writing it to `--metrics` when
/// requested. Returns the document so the `--json` arms can lift its
/// `histograms` block into their reports.
fn export_metrics(
    opts: &RunOptions,
    registries: &[std::sync::Arc<obs::Registry>],
) -> Result<JsonValue, String> {
    let refs: Vec<&obs::Registry> = registries.iter().map(AsRef::as_ref).collect();
    let doc = wire::merged_registry_json(&refs);
    if let Some(path) = &opts.metrics {
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    }
    Ok(doc)
}

/// The `histograms` block of a metrics document — per-name count / sum /
/// min / max / mean / p50 / p90 / p99, identical to the `--metrics`
/// file's block.
fn histograms_block(metrics: &JsonValue) -> JsonValue {
    metrics
        .get("histograms")
        .cloned()
        .unwrap_or(JsonValue::Null)
}

/// Appends a `dropped_events` field to a traced run's JSON report: the
/// machine-readable counterpart of the stderr warning, so automation
/// learns the trace is incomplete without scraping stderr.
fn with_dropped_events(mut doc: JsonValue, opts: &RunOptions) -> JsonValue {
    if opts.trace.is_some() {
        doc.push("dropped_events", JsonValue::from(obs::dropped_events()));
    }
    doc
}

/// Rejects a `--feedback` relation the query never reads — or reads at a
/// different arity — which would make the recursion silently inert; the
/// user asked for iteration, so that is a usage error.
fn validate_feedback(query: &ConjunctiveQuery, feedback: &str) -> Result<(), String> {
    let head_arity = query.head().arity();
    match query.schema().arity(Symbol::new(feedback)) {
        Some(arity) if arity == head_arity => Ok(()),
        Some(arity) => Err(format!(
            "--feedback {feedback}: the query reads '{feedback}' with arity {arity}, but the head has arity {head_arity}"
        )),
        None => Err(format!(
            "--feedback {feedback}: the query does not read relation '{feedback}'"
        )),
    }
}

/// The multi-query arm of `run --scenario`: the queries run in sequence
/// over the same instance; between consecutive queries the engine checks
/// pc-transferability and elides the reshuffle when it holds (the next
/// query evaluates on the shards resident from its predecessor).
///
/// Exit-code contract: 0 = every query's distributed result equals the
/// global fixpoint of its centralized iterated form.
#[allow(clippy::too_many_arguments)]
fn run_multi_query(
    queries: &[ConjunctiveQuery],
    schedule_label: Option<String>,
    scenario_label: &str,
    instance: &Instance,
    policies: Vec<Box<dyn DistributionPolicy>>,
    rounds: usize,
    feedback: Option<&str>,
    opts: &RunOptions,
) -> Result<bool, String> {
    let refs: Vec<&dyn DistributionPolicy> = policies.iter().map(Box::as_ref).collect();
    let mut engine = MultiRoundEngine::new(RoundSchedule::of(refs))
        .rounds(rounds)
        .workers(opts.workers)
        .distribute_workers(opts.distribute_workers)
        .streaming(opts.streaming)
        .semi_naive(opts.semi_naive)
        .eval_options(run_eval_options(opts))
        .reshuffle_always(opts.reshuffle_always);
    if let Some(feedback) = feedback {
        for (i, query) in queries.iter().enumerate() {
            validate_feedback(query, feedback).map_err(|e| format!("query {i}: {e}"))?;
        }
        engine = engine.feedback_into(feedback);
    }

    // Memoized so repeated query pairs (common in alternating workloads)
    // pay for the containment checks once.
    let mut cache = TransferCache::new();
    let total_start = std::time::Instant::now();
    let mut registries: Vec<std::sync::Arc<obs::Registry>> = vec![engine.registry()];
    let outcome = match opts.transport {
        TransportChoice::Memory => {
            engine.evaluate_queries(queries, instance, &mut |p, q| cache.transfers(p, q))
        }
        TransportChoice::Process => {
            let mut transport = spawn_process_transport(opts)?;
            registries.push(transport.metrics_registry());
            engine
                .evaluate_queries_via(&mut transport, queries, instance, &mut |p, q| {
                    cache.transfers(p, q)
                })
                .map_err(|e| e.to_string())?
        }
        TransportChoice::Socket => {
            let mut transport = spawn_socket_transport(opts)?;
            registries.push(transport.metrics_registry());
            engine
                .evaluate_queries_via(&mut transport, queries, instance, &mut |p, q| {
                    cache.transfers(p, q)
                })
                .map_err(|e| e.to_string())?
        }
    };
    let total = total_start.elapsed();
    let metrics = export_metrics(opts, &registries)?;

    let transfer_checks = outcome.transfer_checks;
    let elided = outcome.elided_reshuffles();
    let reshards = outcome.reshard_rounds();
    let comm_volume = outcome.total_comm_volume();
    let comm_bytes = outcome.total_comm_bytes();
    let reports: Vec<MultiRoundInstanceReport> = outcome
        .per_query
        .into_iter()
        .zip(queries)
        .map(|(o, query)| MultiRoundInstanceReport::from_outcome(query, &engine, instance, o))
        .collect();
    let correct = reports.iter().all(|r| r.correct);

    if opts.json {
        let per_query = JsonValue::array(queries.iter().zip(&reports).map(|(query, report)| {
            let o = &report.outcome;
            JsonValue::object([
                ("query", JsonValue::from(query.to_string())),
                ("rounds_run", JsonValue::from(o.rounds_run())),
                ("converged", JsonValue::from(o.converged)),
                ("elided_reshuffles", JsonValue::from(o.elided_reshuffles)),
                ("reshard_rounds", JsonValue::from(o.reshard_rounds.len())),
                ("result_size", JsonValue::from(o.result.len())),
                ("correct", JsonValue::from(report.correct)),
                ("comm_volume", JsonValue::from(o.total_comm_volume())),
                ("comm_bytes", JsonValue::from(o.total_comm_bytes())),
            ])
        }));
        let doc = JsonValue::object([
            ("scenario", JsonValue::from(scenario_label)),
            ("schedule", JsonValue::from(schedule_label)),
            ("queries", JsonValue::from(queries.len())),
            ("instance_facts", JsonValue::from(instance.len())),
            ("workers", JsonValue::from(opts.workers)),
            ("semi_naive", JsonValue::from(opts.semi_naive)),
            ("transport", JsonValue::from(opts.transport.label())),
            ("reshuffle_always", JsonValue::from(opts.reshuffle_always)),
            ("rounds_requested", JsonValue::from(rounds)),
            ("transfer_checks", JsonValue::from(transfer_checks)),
            ("elided_reshuffles", JsonValue::from(elided)),
            ("reshard_rounds", JsonValue::from(reshards)),
            ("multi_round_correct", JsonValue::from(correct)),
            ("total_comm_volume", JsonValue::from(comm_volume)),
            ("total_comm_bytes", JsonValue::from(comm_bytes)),
            ("total_us", JsonValue::from(total.as_micros())),
            ("per_query", per_query),
            ("histograms", histograms_block(&metrics)),
        ]);
        let doc = with_dropped_events(doc, opts);
        println!("{doc}");
    } else {
        println!("scenario:    {scenario_label} ({} queries)", queries.len());
        if let Some(s) = &schedule_label {
            println!("schedule:    {s}");
        }
        if let Some(feedback) = feedback {
            println!("feedback:    outputs re-enter as {feedback}");
        }
        println!("instance:    {} facts", instance.len());
        println!("transport:   {}", opts.transport.label());
        if opts.semi_naive {
            println!("mode:        semi-naive (rounds ship deltas, nodes keep state)");
        }
        if opts.reshuffle_always {
            println!("mode:        reshuffle-always (transferability elision disabled)");
        }
        println!(
            "transfer:    {transfer_checks} check(s), {elided} reshuffle(s) elided, \
             {reshards} re-shard round(s)"
        );
        println!(
            "correct:     {}",
            if correct {
                "yes (every query equals its global fixpoint)"
            } else {
                "NO (some query's distributed result differs from its fixpoint)"
            }
        );
        println!(
            "comm volume: {comm_volume} fact-assignments over all queries \
             ({comm_bytes} bytes on the wire)"
        );
        println!("timings:     total={}µs", total.as_micros());
        for (i, (query, report)) in queries.iter().zip(&reports).enumerate() {
            let o = &report.outcome;
            println!(
                "  query {i}: {query} — {} round(s), {}, output={}{}",
                o.rounds_run(),
                if o.elided_reshuffles > 0 {
                    "elided (ran on resident shards)"
                } else {
                    "resharded"
                },
                o.result.len(),
                if report.correct { "" } else { " INCORRECT" },
            );
        }
    }
    Ok(correct)
}

/// The multi-round arm of `run`: iterated distribute→evaluate cycles under
/// a resolved policy schedule, compared against the global fixpoint of the
/// centralized iterated query.
#[allow(clippy::too_many_arguments)]
fn run_multi_round(
    query: &ConjunctiveQuery,
    policy_label: &str,
    schedule_label: Option<String>,
    instance_label: &str,
    instance: &Instance,
    policies: Vec<Box<dyn DistributionPolicy>>,
    rounds: usize,
    feedback: Option<&str>,
    opts: &RunOptions,
) -> Result<bool, String> {
    let refs: Vec<&dyn DistributionPolicy> = policies.iter().map(Box::as_ref).collect();
    let mut engine = MultiRoundEngine::new(RoundSchedule::of(refs))
        .rounds(rounds)
        .workers(opts.workers)
        .distribute_workers(opts.distribute_workers)
        .streaming(opts.streaming)
        .semi_naive(opts.semi_naive)
        .eval_options(run_eval_options(opts));
    if let Some(feedback) = feedback {
        validate_feedback(query, feedback)?;
        engine = engine.feedback_into(feedback);
    }

    // `total` covers only the distributed multi-round run (same contract as
    // the one-round arm); the centralized reference fixpoint inside the
    // report is a correctness check, not part of the rounds being measured.
    let total_start = std::time::Instant::now();
    let mut registries: Vec<std::sync::Arc<obs::Registry>> = vec![engine.registry()];
    let outcome = match opts.transport {
        TransportChoice::Memory => engine.evaluate(query, instance),
        TransportChoice::Process => {
            let mut transport = spawn_process_transport(opts)?;
            registries.push(transport.metrics_registry());
            engine
                .evaluate_via(&mut transport, query, instance)
                .map_err(|e| e.to_string())?
        }
        TransportChoice::Socket => {
            let mut transport = spawn_socket_transport(opts)?;
            registries.push(transport.metrics_registry());
            engine
                .evaluate_via(&mut transport, query, instance)
                .map_err(|e| e.to_string())?
        }
    };
    let total = total_start.elapsed();
    let metrics = export_metrics(opts, &registries)?;
    let report = MultiRoundInstanceReport::from_outcome(query, &engine, instance, outcome);
    let outcome = &report.outcome;

    if opts.json {
        let per_round = JsonValue::array(outcome.rounds.iter().enumerate().map(|(i, round)| {
            JsonValue::object([
                ("round", JsonValue::from(i)),
                ("result_size", JsonValue::from(round.result.len())),
                ("nodes", JsonValue::from(round.stats.nodes)),
                (
                    "total_assigned",
                    JsonValue::from(round.stats.total_assigned),
                ),
                ("max_load", JsonValue::from(round.stats.max_load)),
                ("skipped", JsonValue::from(round.stats.skipped)),
                (
                    "replication_factor",
                    JsonValue::fixed(round.stats.replication_factor, 4),
                ),
                ("peak_chunks", JsonValue::from(round.peak_chunks)),
                ("comm_bytes", JsonValue::from(round.comm_bytes)),
                (
                    "distribute_us",
                    JsonValue::from(round.distribute_time.as_micros()),
                ),
                (
                    "local_eval_us",
                    JsonValue::from(round.local_eval_time.as_micros()),
                ),
            ])
        }));
        let doc = JsonValue::object([
            ("query", JsonValue::from(query.to_string())),
            ("policy", JsonValue::from(policy_label)),
            ("schedule", JsonValue::from(schedule_label)),
            ("instance", JsonValue::from(instance_label)),
            ("instance_facts", JsonValue::from(instance.len())),
            ("workers", JsonValue::from(opts.workers)),
            ("streaming", JsonValue::from(opts.streaming)),
            ("semi_naive", JsonValue::from(opts.semi_naive)),
            ("transport", JsonValue::from(opts.transport.label())),
            ("rounds_requested", JsonValue::from(rounds)),
            ("rounds_run", JsonValue::from(outcome.rounds_run())),
            ("reference_rounds", JsonValue::from(report.reference_rounds)),
            ("converged", JsonValue::from(outcome.converged)),
            ("multi_round_correct", JsonValue::from(report.correct)),
            ("result_size", JsonValue::from(outcome.result.len())),
            ("missing", JsonValue::from(report.missing.len())),
            (
                "total_comm_volume",
                JsonValue::from(outcome.total_comm_volume()),
            ),
            (
                "total_comm_bytes",
                JsonValue::from(outcome.total_comm_bytes()),
            ),
            (
                "timings_us",
                JsonValue::object([
                    (
                        "distribute",
                        JsonValue::from(outcome.total_distribute_time().as_micros()),
                    ),
                    (
                        "local_eval",
                        JsonValue::from(outcome.total_local_eval_time().as_micros()),
                    ),
                    ("total", JsonValue::from(total.as_micros())),
                ]),
            ),
            ("rounds", per_round),
            ("histograms", histograms_block(&metrics)),
        ]);
        let doc = with_dropped_events(doc, opts);
        println!("{doc}");
    } else {
        println!("query:       {query}");
        match &schedule_label {
            Some(s) => println!("schedule:    {s}"),
            None => println!("policy:      {policy_label} (every round)"),
        }
        if let Some(feedback) = feedback {
            println!("feedback:    outputs re-enter as {feedback}");
        }
        println!("instance:    {instance_label} ({} facts)", instance.len());
        println!("transport:   {}", opts.transport.label());
        if opts.semi_naive {
            println!("mode:        semi-naive (rounds ship deltas, nodes keep state)");
        }
        println!(
            "rounds:      {} run / {} requested (reference fixpoint: {})",
            outcome.rounds_run(),
            rounds,
            report.reference_rounds
        );
        println!("converged:   {}", outcome.converged);
        println!("result size: {}", outcome.result.len());
        println!(
            "correct:     {}",
            if report.correct {
                "yes (equals the global fixpoint)"
            } else {
                "NO (distributed result differs from the iterated fixpoint)"
            }
        );
        println!(
            "comm volume: {} fact-assignments over all rounds ({} bytes on the wire)",
            outcome.total_comm_volume(),
            outcome.total_comm_bytes()
        );
        println!(
            "timings:     distribute={}µs local_eval={}µs total={}µs",
            outcome.total_distribute_time().as_micros(),
            outcome.total_local_eval_time().as_micros(),
            total.as_micros()
        );
        for (i, round) in outcome.rounds.iter().enumerate() {
            println!(
                "  round {i}: output={} {} peak_chunks={} time={}µs",
                round.result.len(),
                round.stats,
                round.peak_chunks,
                (round.distribute_time + round.local_eval_time).as_micros()
            );
        }
    }
    Ok(report.correct)
}

/// The `encode` subcommand: writes one binary frame for a query, an
/// instance or a scenario to stdout (pipe it to `pcq-analyze decode`, a
/// file, or another process).
fn encode_command(args: &[String]) -> Result<bool, String> {
    let kind = args
        .first()
        .ok_or("encode needs (query|instance|scenario)")?;
    let spec = args.get(1).ok_or("encode needs a <spec> after the kind")?;
    if args.len() > 2 {
        return Err(format!("unexpected argument '{}'", args[2]));
    }
    let message = match kind.as_str() {
        "query" => wire::Message::Query(load_run_query(spec)?),
        "instance" => {
            let text = read_spec_text(spec)?;
            let instance = cq::parse_instance(text.trim())
                .map_err(|e| format!("cannot parse instance '{spec}': {e}"))?;
            wire::Message::Instance(instance)
        }
        "scenario" => {
            let text = read_spec_text(spec)?;
            let scenario = Scenario::parse(&text)
                .map_err(|e| format!("cannot parse scenario '{spec}': {e}"))?;
            wire::Message::Scenario(scenario)
        }
        other => return Err(format!("cannot encode '{other}' (query|instance|scenario)")),
    };
    use std::io::Write;
    std::io::stdout()
        .write_all(&wire::encode_frame(&message))
        .map_err(|e| format!("cannot write frame: {e}"))?;
    Ok(true)
}

/// The `decode` subcommand: reads one binary frame from stdin and prints
/// its textual form (queries and facts in `cq` syntax, scenarios in the
/// scenario format) — the inverse of `encode`.
fn decode_command(args: &[String]) -> Result<bool, String> {
    if !args.is_empty() {
        return Err("decode reads a frame from stdin and takes no arguments".to_string());
    }
    use std::io::Read;
    let mut bytes = Vec::new();
    std::io::stdin()
        .read_to_end(&mut bytes)
        .map_err(|e| format!("cannot read stdin: {e}"))?;
    let message: wire::Message =
        wire::decode_frame(&bytes).map_err(|e| format!("cannot decode frame: {e}"))?;
    match message {
        wire::Message::Query(query) => println!("{query}"),
        wire::Message::Instance(instance) => {
            for fact in instance.facts() {
                println!("{fact}.");
            }
        }
        wire::Message::Scenario(scenario) => print!("{scenario}"),
        other => {
            // Protocol messages decode fine but have no canonical textual
            // source form; describe them instead of inventing one.
            println!("{}: {other:?}", other.kind());
        }
    }
    Ok(true)
}

/// One parsed trajectory record: a bench name and its `(id, mean_ns)` rows.
struct BenchRun {
    bench: String,
    results: Vec<(String, u128)>,
}

/// Parses one JSONL line of the trajectory format written by the vendored
/// criterion (`{"bench":…,"unix_ms":…,"results":[{"id":…,"mean_ns":…},…]}`).
/// Hand-rolled because the vendored serde is a no-op; the format is
/// machine-generated, so a scanning extractor is sufficient.
fn parse_bench_line(line: &str) -> Result<BenchRun, String> {
    /// Reads the JSON string following `key`, unescaping the `\"` and `\\`
    /// sequences criterion's `json_escape` emits (other escapes pass
    /// through verbatim — both runs go through this same parser, so ids
    /// still compare consistently). Returns the string and the offset just
    /// past its closing quote.
    fn string_after(text: &str, key: &str) -> Option<(String, usize)> {
        let start = text.find(key)? + key.len();
        let mut out = String::new();
        let mut escaped = false;
        for (offset, c) in text[start..].char_indices() {
            if escaped {
                match c {
                    '"' | '\\' => out.push(c),
                    other => {
                        out.push('\\');
                        out.push(other);
                    }
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some((out, start + offset + 1));
            } else {
                out.push(c);
            }
        }
        None // unterminated string
    }
    let (bench, _) = string_after(line, "\"bench\":\"").ok_or("line has no \"bench\" field")?;
    let mut results = Vec::new();
    let mut rest = line;
    while let Some((id, consumed)) = string_after(rest, "\"id\":\"") {
        rest = &rest[consumed..];
        let mean_key = "\"mean_ns\":";
        let at = rest
            .find(mean_key)
            .ok_or(format!("id '{id}' has no mean_ns"))?;
        let digits: String = rest[at + mean_key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let mean_ns: u128 = digits
            .parse()
            .map_err(|_| format!("id '{id}': malformed mean_ns"))?;
        results.push((id, mean_ns));
    }
    if results.is_empty() {
        return Err(format!("bench '{bench}' record has no results"));
    }
    Ok(BenchRun { bench, results })
}

/// The `bench-diff` subcommand: the CI bench-regression gate. Compares,
/// for every bench (or only `--bench`-named ones), the most recent
/// trajectory record against the **median of the previous `--window`
/// records** (default 3; window 1 is plain latest-vs-previous); exits 1
/// when any benchmark slowed down by more than `--threshold-pct` (entries
/// below `--min-ns` in both runs are noise and are skipped).
fn bench_diff(args: &[String]) -> Result<bool, String> {
    let mut path: Option<&String> = None;
    let mut threshold_pct = 25.0f64;
    let mut min_ns = 100_000u128;
    let mut window = 3usize;
    let mut only: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let value = iter.next().ok_or("--threshold-pct needs a number")?;
                threshold_pct = value
                    .parse()
                    .map_err(|_| format!("--threshold-pct: '{value}' is not a number"))?;
                if threshold_pct <= 0.0 {
                    return Err("--threshold-pct must be positive".to_string());
                }
            }
            "--min-ns" => {
                let value = iter.next().ok_or("--min-ns needs a number")?;
                min_ns = value
                    .parse()
                    .map_err(|_| format!("--min-ns: '{value}' is not a number"))?;
            }
            "--window" => {
                let value = iter.next().ok_or("--window needs a number")?;
                window = value
                    .parse()
                    .map_err(|_| format!("--window: '{value}' is not a number"))?;
                if window == 0 {
                    return Err("--window must be at least 1".to_string());
                }
            }
            "--bench" => only.push(iter.next().ok_or("--bench needs a name")?.to_string()),
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ if path.is_none() => path = Some(arg),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let path = path.ok_or("bench-diff needs a <trajectory-file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    // Latest-two records per bench name, in file (= chronological) order.
    let mut history: std::collections::BTreeMap<String, Vec<BenchRun>> =
        std::collections::BTreeMap::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let run = parse_bench_line(line)?;
        history.entry(run.bench.clone()).or_default().push(run);
    }
    if history.is_empty() {
        return Err(format!("{path} contains no bench records"));
    }
    for name in &only {
        if !history.contains_key(name) {
            return Err(format!("bench '{name}' does not appear in {path}"));
        }
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (bench, runs) in &history {
        if !only.is_empty() && !only.contains(bench) {
            continue;
        }
        let [baseline_runs @ .., latest] = &runs[..] else {
            unreachable!("history entries are created non-empty");
        };
        if baseline_runs.is_empty() {
            println!("bench-diff: {bench}: only one run recorded, nothing to compare");
            continue;
        }
        // Trend-aware baseline: per benchmark id, the median over the last
        // `window` runs before the latest — one noisy CI run can no longer
        // fake (or mask) a regression. Window 1 is plain latest-vs-previous.
        let tail = &baseline_runs[baseline_runs.len().saturating_sub(window)..];
        let mut baseline: std::collections::BTreeMap<&str, Vec<u128>> =
            std::collections::BTreeMap::new();
        for run in tail {
            for (id, ns) in &run.results {
                baseline.entry(id.as_str()).or_default().push(*ns);
            }
        }
        for (id, new_ns) in &latest.results {
            let Some(history_ns) = baseline.get_mut(id.as_str()) else {
                continue;
            };
            let old_ns = median(history_ns);
            if old_ns.max(*new_ns) < min_ns {
                continue; // sub-resolution noise
            }
            compared += 1;
            let change_pct = (*new_ns as f64 - old_ns as f64) / old_ns as f64 * 100.0;
            if change_pct > threshold_pct {
                regressions += 1;
                println!(
                    "REGRESSION {bench}/{id}: median({} run(s)) {old_ns}ns -> {new_ns}ns (+{change_pct:.1}% > {threshold_pct:.0}%)",
                    history_ns.len()
                );
            }
        }
    }
    println!(
        "bench-diff: {compared} benchmarks compared, {regressions} regression(s) above {threshold_pct:.0}% (window {window})"
    );
    Ok(regressions == 0)
}

/// The median of a non-empty sample (lower-middle for even sizes — the
/// conservative choice for a regression baseline: it never exceeds both
/// middle values). Sorts in place.
fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

/// Parses the policy-file format described in the module documentation
/// into a `wire::ExplicitSpec` and delegates the materialization — the
/// file format and the scenario `policy { … }` stanza share one
/// definition of what an explicit policy *means*.
fn parse_policy(text: &str) -> Result<ExplicitPolicy, String> {
    let mut spec = ExplicitSpec::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let (head, rest) = line
            .split_once(':')
            .ok_or(format!("line {}: expected 'node: facts…'", lineno + 1))?;
        let head = head.trim();
        if head == "default" {
            for name in rest.split_whitespace() {
                spec.default.push(Symbol::new(name));
            }
            continue;
        }
        // facts are separated by whitespace outside parentheses; reuse the
        // instance parser which accepts whitespace/comma/period separators.
        let facts = cq::parse_instance(rest).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        spec.assignments
            .entry(Symbol::new(head))
            .or_default()
            .extend(facts.facts().cloned());
    }
    spec.build_policy()
}

fn load_policy(path: &str) -> Result<ExplicitPolicy, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_policy(&text)
}

fn analyze(query: &ConjunctiveQuery) -> bool {
    println!("query:             {query}");
    println!("input schema:      {}", query.schema());
    println!("full:              {}", query.is_full());
    println!("boolean:           {}", query.is_boolean());
    println!("self-joins:        {}", query.has_self_joins());
    println!("acyclic (GYO):     {}", cq::is_acyclic(query));
    println!("minimal:           {}", cq::is_minimal(query));
    let strongly = is_strongly_minimal(query);
    println!("strongly minimal:  {strongly}");
    println!("Lemma 4.8 applies: {}", pc_core::satisfies_lemma_4_8(query));
    let min = cq::minimize(query);
    if min.core.body_size() < query.body_size() {
        println!("core:              {}", min.core);
    }
    true
}

fn parallel_correctness(query: &ConjunctiveQuery, policy: &ExplicitPolicy) -> bool {
    println!("query:   {query}");
    println!("network: {}", policy.network());
    let report = check_parallel_correctness(query, policy);
    let cache = report.cache_stats();
    println!(
        "index cache: {} hits / {} misses across candidate instances",
        cache.hits, cache.misses
    );
    if report.is_correct() {
        println!("parallel-correct: yes (every minimal valuation meets at some node)");
        true
    } else {
        println!("parallel-correct: NO");
        if let Some(violation) = &report.violation {
            println!("  minimal valuation:       {}", violation.valuation);
            println!(
                "  counterexample instance: {}",
                violation.counterexample_instance
            );
            println!("  lost fact:               {}", violation.lost_fact);
        }
        false
    }
}

fn transfer(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    mode: Option<&str>,
) -> Result<bool, String> {
    println!("from: {from}");
    println!("to:   {to}");
    let report = match mode {
        None => check_transfer(from, to),
        Some("--no-skip") => pc_core::check_transfer_no_skip(from, to),
        Some("--strongly-minimal") => {
            if !is_strongly_minimal(from) {
                return Err("--strongly-minimal requires a strongly minimal source query".into());
            }
            check_transfer_strongly_minimal(from, to)
        }
        Some(other) => return Err(format!("unknown flag '{other}'")),
    };
    let cache = report.cache_stats();
    println!(
        "index cache: {} hits / {} misses across candidate valuations",
        cache.hits, cache.misses
    );
    println!(
        "parallel-correctness transfers ({}): {}",
        report.method,
        if report.transfers { "yes" } else { "NO" }
    );
    if let Some(violation) = &report.violation {
        println!("  witness valuation of Q':  {}", violation.valuation);
        println!(
            "  facts no minimal valuation of Q covers: {}",
            violation.required_facts
        );
    }
    Ok(report.transfers)
}

fn hypercube(query: &ConjunctiveQuery, prime: &ConjunctiveQuery) -> bool {
    println!("family of: {query}");
    println!("candidate: {prime}");
    let report = hypercube_parallel_correct(query, prime);
    println!(
        "parallel-correct for the Hypercube family H_Q: {}",
        if report.parallel_correct { "yes" } else { "NO" }
    );
    report.parallel_correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use distribution::DistributionPolicy;

    #[test]
    fn policy_file_parsing() {
        let text = "
            # the Example 3.5 policy over {a, b}
            n0: R(a, a) R(b, a) R(b, b)
            n1: R(a, a), R(a, b), R(b, b)
        ";
        let policy = parse_policy(text).unwrap();
        assert_eq!(policy.network().len(), 2);
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "a"])).len(),
            2
        );
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "b"])).len(),
            1
        );
        assert!(policy
            .nodes_for(&Fact::from_names("R", &["c", "c"]))
            .is_empty());
    }

    #[test]
    fn policy_file_default_line() {
        let text = "default: n0 n1\nn0: R(a, b)";
        let policy = parse_policy(text).unwrap();
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["z", "z"])).len(),
            2
        );
    }

    #[test]
    fn bad_policy_files_are_rejected() {
        assert!(parse_policy("").is_err());
        assert!(parse_policy("n0 R(a,b)").is_err());
        assert!(parse_policy("n0: R(a,").is_err());
    }

    #[test]
    fn literal_queries_are_accepted() {
        let q = load_query("T(x) :- R(x, y).").unwrap();
        assert_eq!(q.body_size(), 1);
        assert!(load_query("not a query").is_err());
    }

    #[test]
    fn end_to_end_pc_command() {
        let query = load_query("T(x, z) :- R(x, y), R(y, z), R(x, x).").unwrap();
        let policy =
            parse_policy("n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)").unwrap();
        assert!(parallel_correctness(&query, &policy));
        let path = load_query("T(x, z) :- R(x, y), R(y, z).").unwrap();
        assert!(!parallel_correctness(&path, &policy));
    }
}
