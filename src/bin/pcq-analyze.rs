//! `pcq-analyze` — command-line static analyzer for parallel-correctness and
//! transferability of conjunctive queries.
//!
//! ```text
//! USAGE:
//!   pcq-analyze analyze   <query>
//!   pcq-analyze pc        <query> <policy-file>
//!   pcq-analyze transfer  <query-from> <query-to> [--no-skip | --strongly-minimal]
//!   pcq-analyze hypercube <query> <query-prime>
//!   pcq-analyze run       <query> <policy> <instance> [--workers N] [--json]
//!
//! ARGUMENTS:
//!   <query>        a named workload family (triangle, example3.5,
//!                  chain:<len>, star:<rays>, cycle:<len>), a file path, or a
//!                  literal query such as "T(x, z) :- R(x, y), R(y, z)."
//!   <policy-file>  a text file with one line per node:
//!                      n0: R(a, b) R(b, c)
//!                      n1: R(b, a)
//!                  an optional line `default: n0 n1` assigns unlisted facts.
//!   <policy>       hypercube:<budget>, broadcast:<nodes>,
//!                  round-robin:<nodes>, or a policy file as above.
//!   <instance>     random:<domain>:<facts>[:seed],
//!                  zipf:<domain>:<facts>:<exponent-percent>[:seed], a file
//!                  of facts, or literal facts such as "R(a, b). R(b, c)."
//! ```
//!
//! `run` reshuffles the instance under the policy and evaluates the query
//! through the one-round engine, reporting result size, per-node load and
//! per-node timings (`--json` for machine-readable output).
//!
//! Exit code 0 means the property holds (for `run`: the one-round result
//! equals the centralized result), 1 means it does not, 2 means a usage or
//! parse error.

use std::process::ExitCode;

use pcq::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(holds) => {
            if holds {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  pcq-analyze analyze   <query>\n  pcq-analyze pc        <query> <policy-file>\n  pcq-analyze transfer  <query-from> <query-to> [--no-skip | --strongly-minimal]\n  pcq-analyze hypercube <query> <query-prime>\n  pcq-analyze run       <query> <policy> <instance> [--workers N] [--json]\n\nrun specs:\n  <query>    triangle | example3.5 | chain:<len> | star:<rays> | cycle:<len> | file | literal\n  <policy>   hypercube:<budget> | broadcast:<nodes> | round-robin:<nodes> | policy-file\n  <instance> random:<domain>:<facts>[:seed] | zipf:<domain>:<facts>:<exp-percent>[:seed] | file | literal"
}

fn run(args: &[String]) -> Result<bool, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "analyze" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            Ok(analyze(&query))
        }
        "pc" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let policy = load_policy(args.get(2).ok_or("missing <policy-file>")?)?;
            Ok(parallel_correctness(&query, &policy))
        }
        "transfer" => {
            let from = load_query(args.get(1).ok_or("missing <query-from>")?)?;
            let to = load_query(args.get(2).ok_or("missing <query-to>")?)?;
            let mode = args.get(3).map(String::as_str);
            transfer(&from, &to, mode)
        }
        "hypercube" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let prime = load_query(args.get(2).ok_or("missing <query-prime>")?)?;
            Ok(hypercube(&query, &prime))
        }
        "run" => run_one_round(&args[1..]),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Loads a query from a file path, or parses the argument itself when it is
/// not an existing file.
fn load_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    let text = if std::path::Path::new(arg).exists() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    } else {
        arg.to_string()
    };
    ConjunctiveQuery::parse(text.trim()).map_err(|e| format!("cannot parse query '{arg}': {e}"))
}

/// Resolves a `run` query spec: a named workload family first, then the
/// file-or-literal fallback of [`load_query`].
fn load_run_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    match workloads::named_query(arg) {
        Ok(q) => Ok(q),
        Err(named_err) => load_query(arg).map_err(|parse_err| {
            format!("cannot resolve query spec '{arg}': {named_err}; {parse_err}")
        }),
    }
}

/// Resolves a `run` instance spec: a named generator over the query's
/// schema, a file of facts, or literal facts.
fn load_run_instance(arg: &str, query: &ConjunctiveQuery) -> Result<Instance, String> {
    match workloads::named_instance(arg, &query.schema()) {
        Ok(i) => Ok(i),
        Err(named_err) => {
            let text = if std::path::Path::new(arg).exists() {
                std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
            } else {
                arg.to_string()
            };
            cq::parse_instance(text.trim()).map_err(|parse_err| {
                format!("cannot resolve instance spec '{arg}': {named_err}; {parse_err}")
            })
        }
    }
}

/// A policy resolved from a `run` policy spec. Owns whichever concrete
/// policy the spec named, so the engine can borrow it as a trait object.
enum RunPolicy {
    Hypercube(HypercubePolicy),
    Explicit(ExplicitPolicy),
}

impl RunPolicy {
    fn as_dyn(&self) -> &dyn DistributionPolicy {
        match self {
            RunPolicy::Hypercube(p) => p,
            RunPolicy::Explicit(p) => p,
        }
    }
}

/// Resolves a `run` policy spec: `hypercube:<budget>`, `broadcast:<nodes>`,
/// `round-robin:<nodes>`, or a policy file.
fn load_run_policy(
    arg: &str,
    query: &ConjunctiveQuery,
    instance: &Instance,
) -> Result<RunPolicy, String> {
    let named_err = match arg.split_once(':') {
        Some(("hypercube", budget)) => {
            let budget: usize = budget
                .parse()
                .map_err(|_| format!("policy spec '{arg}': '{budget}' is not a number"))?;
            return HypercubePolicy::uniform(query, budget)
                .map(RunPolicy::Hypercube)
                .map_err(|e| format!("policy spec '{arg}': {e}"));
        }
        Some(("broadcast", nodes)) | Some(("round-robin", nodes)) => {
            let n: usize = nodes
                .parse()
                .map_err(|_| format!("policy spec '{arg}': '{nodes}' is not a number"))?;
            if n == 0 {
                return Err(format!("policy spec '{arg}': need at least one node"));
            }
            let network = Network::with_size(n);
            let policy = if arg.starts_with("broadcast") {
                ExplicitPolicy::broadcast(&network, instance)
            } else {
                ExplicitPolicy::round_robin(&network, instance)
            };
            return Ok(RunPolicy::Explicit(policy));
        }
        _ => format!("'{arg}' is not hypercube:<budget>, broadcast:<nodes> or round-robin:<nodes>"),
    };
    if std::path::Path::new(arg).exists() {
        load_policy(arg).map(RunPolicy::Explicit)
    } else {
        Err(format!(
            "cannot resolve policy spec: {named_err}, and no such policy file exists"
        ))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters) —
/// node and relation names are interned identifiers, but don't rely on it.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `run` subcommand: one-round evaluation of a workload triple.
///
/// Returns whether the one-round result equals the centralized result (the
/// exit-code contract: 0 = equal, 1 = answers lost).
fn run_one_round(args: &[String]) -> Result<bool, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut workers = 1usize;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workers" => {
                let value = iter.next().ok_or("--workers needs a number")?;
                workers = value
                    .parse()
                    .map_err(|_| format!("--workers: '{value}' is not a number"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ => positional.push(arg),
        }
    }
    let [query_spec, policy_spec, instance_spec] = positional[..] else {
        return Err("run needs <query> <policy> <instance>".to_string());
    };

    let query = load_run_query(query_spec)?;
    let instance = load_run_instance(instance_spec, &query)?;
    let policy = load_run_policy(policy_spec, &query, &instance)?;

    let engine = OneRoundEngine::new(policy.as_dyn()).workers(workers);
    // `total` covers only the one-round run; the centralized evaluation
    // below is a correctness check, not part of the round being measured.
    let total_start = std::time::Instant::now();
    let outcome = engine.evaluate(&query, &instance);
    let total = total_start.elapsed();
    let correct = outcome.result == cq::evaluate(&query, &instance);

    if json {
        let per_node: Vec<String> = outcome
            .per_node_output
            .keys()
            .map(|node| {
                format!(
                    r#"{{"node":"{}","load":{},"output":{},"time_us":{}}}"#,
                    json_escape(node.as_str()),
                    outcome.per_node_load.get(node).copied().unwrap_or(0),
                    outcome.per_node_output.get(node).copied().unwrap_or(0),
                    outcome
                        .per_node_time
                        .get(node)
                        .copied()
                        .unwrap_or_default()
                        .as_micros()
                )
            })
            .collect();
        println!(
            "{{\"query\":\"{}\",\"policy\":\"{}\",\"instance\":\"{}\",\"instance_facts\":{},\"workers\":{},\"result_size\":{},\"parallel_correct\":{},\"stats\":{{\"nodes\":{},\"total_assigned\":{},\"distinct_assigned\":{},\"max_load\":{},\"skipped\":{},\"replication_factor\":{:.4}}},\"timings_us\":{{\"distribute\":{},\"local_eval\":{},\"total\":{}}},\"per_node\":[{}]}}",
            json_escape(&query.to_string()),
            json_escape(policy_spec),
            json_escape(instance_spec),
            instance.len(),
            outcome.workers,
            outcome.result.len(),
            correct,
            outcome.stats.nodes,
            outcome.stats.total_assigned,
            outcome.stats.distinct_assigned,
            outcome.stats.max_load,
            outcome.stats.skipped,
            outcome.stats.replication_factor,
            outcome.distribute_time.as_micros(),
            outcome.local_eval_time.as_micros(),
            total.as_micros(),
            per_node.join(",")
        );
    } else {
        println!("query:       {query}");
        println!("policy:      {policy_spec}");
        println!("instance:    {instance_spec} ({} facts)", instance.len());
        println!("workers:     {}", outcome.workers);
        println!("result size: {}", outcome.result.len());
        println!(
            "correct:     {}",
            if correct {
                "yes"
            } else {
                "NO (one-round result differs from centralized)"
            }
        );
        println!("distribution: {}", outcome.stats);
        println!(
            "timings:     distribute={}µs local_eval={}µs total={}µs skew={:.2}",
            outcome.distribute_time.as_micros(),
            outcome.local_eval_time.as_micros(),
            total.as_micros(),
            outcome.time_skew()
        );
        for (node, output) in &outcome.per_node_output {
            println!(
                "  {node}: load={} output={} time={}µs",
                outcome.per_node_load.get(node).copied().unwrap_or(0),
                output,
                outcome
                    .per_node_time
                    .get(node)
                    .copied()
                    .unwrap_or_default()
                    .as_micros()
            );
        }
    }
    Ok(correct)
}

/// Parses the policy-file format described in the module documentation.
fn parse_policy(text: &str) -> Result<ExplicitPolicy, String> {
    let mut assignments: Vec<(Node, Fact)> = Vec::new();
    let mut default_nodes: Vec<Node> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let (head, rest) = line
            .split_once(':')
            .ok_or(format!("line {}: expected 'node: facts…'", lineno + 1))?;
        let head = head.trim();
        if head == "default" {
            for name in rest.split_whitespace() {
                default_nodes.push(Node::new(name));
            }
            continue;
        }
        let node = Node::new(head);
        // facts are separated by whitespace outside parentheses; reuse the
        // instance parser which accepts whitespace/comma/period separators.
        let facts = cq::parse_instance(rest).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        for fact in facts.facts() {
            assignments.push((node, fact.clone()));
        }
    }
    if assignments.is_empty() && default_nodes.is_empty() {
        return Err("the policy file assigns no facts".to_string());
    }
    let mut network = Network::default();
    for (node, _) in &assignments {
        network.add(*node);
    }
    for node in &default_nodes {
        network.add(*node);
    }
    let mut policy = ExplicitPolicy::new(network).with_default(default_nodes);
    // group assignments per fact
    let mut by_fact: std::collections::BTreeMap<Fact, Vec<Node>> =
        std::collections::BTreeMap::new();
    for (node, fact) in assignments {
        by_fact.entry(fact).or_default().push(node);
    }
    for (fact, nodes) in by_fact {
        policy.assign(fact, nodes);
    }
    Ok(policy)
}

fn load_policy(path: &str) -> Result<ExplicitPolicy, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_policy(&text)
}

fn analyze(query: &ConjunctiveQuery) -> bool {
    println!("query:             {query}");
    println!("input schema:      {}", query.schema());
    println!("full:              {}", query.is_full());
    println!("boolean:           {}", query.is_boolean());
    println!("self-joins:        {}", query.has_self_joins());
    println!("acyclic (GYO):     {}", cq::is_acyclic(query));
    println!("minimal:           {}", cq::is_minimal(query));
    let strongly = is_strongly_minimal(query);
    println!("strongly minimal:  {strongly}");
    println!("Lemma 4.8 applies: {}", pc_core::satisfies_lemma_4_8(query));
    let min = cq::minimize(query);
    if min.core.body_size() < query.body_size() {
        println!("core:              {}", min.core);
    }
    true
}

fn parallel_correctness(query: &ConjunctiveQuery, policy: &ExplicitPolicy) -> bool {
    println!("query:   {query}");
    println!("network: {}", policy.network());
    let report = check_parallel_correctness(query, policy);
    if report.is_correct() {
        println!("parallel-correct: yes (every minimal valuation meets at some node)");
        true
    } else {
        println!("parallel-correct: NO");
        if let Some(violation) = &report.violation {
            println!("  minimal valuation:       {}", violation.valuation);
            println!(
                "  counterexample instance: {}",
                violation.counterexample_instance
            );
            println!("  lost fact:               {}", violation.lost_fact);
        }
        false
    }
}

fn transfer(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    mode: Option<&str>,
) -> Result<bool, String> {
    println!("from: {from}");
    println!("to:   {to}");
    let report = match mode {
        None => check_transfer(from, to),
        Some("--no-skip") => pc_core::check_transfer_no_skip(from, to),
        Some("--strongly-minimal") => {
            if !is_strongly_minimal(from) {
                return Err("--strongly-minimal requires a strongly minimal source query".into());
            }
            check_transfer_strongly_minimal(from, to)
        }
        Some(other) => return Err(format!("unknown flag '{other}'")),
    };
    println!(
        "parallel-correctness transfers ({}): {}",
        report.method,
        if report.transfers { "yes" } else { "NO" }
    );
    if let Some(violation) = &report.violation {
        println!("  witness valuation of Q':  {}", violation.valuation);
        println!(
            "  facts no minimal valuation of Q covers: {}",
            violation.required_facts
        );
    }
    Ok(report.transfers)
}

fn hypercube(query: &ConjunctiveQuery, prime: &ConjunctiveQuery) -> bool {
    println!("family of: {query}");
    println!("candidate: {prime}");
    let report = hypercube_parallel_correct(query, prime);
    println!(
        "parallel-correct for the Hypercube family H_Q: {}",
        if report.parallel_correct { "yes" } else { "NO" }
    );
    report.parallel_correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use distribution::DistributionPolicy;

    #[test]
    fn policy_file_parsing() {
        let text = "
            # the Example 3.5 policy over {a, b}
            n0: R(a, a) R(b, a) R(b, b)
            n1: R(a, a), R(a, b), R(b, b)
        ";
        let policy = parse_policy(text).unwrap();
        assert_eq!(policy.network().len(), 2);
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "a"])).len(),
            2
        );
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "b"])).len(),
            1
        );
        assert!(policy
            .nodes_for(&Fact::from_names("R", &["c", "c"]))
            .is_empty());
    }

    #[test]
    fn policy_file_default_line() {
        let text = "default: n0 n1\nn0: R(a, b)";
        let policy = parse_policy(text).unwrap();
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["z", "z"])).len(),
            2
        );
    }

    #[test]
    fn bad_policy_files_are_rejected() {
        assert!(parse_policy("").is_err());
        assert!(parse_policy("n0 R(a,b)").is_err());
        assert!(parse_policy("n0: R(a,").is_err());
    }

    #[test]
    fn literal_queries_are_accepted() {
        let q = load_query("T(x) :- R(x, y).").unwrap();
        assert_eq!(q.body_size(), 1);
        assert!(load_query("not a query").is_err());
    }

    #[test]
    fn end_to_end_pc_command() {
        let query = load_query("T(x, z) :- R(x, y), R(y, z), R(x, x).").unwrap();
        let policy =
            parse_policy("n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)").unwrap();
        assert!(parallel_correctness(&query, &policy));
        let path = load_query("T(x, z) :- R(x, y), R(y, z).").unwrap();
        assert!(!parallel_correctness(&path, &policy));
    }
}
