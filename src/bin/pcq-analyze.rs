//! `pcq-analyze` — command-line static analyzer for parallel-correctness and
//! transferability of conjunctive queries.
//!
//! ```text
//! USAGE:
//!   pcq-analyze analyze    <query>
//!   pcq-analyze pc         <query> <policy-file>
//!   pcq-analyze transfer   <query-from> <query-to> [--no-skip | --strongly-minimal]
//!   pcq-analyze hypercube  <query> <query-prime>
//!   pcq-analyze run        <query> <policy> <instance> [--workers N] [--json]
//!                          [--rounds N] [--schedule S] [--feedback R]
//!                          [--streaming] [--distribute-workers N]
//!   pcq-analyze bench-diff <trajectory-file> [--threshold-pct P]
//!                          [--min-ns N] [--bench NAME]...
//!
//! ARGUMENTS:
//!   <query>        a named workload family (triangle, example3.5,
//!                  chain:<len>, star:<rays>, cycle:<len>), a file path, or a
//!                  literal query such as "T(x, z) :- R(x, y), R(y, z)."
//!   <policy-file>  a text file with one line per node:
//!                      n0: R(a, b) R(b, c)
//!                      n1: R(b, a)
//!                  an optional line `default: n0 n1` assigns unlisted facts.
//!   <policy>       hypercube:<budget>, broadcast:<nodes>,
//!                  round-robin:<nodes>, or a policy file as above.
//!   <instance>     random:<domain>:<facts>[:seed],
//!                  zipf:<domain>:<facts>:<exponent-percent>[:seed], a file
//!                  of facts, or literal facts such as "R(a, b). R(b, c)."
//! ```
//!
//! `run` reshuffles the instance under the policy and evaluates the query
//! through the one-round engine, reporting result size, per-node load and
//! per-node timings (`--json` for machine-readable output). With
//! `--rounds N` it iterates distribute→evaluate cycles through the
//! multi-round engine instead: `--schedule` names per-round policies
//! (`hash-join:<k>,hypercube:<b>,…`; default: the `<policy>` argument every
//! round), `--feedback R` renames each round's outputs into relation `R`
//! before the next reshuffle (making the query effectively recursive), and
//! the result is compared against the global fixpoint of the centralized
//! iterated query. `--streaming` streams chunks to workers instead of
//! materializing them; `--distribute-workers` shards the reshuffle phase.
//!
//! `bench-diff` compares the two most recent entries per bench in a
//! `BENCH_results.json` trajectory and fails (exit 1) when any benchmark
//! regressed by more than the threshold (default 25%, ignoring entries
//! faster than `--min-ns`, default 100µs) — the CI regression gate.
//!
//! Exit code 0 means the property holds (for `run`: the distributed result
//! equals the centralized reference; for `bench-diff`: no regression),
//! 1 means it does not, 2 means a usage or parse error.

use std::process::ExitCode;

use pcq::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(holds) => {
            if holds {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  pcq-analyze analyze    <query>\n  pcq-analyze pc         <query> <policy-file>\n  pcq-analyze transfer   <query-from> <query-to> [--no-skip | --strongly-minimal]\n  pcq-analyze hypercube  <query> <query-prime>\n  pcq-analyze run        <query> <policy> <instance> [--workers N] [--json]\n                         [--rounds N] [--schedule S] [--feedback R]\n                         [--streaming] [--distribute-workers N]\n  pcq-analyze bench-diff <trajectory-file> [--threshold-pct P] [--min-ns N] [--bench NAME]...\n\nrun specs:\n  <query>    triangle | example3.5 | chain:<len> | star:<rays> | cycle:<len> | file | literal\n  <policy>   hypercube:<budget> | broadcast:<nodes> | round-robin:<nodes> | policy-file\n  <instance> random:<domain>:<facts>[:seed] | zipf:<domain>:<facts>:<exp-percent>[:seed] | file | literal\n  <schedule> comma-separated per-round policies: hash-join:<k> | hypercube:<b> | broadcast:<n>"
}

fn run(args: &[String]) -> Result<bool, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "analyze" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            Ok(analyze(&query))
        }
        "pc" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let policy = load_policy(args.get(2).ok_or("missing <policy-file>")?)?;
            Ok(parallel_correctness(&query, &policy))
        }
        "transfer" => {
            let from = load_query(args.get(1).ok_or("missing <query-from>")?)?;
            let to = load_query(args.get(2).ok_or("missing <query-to>")?)?;
            let mode = args.get(3).map(String::as_str);
            transfer(&from, &to, mode)
        }
        "hypercube" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let prime = load_query(args.get(2).ok_or("missing <query-prime>")?)?;
            Ok(hypercube(&query, &prime))
        }
        "run" => run_command(&args[1..]),
        "bench-diff" => bench_diff(&args[1..]),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Loads a query from a file path, or parses the argument itself when it is
/// not an existing file.
fn load_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    let text = if std::path::Path::new(arg).exists() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    } else {
        arg.to_string()
    };
    ConjunctiveQuery::parse(text.trim()).map_err(|e| format!("cannot parse query '{arg}': {e}"))
}

/// Resolves a `run` query spec: a named workload family first, then the
/// file-or-literal fallback of [`load_query`].
fn load_run_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    match workloads::named_query(arg) {
        Ok(q) => Ok(q),
        Err(named_err) => load_query(arg).map_err(|parse_err| {
            format!("cannot resolve query spec '{arg}': {named_err}; {parse_err}")
        }),
    }
}

/// Resolves a `run` instance spec: a named generator over the query's
/// schema, a file of facts, or literal facts.
fn load_run_instance(arg: &str, query: &ConjunctiveQuery) -> Result<Instance, String> {
    match workloads::named_instance(arg, &query.schema()) {
        Ok(i) => Ok(i),
        Err(named_err) => {
            let text = if std::path::Path::new(arg).exists() {
                std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
            } else {
                arg.to_string()
            };
            cq::parse_instance(text.trim()).map_err(|parse_err| {
                format!("cannot resolve instance spec '{arg}': {named_err}; {parse_err}")
            })
        }
    }
}

/// Resolves a `run` policy spec: `hypercube:<budget>`, `broadcast:<nodes>`,
/// `round-robin:<nodes>`, or a policy file. Boxed so single- and
/// multi-round paths can mix spec-named and schedule-named policies.
fn load_run_policy(
    arg: &str,
    query: &ConjunctiveQuery,
    instance: &Instance,
) -> Result<Box<dyn DistributionPolicy>, String> {
    let named_err = match arg.split_once(':') {
        Some(("hypercube", budget)) => {
            let budget: usize = budget
                .parse()
                .map_err(|_| format!("policy spec '{arg}': '{budget}' is not a number"))?;
            return HypercubePolicy::uniform(query, budget)
                .map(|p| Box::new(p) as Box<dyn DistributionPolicy>)
                .map_err(|e| format!("policy spec '{arg}': {e}"));
        }
        Some(("broadcast", nodes)) | Some(("round-robin", nodes)) => {
            let n: usize = nodes
                .parse()
                .map_err(|_| format!("policy spec '{arg}': '{nodes}' is not a number"))?;
            if n == 0 {
                return Err(format!("policy spec '{arg}': need at least one node"));
            }
            let network = Network::with_size(n);
            let policy = if arg.starts_with("broadcast") {
                ExplicitPolicy::broadcast(&network, instance)
            } else {
                ExplicitPolicy::round_robin(&network, instance)
            };
            return Ok(Box::new(policy));
        }
        _ => format!("'{arg}' is not hypercube:<budget>, broadcast:<nodes> or round-robin:<nodes>"),
    };
    if std::path::Path::new(arg).exists() {
        load_policy(arg).map(|p| Box::new(p) as Box<dyn DistributionPolicy>)
    } else {
        Err(format!(
            "cannot resolve policy spec: {named_err}, and no such policy file exists"
        ))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters) —
/// node and relation names are interned identifiers, but don't rely on it.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parsed flags of the `run` subcommand.
struct RunOptions {
    workers: usize,
    distribute_workers: usize,
    streaming: bool,
    json: bool,
    rounds: Option<usize>,
    schedule: Option<String>,
    feedback: Option<String>,
}

/// The `run` subcommand: one-round evaluation of a workload triple, or —
/// with `--rounds` — the iterated multi-round evaluation.
///
/// Exit-code contract: 0 = the distributed result equals the centralized
/// reference (one-round result, or the global fixpoint of the iterated
/// query), 1 = answers lost or round cap too small.
fn run_command(args: &[String]) -> Result<bool, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut opts = RunOptions {
        workers: 1,
        distribute_workers: 1,
        streaming: false,
        json: false,
        rounds: None,
        schedule: None,
        feedback: None,
    };
    let mut iter = args.iter();
    let parse_count = |flag: &str, value: Option<&String>| -> Result<usize, String> {
        let value = value.ok_or(format!("{flag} needs a number"))?;
        let n: usize = value
            .parse()
            .map_err(|_| format!("{flag}: '{value}' is not a number"))?;
        if n == 0 {
            return Err(format!("{flag} must be at least 1"));
        }
        Ok(n)
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--streaming" => opts.streaming = true,
            "--workers" => opts.workers = parse_count("--workers", iter.next())?,
            "--distribute-workers" => {
                opts.distribute_workers = parse_count("--distribute-workers", iter.next())?
            }
            "--rounds" => opts.rounds = Some(parse_count("--rounds", iter.next())?),
            "--schedule" => {
                opts.schedule = Some(
                    iter.next()
                        .ok_or("--schedule needs a policy list")?
                        .to_string(),
                )
            }
            "--feedback" => {
                opts.feedback = Some(
                    iter.next()
                        .ok_or("--feedback needs a relation name")?
                        .to_string(),
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ => positional.push(arg),
        }
    }
    let [query_spec, policy_spec, instance_spec] = positional[..] else {
        return Err("run needs <query> <policy> <instance>".to_string());
    };

    if opts.rounds.is_none() {
        // These flags only mean something across rounds; silently running a
        // single round instead would misreport what the user asked for.
        if opts.schedule.is_some() {
            return Err("--schedule requires --rounds".to_string());
        }
        if opts.feedback.is_some() {
            return Err("--feedback requires --rounds".to_string());
        }
    }

    let query = load_run_query(query_spec)?;
    let instance = load_run_instance(instance_spec, &query)?;

    if opts.rounds.is_some() {
        return run_multi_round(&query, policy_spec, instance_spec, &instance, &opts);
    }

    let policy = load_run_policy(policy_spec, &query, &instance)?;
    let engine = OneRoundEngine::new(policy.as_ref())
        .workers(opts.workers)
        .distribute_workers(opts.distribute_workers)
        .streaming(opts.streaming);
    let json = opts.json;
    // `total` covers only the one-round run; the centralized evaluation
    // below is a correctness check, not part of the round being measured.
    let total_start = std::time::Instant::now();
    let outcome = engine.evaluate(&query, &instance);
    let total = total_start.elapsed();
    let correct = outcome.result == cq::evaluate(&query, &instance);

    if json {
        let per_node: Vec<String> = outcome
            .per_node_output
            .keys()
            .map(|node| {
                format!(
                    r#"{{"node":"{}","load":{},"output":{},"time_us":{}}}"#,
                    json_escape(node.as_str()),
                    outcome.per_node_load.get(node).copied().unwrap_or(0),
                    outcome.per_node_output.get(node).copied().unwrap_or(0),
                    outcome
                        .per_node_time
                        .get(node)
                        .copied()
                        .unwrap_or_default()
                        .as_micros()
                )
            })
            .collect();
        println!(
            "{{\"query\":\"{}\",\"policy\":\"{}\",\"instance\":\"{}\",\"instance_facts\":{},\"workers\":{},\"result_size\":{},\"parallel_correct\":{},\"stats\":{{\"nodes\":{},\"total_assigned\":{},\"distinct_assigned\":{},\"max_load\":{},\"skipped\":{},\"replication_factor\":{:.4}}},\"timings_us\":{{\"distribute\":{},\"local_eval\":{},\"total\":{}}},\"per_node\":[{}]}}",
            json_escape(&query.to_string()),
            json_escape(policy_spec),
            json_escape(instance_spec),
            instance.len(),
            outcome.workers,
            outcome.result.len(),
            correct,
            outcome.stats.nodes,
            outcome.stats.total_assigned,
            outcome.stats.distinct_assigned,
            outcome.stats.max_load,
            outcome.stats.skipped,
            outcome.stats.replication_factor,
            outcome.distribute_time.as_micros(),
            outcome.local_eval_time.as_micros(),
            total.as_micros(),
            per_node.join(",")
        );
    } else {
        println!("query:       {query}");
        println!("policy:      {policy_spec}");
        println!("instance:    {instance_spec} ({} facts)", instance.len());
        println!("workers:     {}", outcome.workers);
        println!("result size: {}", outcome.result.len());
        println!(
            "correct:     {}",
            if correct {
                "yes"
            } else {
                "NO (one-round result differs from centralized)"
            }
        );
        println!("distribution: {}", outcome.stats);
        println!(
            "timings:     distribute={}µs local_eval={}µs total={}µs skew={:.2}",
            outcome.distribute_time.as_micros(),
            outcome.local_eval_time.as_micros(),
            total.as_micros(),
            outcome.time_skew()
        );
        for (node, output) in &outcome.per_node_output {
            println!(
                "  {node}: load={} output={} time={}µs",
                outcome.per_node_load.get(node).copied().unwrap_or(0),
                output,
                outcome
                    .per_node_time
                    .get(node)
                    .copied()
                    .unwrap_or_default()
                    .as_micros()
            );
        }
    }
    Ok(correct)
}

/// The multi-round arm of `run`: iterated distribute→evaluate cycles,
/// compared against the global fixpoint of the centralized iterated query.
fn run_multi_round(
    query: &ConjunctiveQuery,
    policy_spec: &str,
    instance_spec: &str,
    instance: &Instance,
    opts: &RunOptions,
) -> Result<bool, String> {
    let rounds = opts.rounds.unwrap_or(1);
    // The <policy> positional is always resolved — a typo'd spec must fail
    // even when --schedule overrides which policies actually run; without
    // --schedule the single <policy> spec repeats every round.
    let positional_policy = load_run_policy(policy_spec, query, instance)?;
    let policies: Vec<Box<dyn DistributionPolicy>> = match &opts.schedule {
        Some(spec) => workloads::named_schedule(spec, query)?,
        None => vec![positional_policy],
    };
    let refs: Vec<&dyn DistributionPolicy> = policies.iter().map(Box::as_ref).collect();
    let mut engine = MultiRoundEngine::new(RoundSchedule::of(refs))
        .rounds(rounds)
        .workers(opts.workers)
        .distribute_workers(opts.distribute_workers)
        .streaming(opts.streaming);
    if let Some(feedback) = &opts.feedback {
        // A feedback relation the query never reads — or reads at a
        // different arity — would make the recursion silently inert; the
        // user asked for iteration, so that is a usage error.
        let head_arity = query.head().arity();
        match query.schema().arity(Symbol::new(feedback)) {
            Some(arity) if arity == head_arity => {}
            Some(arity) => {
                return Err(format!(
                    "--feedback {feedback}: the query reads '{feedback}' with arity {arity}, but the head has arity {head_arity}"
                ))
            }
            None => {
                return Err(format!(
                    "--feedback {feedback}: the query does not read relation '{feedback}'"
                ))
            }
        }
        engine = engine.feedback_into(feedback);
    }

    // `total` covers only the distributed multi-round run (same contract as
    // the one-round arm); the centralized reference fixpoint inside the
    // report is a correctness check, not part of the rounds being measured.
    let total_start = std::time::Instant::now();
    let outcome = engine.evaluate(query, instance);
    let total = total_start.elapsed();
    let report = MultiRoundInstanceReport::from_outcome(query, &engine, instance, outcome);
    let outcome = &report.outcome;

    if opts.json {
        let per_round: Vec<String> = outcome
            .rounds
            .iter()
            .enumerate()
            .map(|(i, round)| {
                format!(
                    r#"{{"round":{},"result_size":{},"nodes":{},"total_assigned":{},"max_load":{},"skipped":{},"replication_factor":{:.4},"peak_chunks":{},"distribute_us":{},"local_eval_us":{}}}"#,
                    i,
                    round.result.len(),
                    round.stats.nodes,
                    round.stats.total_assigned,
                    round.stats.max_load,
                    round.stats.skipped,
                    round.stats.replication_factor,
                    round.peak_chunks,
                    round.distribute_time.as_micros(),
                    round.local_eval_time.as_micros(),
                )
            })
            .collect();
        println!(
            "{{\"query\":\"{}\",\"policy\":\"{}\",\"schedule\":{},\"instance\":\"{}\",\"instance_facts\":{},\"workers\":{},\"streaming\":{},\"rounds_requested\":{},\"rounds_run\":{},\"reference_rounds\":{},\"converged\":{},\"multi_round_correct\":{},\"result_size\":{},\"missing\":{},\"total_comm_volume\":{},\"timings_us\":{{\"distribute\":{},\"local_eval\":{},\"total\":{}}},\"rounds\":[{}]}}",
            json_escape(&query.to_string()),
            json_escape(policy_spec),
            match &opts.schedule {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".to_string(),
            },
            json_escape(instance_spec),
            instance.len(),
            opts.workers,
            opts.streaming,
            rounds,
            outcome.rounds_run(),
            report.reference_rounds,
            outcome.converged,
            report.correct,
            outcome.result.len(),
            report.missing.len(),
            outcome.total_comm_volume(),
            outcome.total_distribute_time().as_micros(),
            outcome.total_local_eval_time().as_micros(),
            total.as_micros(),
            per_round.join(",")
        );
    } else {
        println!("query:       {query}");
        match &opts.schedule {
            Some(s) => println!("schedule:    {s}"),
            None => println!("policy:      {policy_spec} (every round)"),
        }
        if let Some(feedback) = &opts.feedback {
            println!("feedback:    outputs re-enter as {feedback}");
        }
        println!("instance:    {instance_spec} ({} facts)", instance.len());
        println!(
            "rounds:      {} run / {} requested (reference fixpoint: {})",
            outcome.rounds_run(),
            rounds,
            report.reference_rounds
        );
        println!("converged:   {}", outcome.converged);
        println!("result size: {}", outcome.result.len());
        println!(
            "correct:     {}",
            if report.correct {
                "yes (equals the global fixpoint)"
            } else {
                "NO (distributed result differs from the iterated fixpoint)"
            }
        );
        println!(
            "comm volume: {} fact-assignments over all rounds",
            outcome.total_comm_volume()
        );
        println!(
            "timings:     distribute={}µs local_eval={}µs total={}µs",
            outcome.total_distribute_time().as_micros(),
            outcome.total_local_eval_time().as_micros(),
            total.as_micros()
        );
        for (i, round) in outcome.rounds.iter().enumerate() {
            println!(
                "  round {i}: output={} {} peak_chunks={} time={}µs",
                round.result.len(),
                round.stats,
                round.peak_chunks,
                (round.distribute_time + round.local_eval_time).as_micros()
            );
        }
    }
    Ok(report.correct)
}

/// One parsed trajectory record: a bench name and its `(id, mean_ns)` rows.
struct BenchRun {
    bench: String,
    results: Vec<(String, u128)>,
}

/// Parses one JSONL line of the trajectory format written by the vendored
/// criterion (`{"bench":…,"unix_ms":…,"results":[{"id":…,"mean_ns":…},…]}`).
/// Hand-rolled because the vendored serde is a no-op; the format is
/// machine-generated, so a scanning extractor is sufficient.
fn parse_bench_line(line: &str) -> Result<BenchRun, String> {
    /// Reads the JSON string following `key`, unescaping the `\"` and `\\`
    /// sequences criterion's `json_escape` emits (other escapes pass
    /// through verbatim — both runs go through this same parser, so ids
    /// still compare consistently). Returns the string and the offset just
    /// past its closing quote.
    fn string_after(text: &str, key: &str) -> Option<(String, usize)> {
        let start = text.find(key)? + key.len();
        let mut out = String::new();
        let mut escaped = false;
        for (offset, c) in text[start..].char_indices() {
            if escaped {
                match c {
                    '"' | '\\' => out.push(c),
                    other => {
                        out.push('\\');
                        out.push(other);
                    }
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some((out, start + offset + 1));
            } else {
                out.push(c);
            }
        }
        None // unterminated string
    }
    let (bench, _) = string_after(line, "\"bench\":\"").ok_or("line has no \"bench\" field")?;
    let mut results = Vec::new();
    let mut rest = line;
    while let Some((id, consumed)) = string_after(rest, "\"id\":\"") {
        rest = &rest[consumed..];
        let mean_key = "\"mean_ns\":";
        let at = rest
            .find(mean_key)
            .ok_or(format!("id '{id}' has no mean_ns"))?;
        let digits: String = rest[at + mean_key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let mean_ns: u128 = digits
            .parse()
            .map_err(|_| format!("id '{id}': malformed mean_ns"))?;
        results.push((id, mean_ns));
    }
    if results.is_empty() {
        return Err(format!("bench '{bench}' record has no results"));
    }
    Ok(BenchRun { bench, results })
}

/// The `bench-diff` subcommand: the CI bench-regression gate. Compares, for
/// every bench (or only `--bench`-named ones), the most recent trajectory
/// record against the previous one; exits 1 when any benchmark slowed down
/// by more than `--threshold-pct` (entries below `--min-ns` in both runs
/// are noise and are skipped).
fn bench_diff(args: &[String]) -> Result<bool, String> {
    let mut path: Option<&String> = None;
    let mut threshold_pct = 25.0f64;
    let mut min_ns = 100_000u128;
    let mut only: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let value = iter.next().ok_or("--threshold-pct needs a number")?;
                threshold_pct = value
                    .parse()
                    .map_err(|_| format!("--threshold-pct: '{value}' is not a number"))?;
                if threshold_pct <= 0.0 {
                    return Err("--threshold-pct must be positive".to_string());
                }
            }
            "--min-ns" => {
                let value = iter.next().ok_or("--min-ns needs a number")?;
                min_ns = value
                    .parse()
                    .map_err(|_| format!("--min-ns: '{value}' is not a number"))?;
            }
            "--bench" => only.push(iter.next().ok_or("--bench needs a name")?.to_string()),
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ if path.is_none() => path = Some(arg),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let path = path.ok_or("bench-diff needs a <trajectory-file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    // Latest-two records per bench name, in file (= chronological) order.
    let mut history: std::collections::BTreeMap<String, Vec<BenchRun>> =
        std::collections::BTreeMap::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let run = parse_bench_line(line)?;
        history.entry(run.bench.clone()).or_default().push(run);
    }
    if history.is_empty() {
        return Err(format!("{path} contains no bench records"));
    }
    for name in &only {
        if !history.contains_key(name) {
            return Err(format!("bench '{name}' does not appear in {path}"));
        }
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (bench, runs) in &history {
        if !only.is_empty() && !only.contains(bench) {
            continue;
        }
        let [.., previous, latest] = &runs[..] else {
            println!("bench-diff: {bench}: only one run recorded, nothing to compare");
            continue;
        };
        let baseline: std::collections::BTreeMap<&str, u128> = previous
            .results
            .iter()
            .map(|(id, ns)| (id.as_str(), *ns))
            .collect();
        for (id, new_ns) in &latest.results {
            let Some(&old_ns) = baseline.get(id.as_str()) else {
                continue;
            };
            if old_ns.max(*new_ns) < min_ns {
                continue; // sub-resolution noise
            }
            compared += 1;
            let change_pct = (*new_ns as f64 - old_ns as f64) / old_ns as f64 * 100.0;
            if change_pct > threshold_pct {
                regressions += 1;
                println!(
                    "REGRESSION {bench}/{id}: {old_ns}ns -> {new_ns}ns (+{change_pct:.1}% > {threshold_pct:.0}%)"
                );
            }
        }
    }
    println!(
        "bench-diff: {compared} benchmarks compared, {regressions} regression(s) above {threshold_pct:.0}%"
    );
    Ok(regressions == 0)
}

/// Parses the policy-file format described in the module documentation.
fn parse_policy(text: &str) -> Result<ExplicitPolicy, String> {
    let mut assignments: Vec<(Node, Fact)> = Vec::new();
    let mut default_nodes: Vec<Node> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let (head, rest) = line
            .split_once(':')
            .ok_or(format!("line {}: expected 'node: facts…'", lineno + 1))?;
        let head = head.trim();
        if head == "default" {
            for name in rest.split_whitespace() {
                default_nodes.push(Node::new(name));
            }
            continue;
        }
        let node = Node::new(head);
        // facts are separated by whitespace outside parentheses; reuse the
        // instance parser which accepts whitespace/comma/period separators.
        let facts = cq::parse_instance(rest).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        for fact in facts.facts() {
            assignments.push((node, fact.clone()));
        }
    }
    if assignments.is_empty() && default_nodes.is_empty() {
        return Err("the policy file assigns no facts".to_string());
    }
    let mut network = Network::default();
    for (node, _) in &assignments {
        network.add(*node);
    }
    for node in &default_nodes {
        network.add(*node);
    }
    let mut policy = ExplicitPolicy::new(network).with_default(default_nodes);
    // group assignments per fact
    let mut by_fact: std::collections::BTreeMap<Fact, Vec<Node>> =
        std::collections::BTreeMap::new();
    for (node, fact) in assignments {
        by_fact.entry(fact).or_default().push(node);
    }
    for (fact, nodes) in by_fact {
        policy.assign(fact, nodes);
    }
    Ok(policy)
}

fn load_policy(path: &str) -> Result<ExplicitPolicy, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_policy(&text)
}

fn analyze(query: &ConjunctiveQuery) -> bool {
    println!("query:             {query}");
    println!("input schema:      {}", query.schema());
    println!("full:              {}", query.is_full());
    println!("boolean:           {}", query.is_boolean());
    println!("self-joins:        {}", query.has_self_joins());
    println!("acyclic (GYO):     {}", cq::is_acyclic(query));
    println!("minimal:           {}", cq::is_minimal(query));
    let strongly = is_strongly_minimal(query);
    println!("strongly minimal:  {strongly}");
    println!("Lemma 4.8 applies: {}", pc_core::satisfies_lemma_4_8(query));
    let min = cq::minimize(query);
    if min.core.body_size() < query.body_size() {
        println!("core:              {}", min.core);
    }
    true
}

fn parallel_correctness(query: &ConjunctiveQuery, policy: &ExplicitPolicy) -> bool {
    println!("query:   {query}");
    println!("network: {}", policy.network());
    let report = check_parallel_correctness(query, policy);
    if report.is_correct() {
        println!("parallel-correct: yes (every minimal valuation meets at some node)");
        true
    } else {
        println!("parallel-correct: NO");
        if let Some(violation) = &report.violation {
            println!("  minimal valuation:       {}", violation.valuation);
            println!(
                "  counterexample instance: {}",
                violation.counterexample_instance
            );
            println!("  lost fact:               {}", violation.lost_fact);
        }
        false
    }
}

fn transfer(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    mode: Option<&str>,
) -> Result<bool, String> {
    println!("from: {from}");
    println!("to:   {to}");
    let report = match mode {
        None => check_transfer(from, to),
        Some("--no-skip") => pc_core::check_transfer_no_skip(from, to),
        Some("--strongly-minimal") => {
            if !is_strongly_minimal(from) {
                return Err("--strongly-minimal requires a strongly minimal source query".into());
            }
            check_transfer_strongly_minimal(from, to)
        }
        Some(other) => return Err(format!("unknown flag '{other}'")),
    };
    println!(
        "parallel-correctness transfers ({}): {}",
        report.method,
        if report.transfers { "yes" } else { "NO" }
    );
    if let Some(violation) = &report.violation {
        println!("  witness valuation of Q':  {}", violation.valuation);
        println!(
            "  facts no minimal valuation of Q covers: {}",
            violation.required_facts
        );
    }
    Ok(report.transfers)
}

fn hypercube(query: &ConjunctiveQuery, prime: &ConjunctiveQuery) -> bool {
    println!("family of: {query}");
    println!("candidate: {prime}");
    let report = hypercube_parallel_correct(query, prime);
    println!(
        "parallel-correct for the Hypercube family H_Q: {}",
        if report.parallel_correct { "yes" } else { "NO" }
    );
    report.parallel_correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use distribution::DistributionPolicy;

    #[test]
    fn policy_file_parsing() {
        let text = "
            # the Example 3.5 policy over {a, b}
            n0: R(a, a) R(b, a) R(b, b)
            n1: R(a, a), R(a, b), R(b, b)
        ";
        let policy = parse_policy(text).unwrap();
        assert_eq!(policy.network().len(), 2);
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "a"])).len(),
            2
        );
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "b"])).len(),
            1
        );
        assert!(policy
            .nodes_for(&Fact::from_names("R", &["c", "c"]))
            .is_empty());
    }

    #[test]
    fn policy_file_default_line() {
        let text = "default: n0 n1\nn0: R(a, b)";
        let policy = parse_policy(text).unwrap();
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["z", "z"])).len(),
            2
        );
    }

    #[test]
    fn bad_policy_files_are_rejected() {
        assert!(parse_policy("").is_err());
        assert!(parse_policy("n0 R(a,b)").is_err());
        assert!(parse_policy("n0: R(a,").is_err());
    }

    #[test]
    fn literal_queries_are_accepted() {
        let q = load_query("T(x) :- R(x, y).").unwrap();
        assert_eq!(q.body_size(), 1);
        assert!(load_query("not a query").is_err());
    }

    #[test]
    fn end_to_end_pc_command() {
        let query = load_query("T(x, z) :- R(x, y), R(y, z), R(x, x).").unwrap();
        let policy =
            parse_policy("n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)").unwrap();
        assert!(parallel_correctness(&query, &policy));
        let path = load_query("T(x, z) :- R(x, y), R(y, z).").unwrap();
        assert!(!parallel_correctness(&path, &policy));
    }
}
