//! `pcq-analyze` — command-line static analyzer for parallel-correctness and
//! transferability of conjunctive queries.
//!
//! ```text
//! USAGE:
//!   pcq-analyze analyze   <query>
//!   pcq-analyze pc        <query> <policy-file>
//!   pcq-analyze transfer  <query-from> <query-to> [--no-skip | --strongly-minimal]
//!   pcq-analyze hypercube <query> <query-prime>
//!
//! ARGUMENTS:
//!   <query>        either a file path or a literal query such as
//!                  "T(x, z) :- R(x, y), R(y, z)."
//!   <policy-file>  a text file with one line per node:
//!                      n0: R(a, b) R(b, c)
//!                      n1: R(b, a)
//!                  an optional line `default: n0 n1` assigns unlisted facts.
//! ```
//!
//! Exit code 0 means the property holds, 1 means it does not, 2 means a
//! usage or parse error.

use std::process::ExitCode;

use pcq::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(holds) => {
            if holds {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  pcq-analyze analyze   <query>\n  pcq-analyze pc        <query> <policy-file>\n  pcq-analyze transfer  <query-from> <query-to> [--no-skip | --strongly-minimal]\n  pcq-analyze hypercube <query> <query-prime>"
}

fn run(args: &[String]) -> Result<bool, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "analyze" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            Ok(analyze(&query))
        }
        "pc" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let policy = load_policy(args.get(2).ok_or("missing <policy-file>")?)?;
            Ok(parallel_correctness(&query, &policy))
        }
        "transfer" => {
            let from = load_query(args.get(1).ok_or("missing <query-from>")?)?;
            let to = load_query(args.get(2).ok_or("missing <query-to>")?)?;
            let mode = args.get(3).map(String::as_str);
            transfer(&from, &to, mode)
        }
        "hypercube" => {
            let query = load_query(args.get(1).ok_or("missing <query>")?)?;
            let prime = load_query(args.get(2).ok_or("missing <query-prime>")?)?;
            Ok(hypercube(&query, &prime))
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Loads a query from a file path, or parses the argument itself when it is
/// not an existing file.
fn load_query(arg: &str) -> Result<ConjunctiveQuery, String> {
    let text = if std::path::Path::new(arg).exists() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    } else {
        arg.to_string()
    };
    ConjunctiveQuery::parse(text.trim()).map_err(|e| format!("cannot parse query '{arg}': {e}"))
}

/// Parses the policy-file format described in the module documentation.
fn parse_policy(text: &str) -> Result<ExplicitPolicy, String> {
    let mut assignments: Vec<(Node, Fact)> = Vec::new();
    let mut default_nodes: Vec<Node> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let (head, rest) = line
            .split_once(':')
            .ok_or(format!("line {}: expected 'node: facts…'", lineno + 1))?;
        let head = head.trim();
        if head == "default" {
            for name in rest.split_whitespace() {
                default_nodes.push(Node::new(name));
            }
            continue;
        }
        let node = Node::new(head);
        // facts are separated by whitespace outside parentheses; reuse the
        // instance parser which accepts whitespace/comma/period separators.
        let facts = cq::parse_instance(rest).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        for fact in facts.facts() {
            assignments.push((node, fact.clone()));
        }
    }
    if assignments.is_empty() && default_nodes.is_empty() {
        return Err("the policy file assigns no facts".to_string());
    }
    let mut network = Network::default();
    for (node, _) in &assignments {
        network.add(*node);
    }
    for node in &default_nodes {
        network.add(*node);
    }
    let mut policy = ExplicitPolicy::new(network).with_default(default_nodes);
    // group assignments per fact
    let mut by_fact: std::collections::BTreeMap<Fact, Vec<Node>> =
        std::collections::BTreeMap::new();
    for (node, fact) in assignments {
        by_fact.entry(fact).or_default().push(node);
    }
    for (fact, nodes) in by_fact {
        policy.assign(fact, nodes);
    }
    Ok(policy)
}

fn load_policy(path: &str) -> Result<ExplicitPolicy, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_policy(&text)
}

fn analyze(query: &ConjunctiveQuery) -> bool {
    println!("query:             {query}");
    println!("input schema:      {}", query.schema());
    println!("full:              {}", query.is_full());
    println!("boolean:           {}", query.is_boolean());
    println!("self-joins:        {}", query.has_self_joins());
    println!("acyclic (GYO):     {}", cq::is_acyclic(query));
    println!("minimal:           {}", cq::is_minimal(query));
    let strongly = is_strongly_minimal(query);
    println!("strongly minimal:  {strongly}");
    println!("Lemma 4.8 applies: {}", pc_core::satisfies_lemma_4_8(query));
    let min = cq::minimize(query);
    if min.core.body_size() < query.body_size() {
        println!("core:              {}", min.core);
    }
    true
}

fn parallel_correctness(query: &ConjunctiveQuery, policy: &ExplicitPolicy) -> bool {
    println!("query:   {query}");
    println!("network: {}", policy.network());
    let report = check_parallel_correctness(query, policy);
    if report.is_correct() {
        println!("parallel-correct: yes (every minimal valuation meets at some node)");
        true
    } else {
        println!("parallel-correct: NO");
        if let Some(violation) = &report.violation {
            println!("  minimal valuation:       {}", violation.valuation);
            println!(
                "  counterexample instance: {}",
                violation.counterexample_instance
            );
            println!("  lost fact:               {}", violation.lost_fact);
        }
        false
    }
}

fn transfer(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    mode: Option<&str>,
) -> Result<bool, String> {
    println!("from: {from}");
    println!("to:   {to}");
    let report = match mode {
        None => check_transfer(from, to),
        Some("--no-skip") => pc_core::check_transfer_no_skip(from, to),
        Some("--strongly-minimal") => {
            if !is_strongly_minimal(from) {
                return Err("--strongly-minimal requires a strongly minimal source query".into());
            }
            check_transfer_strongly_minimal(from, to)
        }
        Some(other) => return Err(format!("unknown flag '{other}'")),
    };
    println!(
        "parallel-correctness transfers ({}): {}",
        report.method,
        if report.transfers { "yes" } else { "NO" }
    );
    if let Some(violation) = &report.violation {
        println!("  witness valuation of Q':  {}", violation.valuation);
        println!(
            "  facts no minimal valuation of Q covers: {}",
            violation.required_facts
        );
    }
    Ok(report.transfers)
}

fn hypercube(query: &ConjunctiveQuery, prime: &ConjunctiveQuery) -> bool {
    println!("family of: {query}");
    println!("candidate: {prime}");
    let report = hypercube_parallel_correct(query, prime);
    println!(
        "parallel-correct for the Hypercube family H_Q: {}",
        if report.parallel_correct { "yes" } else { "NO" }
    );
    report.parallel_correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use distribution::DistributionPolicy;

    #[test]
    fn policy_file_parsing() {
        let text = "
            # the Example 3.5 policy over {a, b}
            n0: R(a, a) R(b, a) R(b, b)
            n1: R(a, a), R(a, b), R(b, b)
        ";
        let policy = parse_policy(text).unwrap();
        assert_eq!(policy.network().len(), 2);
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "a"])).len(),
            2
        );
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["a", "b"])).len(),
            1
        );
        assert!(policy
            .nodes_for(&Fact::from_names("R", &["c", "c"]))
            .is_empty());
    }

    #[test]
    fn policy_file_default_line() {
        let text = "default: n0 n1\nn0: R(a, b)";
        let policy = parse_policy(text).unwrap();
        assert_eq!(
            policy.nodes_for(&Fact::from_names("R", &["z", "z"])).len(),
            2
        );
    }

    #[test]
    fn bad_policy_files_are_rejected() {
        assert!(parse_policy("").is_err());
        assert!(parse_policy("n0 R(a,b)").is_err());
        assert!(parse_policy("n0: R(a,").is_err());
    }

    #[test]
    fn literal_queries_are_accepted() {
        let q = load_query("T(x) :- R(x, y).").unwrap();
        assert_eq!(q.body_size(), 1);
        assert!(load_query("not a query").is_err());
    }

    #[test]
    fn end_to_end_pc_command() {
        let query = load_query("T(x, z) :- R(x, y), R(y, z), R(x, x).").unwrap();
        let policy =
            parse_policy("n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)").unwrap();
        assert!(parallel_correctness(&query, &policy));
        let path = load_query("T(x, z) :- R(x, y), R(y, z).").unwrap();
        assert!(!parallel_correctness(&path, &policy));
    }
}
