//! # pcq — Parallel-Correctness and Transferability for Conjunctive Queries
//!
//! Facade crate re-exporting the full public API of the reproduction of
//! Ameloot, Geck, Ketsman, Neven, Schwentick,
//! *"Parallel-Correctness and Transferability for Conjunctive Queries"*
//! (PODS 2015).
//!
//! The individual crates can also be used directly:
//!
//! * [`cq`] — conjunctive-query substrate (schemas, instances, valuations,
//!   evaluation, homomorphisms, minimization).
//! * [`delta`] — the incremental-evaluation substrate: delta-tracking
//!   instances, node-side semi-naive state and the index-reuse cache.
//! * [`distribution`] — distribution policies, Hypercube distributions and
//!   the simulated one-round evaluation engine.
//! * [`pc_core`] — the paper's contribution: parallel-correctness,
//!   transferability, strong minimality, conditions C0–C3.
//! * [`logic`] — SAT / QBF solvers used as ground-truth oracles.
//! * [`obs`] — the observability substrate: distributed tracing spans and
//!   the unified metrics registry, zero-dependency and free when disabled.
//! * [`reductions`] — the paper's hardness reductions as instance generators.
//! * [`wire`] — the serialization subsystem: binary codec and framing,
//!   textual scenario format, JSON emitter and the cross-process transport.
//! * [`workloads`] — random query / instance / policy generators.
//!
//! ## Quick start
//!
//! ```
//! use pcq::prelude::*;
//!
//! // The triangle query, its Hypercube distribution family, and a check that
//! // the query is parallel-correct for that family (Corollary 5.8).
//! let q = ConjunctiveQuery::parse("T(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
//! assert!(hypercube_parallel_correct(&q, &q).parallel_correct);
//!
//! // A concrete member of the family evaluates the query in one round.
//! let policy = HypercubePolicy::uniform(&q, 2).unwrap();
//! let data = cq::parse_instance("E(a, b). E(b, c). E(c, a). E(a, d).").unwrap();
//! let outcome = OneRoundEngine::new(&policy).evaluate(&q, &data);
//! assert_eq!(outcome.result, cq::evaluate(&q, &data));
//! ```

#![forbid(unsafe_code)]

pub use cq;
pub use delta;
pub use distribution;
pub use logic;
pub use obs;
pub use pc_core;
pub use reductions;
pub use wire;
pub use workloads;

/// Convenience prelude bringing the most commonly used types and functions
/// into scope.
pub mod prelude {
    pub use cq::{
        evaluate, evaluate_seminaive_step, evaluate_with, parse_instance, Atom, ConjunctiveQuery,
        EvalOptions, Fact, Instance, JoinOrdering, JoinStrategy, Schema, Substitution, Symbol,
        Valuation, Value, Variable,
    };
    pub use delta::{CacheStats, DeltaInstance, DeltaNode, IndexCache};
    pub use distribution::{
        ChunkStream, DistributionPolicy, ExplicitPolicy, FinitePolicy, HypercubeFamily,
        HypercubePolicy, InMemoryTransport, MultiQueryOutcome, MultiRoundEngine, MultiRoundOutcome,
        Network, Node, OneRoundEngine, RoundSchedule, RuleBasedPolicy, Transport, TransportError,
    };
    pub use pc_core::{
        check_parallel_correctness, check_parallel_correctness_bounded,
        check_parallel_correctness_naive_incremental, check_parallel_correctness_on_instance,
        check_transfer, check_transfer_strongly_minimal, holds_c0, holds_c1, holds_c2, holds_c3,
        hypercube_parallel_correct, is_minimal_valuation, is_minimal_valuation_cached,
        is_strongly_minimal, multi_round_correct_on, validate_hypercube_family,
        IncrementalPcReport, IncrementalPcStats, MultiRoundInstanceReport, PcReport, TransferCache,
        TransferReport,
    };
    pub use wire::{
        DeltaBatch, ExplicitSpec, JsonValue, ProcessTransport, Scenario, SocketTransport,
    };
    pub use workloads::{
        chain_query, example_3_5_query, named_instance, named_query, named_query_sequence,
        named_schedule, query_sequence_names, random_instance, random_query, star_query,
        triangle_query, zipf_instance, InstanceParams, QueryParams,
    };
}
