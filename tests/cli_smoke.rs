//! End-to-end smoke tests for the `pcq-analyze` CLI: every subcommand is
//! exercised through a real process spawn, checking the documented exit-code
//! contract (0 = property holds, 1 = it does not, 2 = usage/parse error).

use std::path::PathBuf;
use std::process::Command;

const TRIANGLE: &str = "T(x, y, z) :- E(x, y), E(y, z), E(z, x).";
const PATH_2: &str = "T(x, z) :- R(x, y), R(y, z).";
const PATH_2_WITH_LOOP: &str = "T(x, z) :- R(x, y), R(y, z), R(x, x).";

/// The Example 3.5 policy over domain {a, b}: parallel-correct for the
/// query with the R(x, x) loop, not parallel-correct for the plain 2-path.
const EXAMPLE_3_5_POLICY: &str = "n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)\n";

fn pcq_analyze(args: &[&str]) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_pcq-analyze"))
        .args(args)
        .output()
        .expect("failed to spawn pcq-analyze");
    status
        .status
        .code()
        .expect("pcq-analyze terminated by signal")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("pcq-smoke-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("cannot write temp file");
    path
}

#[test]
fn analyze_accepts_a_literal_query() {
    assert_eq!(pcq_analyze(&["analyze", PATH_2]), 0);
}

#[test]
fn analyze_reads_a_query_from_a_file() {
    let path = write_temp("query.cq", TRIANGLE);
    assert_eq!(pcq_analyze(&["analyze", path.to_str().unwrap()]), 0);
    let _ = std::fs::remove_file(path);
}

#[test]
fn analyze_rejects_garbage_with_usage_error() {
    assert_eq!(pcq_analyze(&["analyze", "this is not a query"]), 2);
}

#[test]
fn missing_and_unknown_commands_are_usage_errors() {
    assert_eq!(pcq_analyze(&[]), 2);
    assert_eq!(pcq_analyze(&["frobnicate", PATH_2]), 2);
    assert_eq!(pcq_analyze(&["pc", PATH_2]), 2); // missing <policy-file>
}

#[test]
fn pc_distinguishes_correct_from_incorrect_policies() {
    let path = write_temp("policy.txt", EXAMPLE_3_5_POLICY);
    let policy = path.to_str().unwrap();
    // Example 3.5 of the paper: with the R(x, x) loop every minimal
    // valuation meets at a node, so the query is parallel-correct...
    assert_eq!(pcq_analyze(&["pc", PATH_2_WITH_LOOP, policy]), 0);
    // ...while the plain 2-path loses answers under the same policy.
    assert_eq!(pcq_analyze(&["pc", PATH_2, policy]), 1);
    let _ = std::fs::remove_file(path);
}

#[test]
fn pc_rejects_malformed_policy_files() {
    let path = write_temp("bad-policy.txt", "n0 R(a, b)\n");
    assert_eq!(pcq_analyze(&["pc", PATH_2, path.to_str().unwrap()]), 2);
    let _ = std::fs::remove_file(path);
}

#[test]
fn transfer_holds_reflexively_and_rejects_unknown_flags() {
    assert_eq!(pcq_analyze(&["transfer", PATH_2, PATH_2]), 0);
    assert_eq!(pcq_analyze(&["transfer", PATH_2, PATH_2, "--bogus"]), 2);
}

#[test]
fn transfer_strongly_minimal_fast_path_agrees() {
    // The full 2-path is strongly minimal, so the C3 fast path applies and
    // must agree with the general decision (exit 0 either way here).
    assert_eq!(
        pcq_analyze(&["transfer", PATH_2, PATH_2, "--strongly-minimal"]),
        0
    );
}

#[test]
fn hypercube_family_membership_answers_both_ways() {
    // The edge projection is parallel-correct for the triangle family...
    assert_eq!(
        pcq_analyze(&["hypercube", TRIANGLE, "U(x, y) :- E(x, y)."]),
        0
    );
    // ...the 4-cycle is not.
    assert_eq!(
        pcq_analyze(&[
            "hypercube",
            TRIANGLE,
            "U(x, y, z, w) :- E(x, y), E(y, z), E(z, w), E(w, x).",
        ]),
        1
    );
}
