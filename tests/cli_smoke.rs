//! End-to-end smoke tests for the `pcq-analyze` CLI: every subcommand is
//! exercised through a real process spawn, checking the documented exit-code
//! contract (0 = property holds, 1 = it does not, 2 = usage/parse error).

use std::path::PathBuf;
use std::process::Command;

const TRIANGLE: &str = "T(x, y, z) :- E(x, y), E(y, z), E(z, x).";
const PATH_2: &str = "T(x, z) :- R(x, y), R(y, z).";
const PATH_2_WITH_LOOP: &str = "T(x, z) :- R(x, y), R(y, z), R(x, x).";

/// The Example 3.5 policy over domain {a, b}: parallel-correct for the
/// query with the R(x, x) loop, not parallel-correct for the plain 2-path.
const EXAMPLE_3_5_POLICY: &str = "n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)\n";

fn pcq_analyze(args: &[&str]) -> i32 {
    pcq_analyze_output(args).0
}

fn pcq_analyze_output(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_pcq-analyze"))
        .args(args)
        .output()
        .expect("failed to spawn pcq-analyze");
    let code = output
        .status
        .code()
        .expect("pcq-analyze terminated by signal");
    (code, String::from_utf8_lossy(&output.stdout).into_owned())
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("pcq-smoke-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("cannot write temp file");
    path
}

#[test]
fn analyze_accepts_a_literal_query() {
    assert_eq!(pcq_analyze(&["analyze", PATH_2]), 0);
}

#[test]
fn analyze_reads_a_query_from_a_file() {
    let path = write_temp("query.cq", TRIANGLE);
    assert_eq!(pcq_analyze(&["analyze", path.to_str().unwrap()]), 0);
    let _ = std::fs::remove_file(path);
}

#[test]
fn analyze_rejects_garbage_with_usage_error() {
    assert_eq!(pcq_analyze(&["analyze", "this is not a query"]), 2);
}

#[test]
fn missing_and_unknown_commands_are_usage_errors() {
    assert_eq!(pcq_analyze(&[]), 2);
    assert_eq!(pcq_analyze(&["frobnicate", PATH_2]), 2);
    assert_eq!(pcq_analyze(&["pc", PATH_2]), 2); // missing <policy-file>
}

#[test]
fn pc_distinguishes_correct_from_incorrect_policies() {
    let path = write_temp("policy.txt", EXAMPLE_3_5_POLICY);
    let policy = path.to_str().unwrap();
    // Example 3.5 of the paper: with the R(x, x) loop every minimal
    // valuation meets at a node, so the query is parallel-correct...
    assert_eq!(pcq_analyze(&["pc", PATH_2_WITH_LOOP, policy]), 0);
    // ...while the plain 2-path loses answers under the same policy.
    assert_eq!(pcq_analyze(&["pc", PATH_2, policy]), 1);
    let _ = std::fs::remove_file(path);
}

#[test]
fn pc_rejects_malformed_policy_files() {
    let path = write_temp("bad-policy.txt", "n0 R(a, b)\n");
    assert_eq!(pcq_analyze(&["pc", PATH_2, path.to_str().unwrap()]), 2);
    let _ = std::fs::remove_file(path);
}

#[test]
fn transfer_holds_reflexively_and_rejects_unknown_flags() {
    assert_eq!(pcq_analyze(&["transfer", PATH_2, PATH_2]), 0);
    assert_eq!(pcq_analyze(&["transfer", PATH_2, PATH_2, "--bogus"]), 2);
}

#[test]
fn transfer_strongly_minimal_fast_path_agrees() {
    // The full 2-path is strongly minimal, so the C3 fast path applies and
    // must agree with the general decision (exit 0 either way here).
    assert_eq!(
        pcq_analyze(&["transfer", PATH_2, PATH_2, "--strongly-minimal"]),
        0
    );
}

#[test]
fn run_hypercube_is_correct_and_reports_the_round() {
    let (code, stdout) = pcq_analyze_output(&["run", "chain:2", "hypercube:4", "random:10:60"]);
    assert_eq!(code, 0, "hypercube one-round must match centralized");
    assert!(stdout.contains("result size:"));
    assert!(stdout.contains("correct:     yes"));
    assert!(stdout.contains("load="));
}

#[test]
fn run_round_robin_loses_answers_and_exits_one() {
    // round-robin splits joining facts across nodes, so answers are lost
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "round-robin:4",
        "R(a, b). R(b, c). R(c, d). R(d, e).",
    ]);
    assert_eq!(code, 1);
    assert!(stdout.contains("NO"));
}

#[test]
fn run_json_output_is_a_single_json_object() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "triangle",
        "hypercube:8",
        "random:8:40",
        "--workers",
        "3",
        "--json",
    ]);
    assert_eq!(code, 0);
    let line = stdout.trim();
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not JSON: {line}"
    );
    assert_eq!(
        line.lines().count(),
        1,
        "--json must print exactly one line"
    );
    for key in [
        "\"query\":",
        "\"result_size\":",
        "\"parallel_correct\":true",
        "\"stats\":",
        "\"per_node\":[",
        "\"timings_us\":",
        "\"load\":",
        "\"time_us\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}

#[test]
fn run_rejects_bad_specs_and_flags_with_usage_errors() {
    // missing positional arguments
    assert_eq!(pcq_analyze(&["run", "chain:2", "hypercube:4"]), 2);
    // unknown families
    assert_eq!(
        pcq_analyze(&["run", "nope:3", "hypercube:4", "random:5:10"]),
        2
    );
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "bogus:4", "random:5:10"]),
        2
    );
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "hypercube:4", "uniform:5:10"]),
        2
    );
    // malformed flags
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "hypercube:4", "random:5:10", "--workers"]),
        2
    );
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:4",
            "random:5:10",
            "--workers",
            "0"
        ]),
        2
    );
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:4",
            "random:5:10",
            "--frobnicate"
        ]),
        2
    );
}

const CHAIN_FACTS: &str = "R(a, b). R(b, c). R(c, d). R(d, e).";

#[test]
fn run_multi_round_closure_converges_and_exits_zero() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        CHAIN_FACTS,
        "--rounds",
        "8",
        "--feedback",
        "R",
    ]);
    assert_eq!(
        code, 0,
        "converged closure must equal the fixpoint: {stdout}"
    );
    assert!(stdout.contains("converged:   true"));
    assert!(stdout.contains("correct:     yes"));
    assert!(stdout.contains("round 0:"), "per-round lines expected");
    assert!(stdout.contains("comm volume:"));
}

#[test]
fn run_multi_round_capped_below_fixpoint_exits_one() {
    // An 8-edge chain needs 3 squaring rounds; a 2-round cap falls short of
    // the global fixpoint and must exit 1.
    let long_chain = "R(a,b). R(b,c). R(c,d). R(d,e). R(e,f). R(f,g). R(g,h). R(h,i).";
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        long_chain,
        "--rounds",
        "2",
        "--feedback",
        "R",
    ]);
    assert_eq!(code, 1, "round-capped run must be incorrect: {stdout}");
    assert!(stdout.contains("converged:   false"));
}

#[test]
fn run_multi_round_json_has_the_per_round_shape() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        CHAIN_FACTS,
        "--rounds",
        "6",
        "--feedback",
        "R",
        "--streaming",
        "--workers",
        "2",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    let line = stdout.trim();
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not JSON: {line}"
    );
    assert_eq!(
        line.lines().count(),
        1,
        "--json must print exactly one line"
    );
    for key in [
        "\"rounds_requested\":6",
        "\"rounds_run\":",
        "\"reference_rounds\":",
        "\"converged\":true",
        "\"multi_round_correct\":true",
        "\"streaming\":true",
        "\"total_comm_volume\":",
        "\"rounds\":[{\"round\":0,",
        "\"peak_chunks\":",
        "\"distribute_us\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}

#[test]
fn run_multi_round_accepts_schedules_and_rejects_bad_ones() {
    let (code, _) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        CHAIN_FACTS,
        "--rounds",
        "6",
        "--feedback",
        "R",
        "--schedule",
        "hash-join:3,hypercube:2",
    ]);
    assert_eq!(code, 0);
    // malformed schedules and flags are usage errors
    for bad in [
        vec![
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--rounds",
            "2",
            "--schedule",
            "bogus:3",
        ],
        vec![
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--rounds",
            "0",
        ],
        vec!["run", "chain:2", "hypercube:2", CHAIN_FACTS, "--rounds"],
        vec![
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--rounds",
            "2",
            "--feedback",
        ],
    ] {
        assert_eq!(pcq_analyze(&bad), 2, "{bad:?} must be a usage error");
    }
}

#[test]
fn run_rejects_feedback_relations_the_query_cannot_read() {
    // Feeding outputs into a relation the query never reads (or reads at a
    // different arity) would make the recursion silently inert.
    let triangle_facts = "E(a, b). E(b, c). E(c, a).";
    for feedback in ["E", "Z"] {
        let code = pcq_analyze(&[
            "run",
            TRIANGLE,
            "hypercube:2",
            triangle_facts,
            "--rounds",
            "4",
            "--feedback",
            feedback,
        ]);
        assert_eq!(code, 2, "--feedback {feedback} on an arity-3-head query");
    }
}

#[test]
fn run_rejects_multi_round_flags_without_rounds() {
    // --schedule / --feedback mean nothing in a single-round run; silently
    // ignoring them would misreport what the user asked for.
    for flags in [["--feedback", "R"], ["--schedule", "hypercube:2"]] {
        let mut args = vec!["run", "chain:2", "hypercube:2", CHAIN_FACTS];
        args.extend(flags);
        assert_eq!(pcq_analyze(&args), 2, "{flags:?} without --rounds");
    }
}

#[test]
fn run_join_strategy_flag_selects_and_reports_the_strategy() {
    // The triangle is cyclic: auto resolves to multiway; every strategy
    // produces the same (correct) result.
    for (requested, resolved) in [
        ("binary", "binary"),
        ("multiway", "multiway"),
        ("auto", "multiway"),
    ] {
        let (code, stdout) = pcq_analyze_output(&[
            "run",
            "triangle",
            "broadcast:2",
            "E(a, b). E(b, c). E(c, a). E(a, c).",
            "--join-strategy",
            requested,
        ]);
        assert_eq!(code, 0, "{requested}: {stdout}");
        assert!(
            stdout.contains(&format!("join:        {requested} (resolved: {resolved})")),
            "{requested}: {stdout}"
        );
        assert!(stdout.contains("index cache:"), "{stdout}");
    }
    // The acyclic 2-path resolves auto to binary, and --json carries the
    // strategy and the transport's index-cache counters.
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "broadcast:2",
        CHAIN_FACTS,
        "--join-strategy",
        "auto",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    for key in [
        "\"join_strategy\":{\"requested\":\"auto\",\"resolved\":\"binary\"}",
        "\"index_cache\":{\"hits\":1,\"misses\":1}",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn run_join_strategy_flag_is_validated() {
    // unknown strategy names
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--join-strategy",
            "leapfrog"
        ]),
        2
    );
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--join-strategy"
        ]),
        2
    );
}

#[test]
fn run_join_strategy_rides_wire_transports_and_multi_round_runs() {
    // The options travel with every round now: wire workers and the
    // multi-round engine evaluate with the strategy the coordinator chose
    // (both combinations used to be usage errors).
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        CHAIN_FACTS,
        "--join-strategy",
        "multiway",
        "--transport",
        "process",
        "--workers",
        "2",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("correct:     yes"), "{stdout}");
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        CHAIN_FACTS,
        "--join-strategy",
        "multiway",
        "--rounds",
        "2",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("correct:     yes"), "{stdout}");
}

#[test]
fn run_single_round_streaming_agrees_with_the_default_path() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:4",
        "random:10:60",
        "--streaming",
        "--distribute-workers",
        "2",
    ]);
    assert_eq!(
        code, 0,
        "streaming single round must stay correct: {stdout}"
    );
    assert!(stdout.contains("correct:     yes"));
}

/// Two trajectory records for the same bench: the second regresses one
/// benchmark by 2x and improves another.
const REGRESSED_TRAJECTORY: &str = concat!(
    r#"{"bench":"cq_eval","unix_ms":1,"results":[{"id":"a/slow","mean_ns":1000000},{"id":"a/fast","mean_ns":2000000}]}"#,
    "\n",
    r#"{"bench":"cq_eval","unix_ms":2,"results":[{"id":"a/slow","mean_ns":2000000},{"id":"a/fast","mean_ns":1000000}]}"#,
    "\n",
);

const STABLE_TRAJECTORY: &str = concat!(
    r#"{"bench":"cq_eval","unix_ms":1,"results":[{"id":"a/x","mean_ns":1000000}]}"#,
    "\n",
    r#"{"bench":"cq_eval","unix_ms":2,"results":[{"id":"a/x","mean_ns":1100000}]}"#,
    "\n",
);

#[test]
fn bench_diff_fails_on_regression_and_names_it() {
    let path = write_temp("regressed.json", REGRESSED_TRAJECTORY);
    let (code, stdout) = pcq_analyze_output(&["bench-diff", path.to_str().unwrap()]);
    assert_eq!(code, 1, "a 2x regression must fail the gate: {stdout}");
    assert!(stdout.contains("REGRESSION cq_eval/a/slow"));
    assert!(
        !stdout.contains("REGRESSION cq_eval/a/fast"),
        "improvements pass"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn bench_diff_passes_within_threshold_and_respects_flags() {
    let path = write_temp("stable.json", STABLE_TRAJECTORY);
    let file = path.to_str().unwrap();
    // +10% is inside the default 25% threshold
    assert_eq!(pcq_analyze(&["bench-diff", file]), 0);
    // ...but outside a 5% threshold
    assert_eq!(
        pcq_analyze(&["bench-diff", file, "--threshold-pct", "5"]),
        1
    );
    // ...unless the whole entry is below the noise floor
    assert_eq!(
        pcq_analyze(&[
            "bench-diff",
            file,
            "--threshold-pct",
            "5",
            "--min-ns",
            "10000000",
        ]),
        0
    );
    // restricting to an unknown bench is a usage error
    assert_eq!(pcq_analyze(&["bench-diff", file, "--bench", "nope"]), 2);
    let _ = std::fs::remove_file(path);
}

#[test]
fn bench_diff_unescapes_quoted_benchmark_ids() {
    // criterion's json_escape writes ids containing quotes as \" — the
    // parser must unescape them so baseline lookups and reports match.
    let trajectory = concat!(
        r#"{"bench":"cq_eval","unix_ms":1,"results":[{"id":"a/\"quoted\"","mean_ns":1000000}]}"#,
        "\n",
        r#"{"bench":"cq_eval","unix_ms":2,"results":[{"id":"a/\"quoted\"","mean_ns":3000000}]}"#,
        "\n",
    );
    let path = write_temp("escaped.json", trajectory);
    let (code, stdout) = pcq_analyze_output(&["bench-diff", path.to_str().unwrap()]);
    assert_eq!(code, 1, "the escaped id must still be compared: {stdout}");
    assert!(
        stdout.contains("REGRESSION cq_eval/a/\"quoted\""),
        "{stdout}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn bench_diff_usage_and_parse_errors_exit_two() {
    assert_eq!(pcq_analyze(&["bench-diff"]), 2);
    assert_eq!(pcq_analyze(&["bench-diff", "/nonexistent/file.json"]), 2);
    let path = write_temp("garbage.json", "not json at all\n");
    assert_eq!(pcq_analyze(&["bench-diff", path.to_str().unwrap()]), 2);
    let _ = std::fs::remove_file(path);
}

#[test]
fn bench_diff_accepts_a_single_run_without_comparison() {
    let path = write_temp(
        "single.json",
        r#"{"bench":"cq_eval","unix_ms":1,"results":[{"id":"a/x","mean_ns":5}]}"#,
    );
    let (code, stdout) = pcq_analyze_output(&["bench-diff", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("only one run recorded"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_accepts_policy_files_and_literal_instances() {
    let path = write_temp("run-policy.txt", EXAMPLE_3_5_POLICY);
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        PATH_2_WITH_LOOP,
        path.to_str().unwrap(),
        "R(a, a). R(a, b). R(b, b).",
    ]);
    assert_eq!(code, 0, "Example 3.5 policy is parallel-correct: {stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn hypercube_family_membership_answers_both_ways() {
    // The edge projection is parallel-correct for the triangle family...
    assert_eq!(
        pcq_analyze(&["hypercube", TRIANGLE, "U(x, y) :- E(x, y)."]),
        0
    );
    // ...the 4-cycle is not.
    assert_eq!(
        pcq_analyze(&[
            "hypercube",
            TRIANGLE,
            "U(x, y, z, w) :- E(x, y), E(y, z), E(z, w), E(w, x).",
        ]),
        1
    );
}

// ------------------------------------------------------------ wire: encode /
// decode / scenarios / transports / bench-diff windows

/// Runs `pcq-analyze` with bytes piped to stdin, returning exit code,
/// stdout bytes and stderr text.
fn pcq_analyze_piped(args: &[&str], stdin_bytes: &[u8]) -> (i32, Vec<u8>) {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_pcq-analyze"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn pcq-analyze");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin_bytes)
        .expect("cannot write to stdin");
    let output = child.wait_with_output().expect("wait failed");
    (
        output.status.code().expect("terminated by signal"),
        output.stdout,
    )
}

#[test]
fn encode_decode_pipe_is_the_identity_for_instances() {
    let (code, frame) = pcq_analyze_piped(&["encode", "instance", "R(a, b). R(b, c)."], b"");
    assert_eq!(code, 0);
    assert_eq!(&frame[..4], b"PCQW", "frames open with the magic");
    let (code, text) = pcq_analyze_piped(&["decode"], &frame);
    assert_eq!(code, 0);
    assert_eq!(String::from_utf8_lossy(&text), "R(a, b).\nR(b, c).\n");
}

#[test]
fn encode_decode_pipe_round_trips_queries_and_scenarios() {
    let (code, frame) = pcq_analyze_piped(&["encode", "query", PATH_2], b"");
    assert_eq!(code, 0);
    let (code, text) = pcq_analyze_piped(&["decode"], &frame);
    assert_eq!(code, 0);
    assert_eq!(String::from_utf8_lossy(&text).trim(), PATH_2);

    let scenario = "query T(x, z) :- R(x, y), R(y, z).\n\
                    instance { R(a, b). R(b, c). }\n\
                    schedule hash(2), hypercube(2)\n\
                    rounds 4\n\
                    feedback R\n";
    let path = write_temp("scenario.pcq", scenario);
    let (code, frame) = pcq_analyze_piped(&["encode", "scenario", path.to_str().unwrap()], b"");
    assert_eq!(code, 0);
    let (code, text) = pcq_analyze_piped(&["decode"], &frame);
    assert_eq!(code, 0);
    // decode prints the canonical pretty-printed form; encoding that text
    // again must produce the same frame (the formats are exact inverses)
    let text = String::from_utf8_lossy(&text).into_owned();
    let path2 = write_temp("scenario2.pcq", &text);
    let (code, frame2) = pcq_analyze_piped(&["encode", "scenario", path2.to_str().unwrap()], b"");
    assert_eq!(code, 0);
    assert_eq!(frame, frame2, "re-encoding the decoded text must agree");
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path2);
}

#[test]
fn encode_and_decode_reject_garbage_with_usage_errors() {
    assert_eq!(pcq_analyze(&["encode"]), 2);
    assert_eq!(pcq_analyze(&["encode", "frobnicate", "x"]), 2);
    assert_eq!(pcq_analyze(&["encode", "query", "not a query"]), 2);
    let (code, _) = pcq_analyze_piped(&["decode"], b"this is not a frame");
    assert_eq!(code, 2);
    let (code, _) = pcq_analyze_piped(&["decode"], b"");
    assert_eq!(code, 2);
    // decode takes no arguments
    let (code, _) = pcq_analyze_piped(&["decode", "extra"], b"");
    assert_eq!(code, 2);
}

#[test]
fn run_scenario_file_reaches_the_fixpoint() {
    let scenario = "query T(x, z) :- R(x, y), R(y, z).\n\
                    instance { R(v0, v1). R(v1, v2). R(v2, v3). R(v3, v4). }\n\
                    schedule hash(2), hypercube(2)\n\
                    rounds 8\n\
                    feedback R\n";
    let path = write_temp("run-scenario.pcq", scenario);
    let (code, stdout) =
        pcq_analyze_output(&["run", "--scenario", path.to_str().unwrap(), "--json"]);
    assert_eq!(code, 0, "{stdout}");
    for key in [
        "\"policy\":\"scenario:",
        "\"schedule\":\"hash(2), hypercube(2)\"",
        "\"converged\":true",
        "\"multi_round_correct\":true",
        "\"transport\":\"memory\"",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_semi_naive_matches_the_fixpoint_and_reports_itself() {
    let long_chain = "R(a,b). R(b,c). R(c,d). R(d,e). R(e,f). R(f,g). R(g,h). R(h,i).";
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        long_chain,
        "--rounds",
        "8",
        "--feedback",
        "R",
        "--semi-naive",
        "--workers",
        "2",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    for key in [
        "\"semi_naive\":true",
        "\"multi_round_correct\":true",
        "\"converged\":true",
        "\"total_comm_bytes\":0",
        "\"comm_bytes\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }

    // The human-readable arm announces the mode.
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        long_chain,
        "--rounds",
        "8",
        "--feedback",
        "R",
        "--semi-naive",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("mode:        semi-naive"));
    assert!(stdout.contains("correct:     yes"));
}

#[test]
fn run_semi_naive_flag_combinations_are_validated() {
    // --semi-naive is a multi-round mode…
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "hypercube:2", CHAIN_FACTS, "--semi-naive"]),
        2
    );
    // …that materializes its (small) deltas.
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--rounds",
            "4",
            "--semi-naive",
            "--streaming",
        ]),
        2
    );
}

#[test]
fn run_semi_naive_accepts_multi_policy_schedules() {
    // A policy switch now triggers an explicit re-shard round instead of
    // being rejected; the run must still match the fixpoint.
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        CHAIN_FACTS,
        "--rounds",
        "4",
        "--semi-naive",
        "--schedule",
        "broadcast:2,hypercube:2",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("correct:     yes"), "{stdout}");
}

#[test]
fn run_scenario_with_explicit_policy_stanza() {
    // The pc policy-file format embedded in a scenario: Example 3.5's
    // policy is parallel-correct for the query with the loop atom.
    let scenario = "query T(x, z) :- R(x, y), R(y, z), R(x, x).\n\
                    instance { R(a, a). R(a, b). R(b, a). R(b, b). }\n\
                    policy {\n\
                      n0: R(a, a) R(b, a) R(b, b)\n\
                      n1: R(a, a) R(a, b) R(b, b)\n\
                    }\n\
                    schedule explicit\n";
    let path = write_temp("explicit-policy.pcq", scenario);
    let (code, stdout) =
        pcq_analyze_output(&["run", "--scenario", path.to_str().unwrap(), "--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"schedule\":\"explicit\""), "{stdout}");
    assert!(stdout.contains("\"multi_round_correct\":true"), "{stdout}");

    // a schedule that says explicit without the stanza is a parse error
    let bad = write_temp(
        "explicit-missing.pcq",
        "query T(x) :- R(x, y).\ninstance { R(a, b). }\nschedule explicit\n",
    );
    assert_eq!(
        pcq_analyze(&["run", "--scenario", bad.to_str().unwrap()]),
        2
    );
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn encode_decode_round_trips_scenarios_with_policy_stanzas() {
    let scenario = "query T(x) :- R(x, y).\n\
                    instance { R(a, b). R(c, d). }\n\
                    policy {\n\
                      n0: R(a, b)\n\
                      default: n1\n\
                    }\n\
                    schedule explicit\n";
    let path = write_temp("encode-policy.pcq", scenario);
    let encoded = Command::new(env!("CARGO_BIN_EXE_pcq-analyze"))
        .args(["encode", "scenario", path.to_str().unwrap()])
        .output()
        .expect("encode failed to spawn");
    assert!(encoded.status.success());
    use std::io::Write;
    let mut decode = Command::new(env!("CARGO_BIN_EXE_pcq-analyze"))
        .arg("decode")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("decode failed to spawn");
    decode
        .stdin
        .take()
        .unwrap()
        .write_all(&encoded.stdout)
        .unwrap();
    let out = decode.wait_with_output().unwrap();
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout);
    assert!(printed.contains("policy {"), "{printed}");
    assert!(printed.contains("n0: R(a, b)"), "{printed}");
    assert!(printed.contains("default: n1"), "{printed}");
    assert!(printed.contains("schedule explicit"), "{printed}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_multi_round_semi_naive_process_transport_converges() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        "random:12:40",
        "--rounds",
        "6",
        "--feedback",
        "R",
        "--workers",
        "3",
        "--transport",
        "process",
        "--semi-naive",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    for key in [
        "\"transport\":\"process\"",
        "\"semi_naive\":true",
        "\"multi_round_correct\":true",
        "\"converged\":true",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    // real bytes crossed the pipes
    assert!(!stdout.contains("\"total_comm_bytes\":0"), "{stdout}");
}

#[test]
fn run_scenario_conflicts_are_usage_errors() {
    let path = write_temp(
        "conflict.pcq",
        "query T(x) :- R(x, y).\ninstance { R(a, b). }\nschedule broadcast(2)\n",
    );
    let file = path.to_str().unwrap();
    // positionals and --scenario are mutually exclusive
    assert_eq!(
        pcq_analyze(&[
            "run",
            "triangle",
            "hypercube:2",
            "R(a, b).",
            "--scenario",
            file
        ]),
        2
    );
    // the scenario owns the schedule
    assert_eq!(
        pcq_analyze(&["run", "--scenario", file, "--schedule", "hypercube:2"]),
        2
    );
    assert_eq!(pcq_analyze(&["run", "--scenario", "/nonexistent.pcq"]), 2);
    let _ = std::fs::remove_file(path);
}

/// A transferring pair (loop → path, paper §4) followed by a
/// non-transferring boundary (path → loop): exactly one reshuffle can be
/// elided, and both boundaries must be checked.
const MULTI_QUERY_SCENARIO: &str = "queries {\n\
      T(x, z) :- R(x, y), R(y, z), R(y, y).\n\
      T(x, z) :- R(x, y), R(y, z).\n\
      T(x, z) :- R(x, y), R(y, z), R(y, y).\n\
    }\n\
    instance { R(a, b). R(b, c). R(b, b). R(c, d). }\n\
    schedule broadcast(2)\n\
    rounds 4\n";

#[test]
fn run_multi_query_scenario_elides_transferable_reshuffles() {
    let path = write_temp("multi-query.pcq", MULTI_QUERY_SCENARIO);
    let file = path.to_str().unwrap();
    let (code, stdout) = pcq_analyze_output(&["run", "--scenario", file, "--json"]);
    assert_eq!(code, 0, "{stdout}");
    for key in [
        "\"queries\":3",
        "\"transfer_checks\":2",
        "\"elided_reshuffles\":1",
        "\"multi_round_correct\":true",
        "\"reshuffle_always\":false",
        "\"per_query\":[{",
        "\"total_comm_volume\":",
        "\"total_comm_bytes\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }

    // The baseline disables the elision and consults no oracle.
    let (code, stdout) =
        pcq_analyze_output(&["run", "--scenario", file, "--reshuffle-always", "--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"transfer_checks\":0"), "{stdout}");
    assert!(stdout.contains("\"elided_reshuffles\":0"), "{stdout}");
    assert!(stdout.contains("\"reshuffle_always\":true"), "{stdout}");

    // The human-readable arm names the elision decisions per query.
    let (code, stdout) = pcq_analyze_output(&["run", "--scenario", file]);
    assert_eq!(code, 0, "{stdout}");
    assert!(
        stdout.contains("transfer:    2 check(s), 1 reshuffle(s) elided"),
        "{stdout}"
    );
    assert!(
        stdout.contains("elided (ran on resident shards)"),
        "{stdout}"
    );
    assert!(stdout.contains("resharded"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_multi_query_scenario_rides_wire_transports() {
    let path = write_temp("multi-query-wire.pcq", MULTI_QUERY_SCENARIO);
    let file = path.to_str().unwrap();
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "--scenario",
        file,
        "--transport",
        "process",
        "--workers",
        "2",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"elided_reshuffles\":1"), "{stdout}");
    assert!(stdout.contains("\"multi_round_correct\":true"), "{stdout}");
    // real bytes crossed the pipes
    assert!(!stdout.contains("\"total_comm_bytes\":0"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_reshuffle_always_and_malformed_query_blocks_are_usage_errors() {
    // --reshuffle-always only means something for a scenario's queries
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:2",
            CHAIN_FACTS,
            "--reshuffle-always"
        ]),
        2
    );
    // an empty queries block is a parse error
    let path = write_temp(
        "empty-queries.pcq",
        "queries { }\ninstance { R(a, b). }\nschedule broadcast(2)\n",
    );
    assert_eq!(
        pcq_analyze(&["run", "--scenario", path.to_str().unwrap()]),
        2
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_process_transport_matches_memory_and_reports_itself() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        "random:10:30",
        "--workers",
        "2",
        "--transport",
        "process",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"transport\":\"process\""), "{stdout}");
    assert!(stdout.contains("\"parallel_correct\":true"), "{stdout}");
}

#[test]
fn run_multi_round_process_transport_converges() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "hypercube:2",
        "R(v0, v1). R(v1, v2). R(v2, v3). R(v3, v4).",
        "--rounds",
        "8",
        "--feedback",
        "R",
        "--workers",
        "2",
        "--transport",
        "process",
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"transport\":\"process\""), "{stdout}");
    assert!(stdout.contains("\"converged\":true"), "{stdout}");
    assert!(stdout.contains("\"multi_round_correct\":true"), "{stdout}");
}

#[test]
fn run_transport_flag_is_validated() {
    let args = ["run", "chain:2", "hypercube:2", "R(a, b).", "--transport"];
    assert_eq!(pcq_analyze(&args), 2, "missing transport name");
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:2",
            "R(a, b).",
            "--transport",
            "carrier-pigeon"
        ]),
        2
    );
    // streaming is an in-memory optimization
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:2",
            "R(a, b).",
            "--streaming",
            "--transport",
            "process"
        ]),
        2
    );
    // worker takes no arguments
    assert_eq!(pcq_analyze(&["worker", "extra"]), 2);
}

/// Four runs of one bench: a noisy fast outlier right before a normal
/// latest run. Latest-vs-previous flags a bogus +44% regression; the
/// median over the default window of 3 absorbs the outlier.
const NOISY_TRAJECTORY: &str = concat!(
    r#"{"bench":"cq_eval","unix_ms":1,"results":[{"id":"a/x","mean_ns":1300000}]}"#,
    "\n",
    r#"{"bench":"cq_eval","unix_ms":2,"results":[{"id":"a/x","mean_ns":1300000}]}"#,
    "\n",
    r#"{"bench":"cq_eval","unix_ms":3,"results":[{"id":"a/x","mean_ns":900000}]}"#,
    "\n",
    r#"{"bench":"cq_eval","unix_ms":4,"results":[{"id":"a/x","mean_ns":1300000}]}"#,
    "\n",
);

#[test]
fn bench_diff_window_median_absorbs_noisy_outliers() {
    let path = write_temp("noisy.json", NOISY_TRAJECTORY);
    let file = path.to_str().unwrap();
    // window 1 = plain latest-vs-previous: the fast outlier makes the
    // normal latest run look like a +44% regression
    assert_eq!(pcq_analyze(&["bench-diff", file, "--window", "1"]), 1);
    // the default window of 3 takes the median of {1300000, 1300000,
    // 900000} = 1300000: no regression
    assert_eq!(pcq_analyze(&["bench-diff", file]), 0);
    assert_eq!(pcq_analyze(&["bench-diff", file, "--window", "3"]), 0);
    // window flag validation
    assert_eq!(pcq_analyze(&["bench-diff", file, "--window", "0"]), 2);
    assert_eq!(pcq_analyze(&["bench-diff", file, "--window", "x"]), 2);
    let _ = std::fs::remove_file(path);
}

/// A genuine slow regression must still fail whatever the window.
#[test]
fn bench_diff_window_still_catches_real_regressions() {
    let path = write_temp("real-regression.json", REGRESSED_TRAJECTORY);
    let file = path.to_str().unwrap();
    assert_eq!(pcq_analyze(&["bench-diff", file]), 1);
    assert_eq!(pcq_analyze(&["bench-diff", file, "--window", "3"]), 1);
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_json_carries_a_histograms_block_with_ordered_quantiles() {
    use pcq::wire::json::JsonValue;

    let dir = std::env::temp_dir();
    let metrics = dir.join(format!("pcq-smoke-metrics-{}.json", std::process::id()));
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        PATH_2,
        "hypercube:4",
        "random:12:80",
        "--rounds",
        "4",
        "--feedback",
        "R",
        "--json",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    let doc = JsonValue::parse(stdout.trim()).expect("run --json must stay valid JSON");
    let latency = doc
        .get("histograms")
        .and_then(|h| h.get("round_latency_us"))
        .expect("multi-round run --json must report round_latency_us");
    let field = |key: &str| {
        latency
            .get(key)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing {key} in {latency}"))
    };
    assert!(field("count") >= 2, "several rounds, several samples");
    assert!(field("min") <= field("p50"));
    assert!(field("p50") <= field("p90"));
    assert!(field("p90") <= field("p99"));
    assert!(field("p99") <= field("max"));

    // --metrics writes the same registry export to a file.
    let text = std::fs::read_to_string(&metrics).expect("--metrics must write the file");
    let exported = JsonValue::parse(text.trim()).expect("metrics file must be valid JSON");
    assert_eq!(
        exported
            .get("histograms")
            .and_then(|h| h.get("round_latency_us")),
        Some(latency),
        "the metrics file and the --json block are the same export"
    );
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn trace_summarize_handles_degenerate_inputs_without_panicking() {
    // An empty trace, a process with zero spans, and a zero-duration round
    // are all summarizable; malformed JSON is a clean usage error.
    let empty = write_temp("empty-trace.json", r#"{"traceEvents":[]}"#);
    let (code, stdout) = pcq_analyze_output(&["trace", "summarize", empty.to_str().unwrap()]);
    assert_eq!(code, 0, "an empty trace summarizes cleanly");
    assert!(stdout.contains("events: 0"), "wrong summary: {stdout}");

    let degenerate = write_temp(
        "degenerate-trace.json",
        r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"idle"}},
            {"name":"eval_round","ph":"X","ts":10,"dur":0,"pid":0,"tid":1,
             "args":{"id":"1","parent":"0","round":"0"}}
        ]}"#,
    );
    let (code, stdout) = pcq_analyze_output(&["trace", "summarize", degenerate.to_str().unwrap()]);
    assert_eq!(code, 0, "zero-duration rounds must not divide by zero");
    assert!(stdout.contains("eval_round"), "missing phase: {stdout}");

    let garbage = write_temp("garbage-trace.json", "this is not json");
    assert_eq!(
        pcq_analyze(&["trace", "summarize", garbage.to_str().unwrap()]),
        2,
        "malformed JSON is a usage error, not a panic"
    );

    for path in [empty, degenerate, garbage] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn trace_diff_validates_its_arguments() {
    let empty = write_temp("diff-empty.json", r#"{"traceEvents":[]}"#);
    let file = empty.to_str().unwrap();
    // Two empty traces diff clean.
    assert_eq!(pcq_analyze(&["trace", "diff", file, file]), 0);
    // Missing operands, bad threshold, unreadable file: usage errors.
    assert_eq!(pcq_analyze(&["trace", "diff", file]), 2);
    assert_eq!(
        pcq_analyze(&["trace", "diff", file, file, "--threshold", "-5"]),
        2
    );
    assert_eq!(
        pcq_analyze(&["trace", "diff", file, file, "--threshold", "x"]),
        2
    );
    assert_eq!(
        pcq_analyze(&["trace", "diff", file, "/no/such/trace.json"]),
        2
    );
    assert_eq!(pcq_analyze(&["trace"]), 2);
    let _ = std::fs::remove_file(empty);
}

#[test]
fn slow_eval_needs_a_wire_transport() {
    assert_eq!(
        pcq_analyze(&[
            "run",
            PATH_2,
            "hypercube:4",
            "random:8:40",
            "--slow-eval-us",
            "100",
        ]),
        2,
        "--slow-eval-us on the in-memory transport is a usage error"
    );
}
