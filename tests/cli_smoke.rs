//! End-to-end smoke tests for the `pcq-analyze` CLI: every subcommand is
//! exercised through a real process spawn, checking the documented exit-code
//! contract (0 = property holds, 1 = it does not, 2 = usage/parse error).

use std::path::PathBuf;
use std::process::Command;

const TRIANGLE: &str = "T(x, y, z) :- E(x, y), E(y, z), E(z, x).";
const PATH_2: &str = "T(x, z) :- R(x, y), R(y, z).";
const PATH_2_WITH_LOOP: &str = "T(x, z) :- R(x, y), R(y, z), R(x, x).";

/// The Example 3.5 policy over domain {a, b}: parallel-correct for the
/// query with the R(x, x) loop, not parallel-correct for the plain 2-path.
const EXAMPLE_3_5_POLICY: &str = "n0: R(a, a) R(b, a) R(b, b)\nn1: R(a, a) R(a, b) R(b, b)\n";

fn pcq_analyze(args: &[&str]) -> i32 {
    pcq_analyze_output(args).0
}

fn pcq_analyze_output(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_pcq-analyze"))
        .args(args)
        .output()
        .expect("failed to spawn pcq-analyze");
    let code = output
        .status
        .code()
        .expect("pcq-analyze terminated by signal");
    (code, String::from_utf8_lossy(&output.stdout).into_owned())
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("pcq-smoke-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("cannot write temp file");
    path
}

#[test]
fn analyze_accepts_a_literal_query() {
    assert_eq!(pcq_analyze(&["analyze", PATH_2]), 0);
}

#[test]
fn analyze_reads_a_query_from_a_file() {
    let path = write_temp("query.cq", TRIANGLE);
    assert_eq!(pcq_analyze(&["analyze", path.to_str().unwrap()]), 0);
    let _ = std::fs::remove_file(path);
}

#[test]
fn analyze_rejects_garbage_with_usage_error() {
    assert_eq!(pcq_analyze(&["analyze", "this is not a query"]), 2);
}

#[test]
fn missing_and_unknown_commands_are_usage_errors() {
    assert_eq!(pcq_analyze(&[]), 2);
    assert_eq!(pcq_analyze(&["frobnicate", PATH_2]), 2);
    assert_eq!(pcq_analyze(&["pc", PATH_2]), 2); // missing <policy-file>
}

#[test]
fn pc_distinguishes_correct_from_incorrect_policies() {
    let path = write_temp("policy.txt", EXAMPLE_3_5_POLICY);
    let policy = path.to_str().unwrap();
    // Example 3.5 of the paper: with the R(x, x) loop every minimal
    // valuation meets at a node, so the query is parallel-correct...
    assert_eq!(pcq_analyze(&["pc", PATH_2_WITH_LOOP, policy]), 0);
    // ...while the plain 2-path loses answers under the same policy.
    assert_eq!(pcq_analyze(&["pc", PATH_2, policy]), 1);
    let _ = std::fs::remove_file(path);
}

#[test]
fn pc_rejects_malformed_policy_files() {
    let path = write_temp("bad-policy.txt", "n0 R(a, b)\n");
    assert_eq!(pcq_analyze(&["pc", PATH_2, path.to_str().unwrap()]), 2);
    let _ = std::fs::remove_file(path);
}

#[test]
fn transfer_holds_reflexively_and_rejects_unknown_flags() {
    assert_eq!(pcq_analyze(&["transfer", PATH_2, PATH_2]), 0);
    assert_eq!(pcq_analyze(&["transfer", PATH_2, PATH_2, "--bogus"]), 2);
}

#[test]
fn transfer_strongly_minimal_fast_path_agrees() {
    // The full 2-path is strongly minimal, so the C3 fast path applies and
    // must agree with the general decision (exit 0 either way here).
    assert_eq!(
        pcq_analyze(&["transfer", PATH_2, PATH_2, "--strongly-minimal"]),
        0
    );
}

#[test]
fn run_hypercube_is_correct_and_reports_the_round() {
    let (code, stdout) = pcq_analyze_output(&["run", "chain:2", "hypercube:4", "random:10:60"]);
    assert_eq!(code, 0, "hypercube one-round must match centralized");
    assert!(stdout.contains("result size:"));
    assert!(stdout.contains("correct:     yes"));
    assert!(stdout.contains("load="));
}

#[test]
fn run_round_robin_loses_answers_and_exits_one() {
    // round-robin splits joining facts across nodes, so answers are lost
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "chain:2",
        "round-robin:4",
        "R(a, b). R(b, c). R(c, d). R(d, e).",
    ]);
    assert_eq!(code, 1);
    assert!(stdout.contains("NO"));
}

#[test]
fn run_json_output_is_a_single_json_object() {
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        "triangle",
        "hypercube:8",
        "random:8:40",
        "--workers",
        "3",
        "--json",
    ]);
    assert_eq!(code, 0);
    let line = stdout.trim();
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not JSON: {line}"
    );
    assert_eq!(
        line.lines().count(),
        1,
        "--json must print exactly one line"
    );
    for key in [
        "\"query\":",
        "\"result_size\":",
        "\"parallel_correct\":true",
        "\"stats\":",
        "\"per_node\":[",
        "\"timings_us\":",
        "\"load\":",
        "\"time_us\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}

#[test]
fn run_rejects_bad_specs_and_flags_with_usage_errors() {
    // missing positional arguments
    assert_eq!(pcq_analyze(&["run", "chain:2", "hypercube:4"]), 2);
    // unknown families
    assert_eq!(
        pcq_analyze(&["run", "nope:3", "hypercube:4", "random:5:10"]),
        2
    );
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "bogus:4", "random:5:10"]),
        2
    );
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "hypercube:4", "uniform:5:10"]),
        2
    );
    // malformed flags
    assert_eq!(
        pcq_analyze(&["run", "chain:2", "hypercube:4", "random:5:10", "--workers"]),
        2
    );
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:4",
            "random:5:10",
            "--workers",
            "0"
        ]),
        2
    );
    assert_eq!(
        pcq_analyze(&[
            "run",
            "chain:2",
            "hypercube:4",
            "random:5:10",
            "--frobnicate"
        ]),
        2
    );
}

#[test]
fn run_accepts_policy_files_and_literal_instances() {
    let path = write_temp("run-policy.txt", EXAMPLE_3_5_POLICY);
    let (code, stdout) = pcq_analyze_output(&[
        "run",
        PATH_2_WITH_LOOP,
        path.to_str().unwrap(),
        "R(a, a). R(a, b). R(b, b).",
    ]);
    assert_eq!(code, 0, "Example 3.5 policy is parallel-correct: {stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn hypercube_family_membership_answers_both_ways() {
    // The edge projection is parallel-correct for the triangle family...
    assert_eq!(
        pcq_analyze(&["hypercube", TRIANGLE, "U(x, y) :- E(x, y)."]),
        0
    );
    // ...the 4-cycle is not.
    assert_eq!(
        pcq_analyze(&[
            "hypercube",
            TRIANGLE,
            "U(x, y, z, w) :- E(x, y), E(y, z), E(z, w), E(w, x).",
        ]),
        1
    );
}
