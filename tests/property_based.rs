//! Property-based tests spanning the whole stack: parallel-correctness,
//! transferability and the Hypercube machinery on randomly generated
//! queries, instances and policies.

use pcq::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random query from a seed using the workload generator (proptest
/// drives the seed and the shape parameters).
fn query_from(seed: u64, atoms: usize, variables: usize, head: usize) -> ConjunctiveQuery {
    workloads::random_query(
        &mut StdRng::seed_from_u64(seed),
        workloads::QueryParams {
            relations: 2,
            arity: 2,
            atoms,
            variables,
            head_variables: head,
            allow_self_joins: true,
        },
    )
}

fn instance_from(seed: u64, schema: &Schema, domain: usize, facts: usize) -> Instance {
    workloads::random_instance(
        &mut StdRng::seed_from_u64(seed),
        schema,
        workloads::InstanceParams {
            domain_size: domain,
            facts_per_relation: facts,
        },
    )
}

proptest! {
    // Bounded and explicitly seeded: 24 deterministic cases per property
    // (each case drives seeded StdRng workload generators below), so
    // `cargo test -q` is reproducible and fast.
    #![proptest_config(ProptestConfig::with_cases(24).with_rng_seed(0x9C9_5EED))]

    /// (C0) implies (C1) implies parallel-correctness, and the (C1)-based
    /// decision agrees with the brute-force check over all subinstances of
    /// the (tiny) fact universe.
    #[test]
    fn condition_hierarchy_and_exactness(
        qseed in 0u64..1000,
        pseed in 0u64..1000,
        nodes in 2usize..4,
        replication in 1usize..3,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        let universe = workloads::complete_binary_relation("R0", &["a", "b"])
            .union(&workloads::complete_binary_relation("R1", &["a", "b"]));
        let policy = workloads::random_explicit_policy(
            &mut StdRng::seed_from_u64(pseed),
            &universe,
            workloads::PolicyParams { nodes, replication, skip_probability: 0.0 },
        );
        let c0 = holds_c0(&query, &policy, &universe);
        let c1 = holds_c1(&query, &policy, &universe);
        let pc = check_parallel_correctness(&query, &policy).is_correct();
        prop_assert!(!c0 || c1, "C0 must imply C1");
        prop_assert_eq!(c1, pc, "C1 must characterize parallel-correctness");
        // brute force over every subinstance of an 8-fact universe
        let naive = pc_core::check_parallel_correctness_naive(&query, &policy);
        prop_assert_eq!(pc, naive);
    }

    /// Every query is parallel-correct under every member of its own
    /// Hypercube family, on arbitrary instances (Lemma 5.7).
    #[test]
    fn hypercube_members_are_parallel_correct(
        qseed in 0u64..1000,
        iseed in 0u64..1000,
        buckets in 1usize..4,
        domain in 2usize..7,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        let instance = instance_from(iseed, &query.schema(), domain, 20);
        let policy = HypercubePolicy::uniform(&query, buckets).unwrap();
        let outcome = OneRoundEngine::new(&policy).evaluate(&query, &instance);
        prop_assert_eq!(outcome.result, evaluate(&query, &instance));
    }

    /// Transferability is sound: if it holds from Q to Q', then Q' is
    /// parallel-correct under every sampled policy for which Q is.
    #[test]
    fn transfer_soundness_on_sampled_policies(
        from_seed in 0u64..300,
        to_seed in 0u64..300,
        pseed in 0u64..300,
    ) {
        let from = query_from(from_seed, 2, 3, 1);
        let to = query_from(to_seed, 2, 3, 1);
        let transfers = check_transfer(&from, &to).transfers();
        if transfers {
            let universe = workloads::complete_binary_relation("R0", &["a", "b"])
                .union(&workloads::complete_binary_relation("R1", &["a", "b"]));
            for k in 0..4u64 {
                let policy = workloads::random_explicit_policy(
                    &mut StdRng::seed_from_u64(pseed ^ (k.wrapping_mul(0x9E3779B9))),
                    &universe,
                    workloads::PolicyParams { nodes: 2 + (k as usize % 2), replication: 1, skip_probability: 0.0 },
                );
                if check_parallel_correctness(&from, &policy).is_correct() {
                    prop_assert!(
                        check_parallel_correctness(&to, &policy).is_correct(),
                        "transfer {from} => {to} is unsound for a sampled policy"
                    );
                }
            }
        }
    }

    /// The strongly-minimal fast path never disagrees with the general
    /// transfer decision when it applies, and Lemma 4.8 never misclassifies.
    #[test]
    fn strong_minimality_consistency(qseed in 0u64..1000, toseed in 0u64..1000) {
        let query = query_from(qseed, 3, 4, 2);
        if pc_core::satisfies_lemma_4_8(&query) {
            prop_assert!(is_strongly_minimal(&query));
        }
        if is_strongly_minimal(&query) {
            let to = query_from(toseed, 2, 3, 1);
            prop_assert_eq!(
                check_transfer(&query, &to).transfers(),
                check_transfer_strongly_minimal(&query, &to).transfers()
            );
        }
    }

    /// One-round evaluation under an explicit broadcast policy always equals
    /// the centralized result, and under a round-robin policy it never
    /// produces more answers than the centralized result (monotonicity).
    #[test]
    fn one_round_evaluation_bounds(
        qseed in 0u64..1000,
        iseed in 0u64..1000,
        nodes in 1usize..5,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        let instance = instance_from(iseed, &query.schema(), 4, 12);
        let expected = evaluate(&query, &instance);

        let network = Network::with_size(nodes);
        let broadcast = ExplicitPolicy::broadcast(&network, &instance);
        let b = OneRoundEngine::new(&broadcast).evaluate(&query, &instance);
        prop_assert_eq!(&b.result, &expected);

        let rr = ExplicitPolicy::round_robin(&network, &instance);
        let r = OneRoundEngine::new(&rr).evaluate(&query, &instance);
        prop_assert!(expected.contains_all(&r.result));
    }

    /// Differential: at the whole-stack level, a one-round-capped
    /// `MultiRoundEngine` agrees exactly with `OneRoundEngine` on random
    /// explicit policies (including skipping, replicating ones).
    #[test]
    fn multi_round_capped_at_one_agrees_with_one_round(
        qseed in 0u64..1000,
        iseed in 0u64..1000,
        pseed in 0u64..1000,
        nodes in 1usize..4,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        let instance = instance_from(iseed, &query.schema(), 3, 8);
        let policy = workloads::random_explicit_policy(
            &mut StdRng::seed_from_u64(pseed),
            &instance,
            workloads::PolicyParams { nodes, replication: 2, skip_probability: 0.25 },
        );
        let one = OneRoundEngine::new(&policy).evaluate(&query, &instance);
        let multi = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(1)
            .evaluate(&query, &instance);
        prop_assert_eq!(multi.rounds_run(), 1);
        prop_assert_eq!(&multi.result, &one.result);
        prop_assert_eq!(&multi.rounds[0].per_node_load, &one.per_node_load);
        prop_assert_eq!(&multi.rounds[0].per_node_output, &one.per_node_output);
        prop_assert_eq!(multi.rounds[0].stats, one.stats);
    }

    /// Multi-round evaluation under a query's own Hypercube policy with
    /// feedback reaches exactly the global fixpoint of the iterated query:
    /// each round is parallel-correct (Lemma 5.7), so the iteration must
    /// converge to the centralized reference.
    #[test]
    fn hypercube_multi_round_reaches_the_global_fixpoint(
        qseed in 0u64..1000,
        iseed in 0u64..1000,
        buckets in 1usize..3,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        // feedback requires the head arity to match the input relations
        if query.head().arity() == 2 {
            let instance = instance_from(iseed, &query.schema(), 4, 10);
            let policy = HypercubePolicy::uniform(&query, buckets).unwrap();
            let engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                .rounds(40)
                .feedback_into("R0");
            let report = multi_round_correct_on(&query, &engine, &instance);
            prop_assert!(report.outcome.converged, "40 rounds over a 4-value domain must converge");
            prop_assert!(report.is_correct(), "missing: {}", report.missing);
            prop_assert_eq!(report.outcome.rounds_run(), report.reference_rounds);
        }
    }

    /// Streaming, parallel-reshuffle multi-round runs agree with the
    /// materialized engine round for round at the whole-stack level.
    #[test]
    fn streaming_multi_round_agrees_with_materialized(
        qseed in 0u64..500,
        iseed in 0u64..500,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        if query.head().arity() == 2 {
            let instance = instance_from(iseed, &query.schema(), 3, 8);
            let policy = HypercubePolicy::uniform(&query, 2).unwrap();
            let configure = || MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                .rounds(20)
                .feedback_into("R0");
            let base = configure().evaluate(&query, &instance);
            let streamed = configure()
                .streaming(true)
                .workers(3)
                .distribute_workers(2)
                .evaluate(&query, &instance);
            prop_assert_eq!(&base.result, &streamed.result);
            prop_assert_eq!(base.converged, streamed.converged);
            prop_assert_eq!(base.rounds_run(), streamed.rounds_run());
            for (m, s) in base.rounds.iter().zip(&streamed.rounds) {
                prop_assert_eq!(&m.result, &s.result);
                prop_assert_eq!(&m.per_node_load, &s.per_node_load);
                prop_assert_eq!(m.stats, s.stats);
            }
        }
    }

    /// The acceptance property of the incremental subsystem: semi-naive
    /// multi-round runs (delta shipping, stateful nodes, differential
    /// local evaluation) reach exactly the same fixpoint, in the same
    /// number of rounds, as full re-evaluation — on random queries and
    /// instances, with and without feedback.
    #[test]
    fn semi_naive_multi_round_equals_full_reevaluation(
        qseed in 0u64..500,
        iseed in 0u64..500,
        feedback in 0usize..2,
    ) {
        let query = query_from(qseed, 3, 4, 2);
        if query.head().arity() == 2 {
            let instance = instance_from(iseed, &query.schema(), 3, 8);
            let policy = HypercubePolicy::uniform(&query, 2).unwrap();
            let configure = || {
                let engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(20);
                if feedback == 1 { engine.feedback_into("R0") } else { engine }
            };
            let full = configure().evaluate(&query, &instance);
            let semi = configure().semi_naive(true).workers(2).evaluate(&query, &instance);
            prop_assert_eq!(&semi.result, &full.result);
            prop_assert_eq!(semi.converged, full.converged);
            prop_assert_eq!(semi.rounds_run(), full.rounds_run());
            prop_assert_eq!(&semi.final_state, &full.final_state);
            // what the rounds shipped can only shrink
            prop_assert!(semi.total_comm_volume() <= full.total_comm_volume());
        }
    }

    /// Valuation minimality is decided consistently with its definition on
    /// small instances: a valuation is minimal iff no other satisfying
    /// valuation on its required facts derives the same fact from strictly
    /// fewer facts.
    #[test]
    fn valuation_minimality_matches_definition(qseed in 0u64..1000, iseed in 0u64..1000) {
        let query = query_from(qseed, 3, 4, 2);
        let instance = instance_from(iseed, &query.schema(), 3, 10);
        for v in cq::satisfying_valuations(&query, &instance).into_iter().take(10) {
            let required = v.required_facts(&query);
            let brute = cq::satisfying_valuations(&query, &required)
                .into_iter()
                .all(|w| {
                    w.derived_fact(&query) != v.derived_fact(&query)
                        || w.required_facts(&query).len() >= required.len()
                });
            prop_assert_eq!(pc_core::is_minimal_valuation(&query, &v), brute);
        }
    }
}
