//! Trace correctness across the whole stack: spans must nest, timelines
//! from coordinator and workers must merge into one coherent, time-ordered
//! trace on every transport (including a fault-injected run), the Chrome
//! export must round-trip, and the metrics registry must agree with what
//! the trace records.
//!
//! The span recorder is process-global, so every traced test serializes on
//! [`TRACE_GATE`]; untraced tests (stderr-tail surfacing) run freely.

use pcq::obs;
use pcq::prelude::*;
use pcq::wire::trace_export;
use std::path::PathBuf;
use std::sync::Mutex;

static TRACE_GATE: Mutex<()> = Mutex::new(());

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pcq-analyze"))
}

/// Argument lists for a worker pool whose worker 0 dies after
/// `fail_after` eval jobs.
fn faulty_argv(workers: usize, fail_after: u64) -> Vec<Vec<String>> {
    (0..workers)
        .map(|i| {
            if i == 0 {
                vec![
                    "worker".to_string(),
                    "--fail-after".to_string(),
                    fail_after.to_string(),
                ]
            } else {
                vec!["worker".to_string()]
            }
        })
        .collect()
}

fn instance_for(query: &ConjunctiveQuery, seed: u64) -> Instance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    random_instance(
        &mut rng,
        &query.schema(),
        InstanceParams {
            domain_size: 8,
            facts_per_relation: 30,
        },
    )
}

/// Runs `f` under an active trace with a `"run"` root span and returns
/// its result together with the merged timeline.
fn traced<R>(f: impl FnOnce() -> R) -> (R, Vec<obs::TraceEvent>) {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::start_trace();
    let result = {
        let _root = obs::span!("run");
        f()
    };
    (result, obs::end_trace())
}

fn names(events: &[obs::TraceEvent]) -> Vec<&str> {
    events.iter().map(|e| e.name.as_str()).collect()
}

fn assert_time_ordered(events: &[obs::TraceEvent]) {
    assert!(
        events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
        "merged timeline is not time-ordered"
    );
}

#[test]
fn in_memory_trace_nests_rounds_under_the_root_span() {
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
        .rounds(6)
        .workers(2)
        .feedback_into("R");

    let (outcome, events) = traced(|| engine.evaluate(&query, &instance));
    assert!(outcome.converged);
    assert!(!events.is_empty(), "a traced run must record events");
    assert_time_ordered(&events);
    trace_export::check_well_formed(&events).unwrap();
    assert!(
        events.iter().all(|e| e.pid == 0),
        "an in-memory run has exactly one process lane"
    );

    let root = events.iter().find(|e| e.name == "run").expect("root span");
    let rounds: Vec<_> = events.iter().filter(|e| e.name == "eval_round").collect();
    assert!(rounds.len() >= 2, "feedback run must trace several rounds");
    for round in &rounds {
        assert_eq!(
            round.parent, root.id,
            "every round span nests directly under the root"
        );
    }
    let all = names(&events);
    for expected in ["distribute", "eval_chunk", "evaluate"] {
        assert!(all.contains(&expected), "missing {expected} span: {all:?}");
    }
}

#[test]
fn process_transport_merges_worker_timelines_into_the_coordinator_trace() {
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let build_engine = || {
        MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(6)
            .feedback_into("R")
    };
    let reference = build_engine().evaluate(&query, &instance);

    let mut transport =
        ProcessTransport::spawn_command(worker_binary(), &["worker".to_string()], 2).unwrap();
    let (outcome, events) =
        traced(|| build_engine().evaluate_via(&mut transport, &query, &instance));
    let outcome = outcome.unwrap();
    assert_eq!(outcome.result, reference.result);

    assert_time_ordered(&events);
    trace_export::check_well_formed(&events).unwrap();
    let mut pids: Vec<u32> = events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(
        pids,
        vec![0, 1, 2],
        "the merged trace must contain the coordinator and both workers"
    );
    // Worker lanes carry the worker-side evaluation spans, and each one
    // links back to a coordinator span (well-formedness already resolved
    // the parent; pin the cross-process shape explicitly).
    let coordinator_spans: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.pid == 0 && e.kind == obs::EventKind::Span)
        .map(|e| e.id)
        .collect();
    let worker_events: Vec<_> = events.iter().filter(|e| e.pid > 0).collect();
    assert!(!worker_events.is_empty());
    let mut cross_process_links = 0;
    for event in &worker_events {
        if coordinator_spans.contains(&event.parent) {
            // The top of each worker lane: the shipped trace context makes
            // the worker's evaluation span a child of the coordinator span
            // that sent the job.
            assert!(
                event.name.starts_with("worker_eval"),
                "unexpected worker-side root event {}",
                event.name
            );
            cross_process_links += 1;
        }
    }
    assert!(
        cross_process_links >= 2,
        "worker spans must link under coordinator spans across the process boundary"
    );
}

#[test]
fn fault_injected_socket_trace_records_requeues_and_registry_agrees() {
    // Worker 0 dies after its first job; the trace must show the death
    // and the requeues, and the metrics registry — the single source of
    // truth behind those counters — must report exactly what the trace
    // recorded.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let network = Network::with_size(6);
    let policy = ExplicitPolicy::round_robin(&network, &instance);
    let engine = OneRoundEngine::new(&policy);
    let reference = engine.evaluate(&query, &instance);

    let mut transport =
        SocketTransport::spawn_commands(worker_binary(), &faulty_argv(3, 1)).unwrap();
    let (outcome, events) = traced(|| engine.evaluate_via(&mut transport, 0, &query, &instance));
    let outcome = outcome.expect("round must survive the death");
    assert_eq!(outcome.result, reference.result);
    assert!(transport.alive_workers() < 3, "the fault never fired");

    assert_time_ordered(&events);
    trace_export::check_well_formed(&events).unwrap();
    let deaths = events.iter().filter(|e| e.name == "worker_dead").count() as u64;
    let requeues = events.iter().filter(|e| e.name == "requeue").count() as u64;
    assert!(
        deaths >= 1,
        "no worker_dead instant in {:?}",
        names(&events)
    );
    assert!(requeues >= 1, "no requeue instant in {:?}", names(&events));

    let registry = transport.metrics_registry();
    assert_eq!(registry.counter_value("worker_deaths"), deaths);
    assert_eq!(registry.counter_value("driver_requeues"), requeues);
}

#[test]
fn chrome_export_of_a_live_run_round_trips_and_summarizes() {
    let query = named_query("triangle").unwrap();
    let instance = instance_for(&query, 7);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let engine = OneRoundEngine::new(&policy).workers(2);

    let (_, events) = traced(|| engine.evaluate(&query, &instance));
    let doc = trace_export::chrome_trace(&events).to_string();
    let parsed = trace_export::parse_chrome_trace(&doc).unwrap();
    assert_eq!(parsed, events, "Chrome export must round-trip losslessly");

    let summary = trace_export::TraceSummary::from_events(&events);
    assert_eq!(summary.events, events.len() as u64);
    let spans = events
        .iter()
        .filter(|e| e.kind == obs::EventKind::Span)
        .count() as u64;
    assert_eq!(
        summary.processes.values().map(|p| p.spans).sum::<u64>(),
        spans
    );
    assert_eq!(
        summary.rounds.len(),
        1,
        "one-round run, one critical-path row"
    );
}

#[test]
fn a_dead_workers_stderr_surfaces_in_the_transport_error() {
    // Without fault tolerance a death is a clean error — and since the
    // worker is a spawned child, its last words must ride along instead
    // of vanishing with the process.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let network = Network::with_size(6);
    let policy = ExplicitPolicy::round_robin(&network, &instance);
    let engine = OneRoundEngine::new(&policy);

    let mut process = ProcessTransport::spawn_commands(worker_binary(), &faulty_argv(2, 0))
        .unwrap()
        .fault_tolerance(false);
    let err = engine
        .evaluate_via(&mut process, 0, &query, &instance)
        .expect_err("a dead worker without fault tolerance must error")
        .to_string();
    assert!(err.contains("worker stderr"), "no stderr tail in: {err}");
    assert!(err.contains("injected fault"), "tail lost the cause: {err}");

    let mut socket = SocketTransport::spawn_commands(worker_binary(), &faulty_argv(2, 0))
        .unwrap()
        .fault_tolerance(false);
    let err = engine
        .evaluate_via(&mut socket, 0, &query, &instance)
        .expect_err("socket transport must surface the death too")
        .to_string();
    assert!(err.contains("worker stderr"), "no stderr tail in: {err}");
    assert!(err.contains("injected fault"), "tail lost the cause: {err}");
}

#[test]
fn round_latency_quantiles_in_the_export_match_the_registry_exactly() {
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
        .rounds(6)
        .feedback_into("R");
    let outcome = engine.evaluate(&query, &instance);
    assert!(outcome.rounds_run() >= 2, "need several rounds of latency");

    let registry = engine.registry();
    let snapshot = registry.histogram("round_latency_us").snapshot();
    assert_eq!(
        snapshot.count,
        outcome.rounds_run() as u64,
        "one latency sample per executed round"
    );
    assert!(snapshot.p50 <= snapshot.p90);
    assert!(snapshot.p90 <= snapshot.p99);
    assert!(snapshot.p99 <= snapshot.max);
    assert!(snapshot.min <= snapshot.p50);

    // The wire export must carry the registry's quantiles bit-for-bit —
    // the pinned contract behind `run --metrics` and the `histograms`
    // block of `run --json`.
    let doc = pcq::wire::registry_json(&registry);
    let exported = doc
        .get("histograms")
        .and_then(|h| h.get("round_latency_us"))
        .expect("export must carry round_latency_us");
    for (key, value) in [
        ("count", snapshot.count),
        ("sum", snapshot.sum),
        ("min", snapshot.min),
        ("max", snapshot.max),
        ("p50", snapshot.p50),
        ("p90", snapshot.p90),
        ("p99", snapshot.p99),
    ] {
        assert_eq!(
            exported.get(key),
            Some(&JsonValue::from(value)),
            "exported {key} must equal the registry snapshot"
        );
    }
}

#[test]
fn cli_trace_diff_catches_an_injected_worker_slowdown() {
    // The acceptance scenario: trace the same process-transport run twice,
    // the second time with every worker slowed by 5ms per eval job.
    // `trace diff --threshold 25` must flag the slow run (exit 1) and name
    // the worker evaluation phase as the cause, while diffing a run
    // against itself stays clean (exit 0).
    use std::process::Command;

    let dir = std::env::temp_dir();
    let base = dir.join(format!("pcq-diff-base-{}.json", std::process::id()));
    let slow = dir.join(format!("pcq-diff-slow-{}.json", std::process::id()));
    let run = |trace: &PathBuf, extra: &[&str]| {
        let mut args = vec![
            "run",
            "T(x, z) :- R(x, y), R(y, z).",
            "hypercube:4",
            "random:20:300:7",
            "--workers",
            "2",
            "--transport",
            "process",
            "--trace",
            trace.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let output = Command::new(worker_binary()).args(&args).output().unwrap();
        assert!(
            output.status.success(),
            "traced run failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    run(&base, &[]);
    run(&slow, &["--slow-eval-us", "5000"]);

    let diff = |a: &PathBuf, b: &PathBuf| {
        let output = Command::new(worker_binary())
            .args([
                "trace",
                "diff",
                a.to_str().unwrap(),
                b.to_str().unwrap(),
                "--threshold",
                "25",
            ])
            .output()
            .unwrap();
        (
            output.status.code().unwrap(),
            String::from_utf8_lossy(&output.stdout).into_owned(),
        )
    };

    let (code, report) = diff(&base, &slow);
    assert_eq!(code, 1, "the slowed run must register as a regression");
    assert!(
        report.contains("worker_eval_chunk"),
        "the diff must name the slowed phase: {report}"
    );
    assert!(
        report.contains("REGRESSION"),
        "no regression line: {report}"
    );

    let (code, report) = diff(&base, &base);
    assert_eq!(code, 0, "a trace diffed against itself must be clean");
    assert!(report.contains("clean"), "no clean verdict: {report}");

    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(slow);
}

#[test]
fn cli_traced_socket_multi_query_run_produces_one_valid_merged_trace() {
    // The acceptance scenario end to end: a multi-query scenario over the
    // socket transport with --trace must yield a single Chrome-trace JSON
    // containing coordinator and every worker's spans, and `trace
    // summarize` must accept it.
    use std::process::Command;

    let dir = std::env::temp_dir();
    let scenario = dir.join(format!("pcq-trace-{}.pcq", std::process::id()));
    let trace = dir.join(format!("pcq-trace-{}.json", std::process::id()));
    std::fs::write(
        &scenario,
        "queries {\n  T(x, z) :- R(x, y), R(y, z).\n  T(x, z) :- R(x, y), R(y, z).\n}\n\
         instance { R(a, b). R(b, c). R(c, a). R(b, a). }\nschedule hash(2)\nrounds 3\n",
    )
    .unwrap();

    let run = Command::new(worker_binary())
        .args([
            "run",
            "--scenario",
            scenario.to_str().unwrap(),
            "--transport",
            "socket",
            "--workers",
            "2",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "traced run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let events = trace_export::parse_chrome_trace(&text).unwrap();
    trace_export::check_well_formed(&events).unwrap();
    let mut pids: Vec<u32> = events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(
        pids,
        vec![0, 1, 2],
        "trace must merge the coordinator and both workers"
    );
    assert!(events.iter().any(|e| e.name == "query"));
    assert!(events.iter().any(|e| e.name == "transfer_check"));

    let summarize = Command::new(worker_binary())
        .args(["trace", "summarize", trace.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(
        summarize.status.success(),
        "summarize failed: {}",
        String::from_utf8_lossy(&summarize.stderr)
    );
    let doc = JsonValue::parse(&String::from_utf8_lossy(&summarize.stdout)).unwrap();
    assert!(doc.get("processes").is_some());

    let _ = std::fs::remove_file(scenario);
    let _ = std::fs::remove_file(trace);
}
