//! Cross-crate integration tests for transferability and the family-level
//! results of Section 5.

use pcq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The semantics of transferability (Definition 4.1), checked operationally:
/// if transfer holds from Q to Q', then for every (random, finite) policy
/// under which Q is parallel-correct, Q' is parallel-correct as well.
#[test]
fn transfer_guarantees_reuse_of_random_policies() {
    let mut rng = StdRng::seed_from_u64(10);
    let pairs = [
        // (from, to, expected transfer)
        (
            "T(x, z) :- R(x, y), R(y, z), R(y, y).",
            "U(x, z) :- R(x, y), R(y, z).",
            true,
        ),
        ("T(x, y) :- R(x, y).", "U(x) :- R(x, x).", true),
        (
            "T(x, z) :- R(x, y), R(y, z).",
            "U(x, z) :- R(x, y), R(y, z), R(y, y).",
            false,
        ),
        (
            "T(x, y, z) :- R(x, y), R(y, z), R(z, x).",
            "U(x, z) :- R(x, y), R(y, z).",
            true,
        ),
    ];
    let universe = workloads::complete_binary_relation("R", &["a", "b"]);
    for (from_text, to_text, expected) in pairs {
        let from = ConjunctiveQuery::parse(from_text).unwrap();
        let to = ConjunctiveQuery::parse(to_text).unwrap();
        let report = check_transfer(&from, &to);
        assert_eq!(report.transfers(), expected, "{from_text} => {to_text}");

        if report.transfers() {
            // Operational consequence on sampled policies.
            for trial in 0..10 {
                let policy = workloads::random_explicit_policy(
                    &mut rng,
                    &universe,
                    workloads::PolicyParams {
                        nodes: 2 + trial % 3,
                        replication: 1 + trial % 2,
                        skip_probability: 0.0,
                    },
                );
                if check_parallel_correctness(&from, &policy).is_correct() {
                    assert!(
                        check_parallel_correctness(&to, &policy).is_correct(),
                        "transfer promised reuse but {to_text} fails under a policy \
                         for which {from_text} is parallel-correct"
                    );
                }
            }
        }
    }
}

/// When transfer fails, the violation can be turned into a concrete
/// separating policy (the construction in the proof of Lemma 4.2).
#[test]
fn failed_transfers_produce_separating_policies() {
    let pairs = [
        (
            "T(x, z) :- R(x, y), R(y, z).",
            "U(x, z) :- R(x, y), R(y, z), R(y, y).",
        ),
        ("T(x, y) :- R(x, y).", "U(x) :- R(x, y), S(y, x)."),
        (
            "T(x, z) :- R(x, y), R(y, z), R(x, x).",
            "U(x, z) :- R(x, y), R(y, z).",
        ),
    ];
    for (from_text, to_text) in pairs {
        let from = ConjunctiveQuery::parse(from_text).unwrap();
        let to = ConjunctiveQuery::parse(to_text).unwrap();
        let report = check_transfer(&from, &to);
        assert!(!report.transfers());
        let violation = report.violation.expect("failed transfer carries a witness");
        assert!(
            pc_core::transfer::violation_separates(&from, &to, &violation),
            "the Lemma 4.2 policy does not separate {from_text} from {to_text}"
        );
    }
}

/// For strongly minimal source queries the C3-based NP procedure
/// (Theorem 4.7) agrees with the general C2-based procedure (Theorem 4.3) on
/// randomly generated query pairs.
#[test]
fn c2_and_c3_agree_for_strongly_minimal_sources() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut compared = 0;
    while compared < 25 {
        let from = workloads::random_query(
            &mut rng,
            workloads::QueryParams {
                relations: 2,
                arity: 2,
                atoms: 3,
                variables: 4,
                head_variables: 2,
                allow_self_joins: true,
            },
        );
        if !is_strongly_minimal(&from) {
            continue;
        }
        let to = workloads::random_query(
            &mut rng,
            workloads::QueryParams {
                relations: 2,
                arity: 2,
                atoms: 3,
                variables: 4,
                head_variables: 1,
                allow_self_joins: true,
            },
        );
        let general = check_transfer(&from, &to).transfers();
        let fast = check_transfer_strongly_minimal(&from, &to).transfers();
        assert_eq!(general, fast, "C2 vs C3 disagree for {from} => {to}");
        compared += 1;
    }
}

/// Corollary 5.8 operationally: if Q' is parallel-correct for the Hypercube
/// family of Q (decided via C3), then the one-round evaluation of Q' under
/// concrete members of the family is correct on random instances; and the
/// decision agrees between the acyclic-Q encoding of C3 instances produced by
/// the graph reduction and the direct graph 3-coloring oracle.
#[test]
fn hypercube_family_reuse_and_c3_reduction_agree() {
    let mut rng = StdRng::seed_from_u64(12);

    // Operational reuse.
    let anchor = ConjunctiveQuery::parse("T(x, y, z) :- R(x, y), S(y, z).").unwrap();
    let reusable = ConjunctiveQuery::parse("U(y) :- R(x, y), S(y, z).").unwrap();
    let not_reusable = ConjunctiveQuery::parse("U(x, z) :- R(x, y), R(y, z).").unwrap();
    assert!(hypercube_parallel_correct(&anchor, &reusable).parallel_correct);
    assert!(!hypercube_parallel_correct(&anchor, &not_reusable).parallel_correct);

    let schema = Schema::from_relations([("R", 2), ("S", 2)]);
    for buckets in 1..=3 {
        let member = HypercubePolicy::uniform(&anchor, buckets).unwrap();
        for _ in 0..2 {
            let instance = workloads::random_instance(
                &mut rng,
                &schema,
                workloads::InstanceParams {
                    domain_size: 5,
                    facts_per_relation: 20,
                },
            );
            let outcome = OneRoundEngine::new(&member).evaluate(&reusable, &instance);
            assert_eq!(outcome.result, evaluate(&reusable, &instance));
        }
    }

    // Reduction-vs-oracle agreement (Proposition D.1).
    for n in [4usize, 5] {
        let graph = reductions::Graph::random(&mut rng, n, 0.6);
        let red = reductions::three_col_to_c3_acyclic_q(&graph);
        assert_eq!(graph.is_three_colorable(), holds_c3(&red.from, &red.to));
    }
}

/// Strong minimality interacts with transferability as the paper describes:
/// full queries and self-join-free queries are strongly minimal (Lemma 4.8),
/// and the 3-SAT reduction produces strongly minimal queries exactly for
/// unsatisfiable formulas (Lemma C.9).
#[test]
fn strong_minimality_landscape() {
    // Lemma 4.8 families.
    for text in [
        "T(x, y, z) :- R(x, y), S(y, z).",
        "T(x, y) :- R(x, y), R(y, x).",
        "T() :- R1(x, y), R2(y, z), R3(z, x).",
    ] {
        let q = ConjunctiveQuery::parse(text).unwrap();
        assert!(pc_core::satisfies_lemma_4_8(&q), "{text}");
        assert!(is_strongly_minimal(&q), "{text}");
    }
    // Example 4.9: strongly minimal without the sufficient condition.
    let q49 = ConjunctiveQuery::parse("T() :- R(x1, x2), R(x2, x1).").unwrap();
    assert!(!pc_core::satisfies_lemma_4_8(&q49));
    assert!(is_strongly_minimal(&q49));

    // Lemma C.9 on a satisfiable and an unsatisfiable formula.
    use logic::{Clause, Cnf, Literal};
    let sat = Cnf::new(
        2,
        vec![Clause::new(vec![
            Literal::pos(0),
            Literal::pos(1),
            Literal::neg(0),
        ])],
    );
    let unsat = Cnf::new(
        1,
        vec![
            Clause::new(vec![Literal::pos(0), Literal::pos(0), Literal::pos(0)]),
            Clause::new(vec![Literal::neg(0), Literal::neg(0), Literal::neg(0)]),
        ],
    );
    assert!(logic::dpll_satisfiable(&sat));
    assert!(!logic::dpll_satisfiable(&unsat));
    assert!(!is_strongly_minimal(&reductions::sat_to_strong_minimality(
        &sat
    )));
    assert!(is_strongly_minimal(&reductions::sat_to_strong_minimality(
        &unsat
    )));
}
