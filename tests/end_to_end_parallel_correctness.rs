//! Cross-crate integration tests for parallel-correctness: the decision
//! procedures, the one-round engine and the characterizations of the paper
//! must tell a single consistent story.

use pcq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// For finite policies, the (C1)-based decision (Lemma 3.4 / B.4) must agree
/// with running the one-round engine on every subinstance of the fact
/// universe (Definition 3.2 restricted to `facts(P)`).
#[test]
fn c1_decision_agrees_with_exhaustive_one_round_evaluation() {
    let mut rng = StdRng::seed_from_u64(1);
    let universe = workloads::complete_binary_relation("R", &["a", "b"]);
    let queries = [
        example_3_5_query(),
        chain_query(2),
        ConjunctiveQuery::parse("T(x) :- R(x, x).").unwrap(),
        ConjunctiveQuery::parse("T() :- R(x, y), R(y, x).").unwrap(),
        ConjunctiveQuery::parse("T(x) :- R(x, y), R(x, x).").unwrap(),
    ];
    for trial in 0..12 {
        let policy = workloads::random_explicit_policy(
            &mut rng,
            &universe,
            workloads::PolicyParams {
                nodes: 2 + trial % 3,
                replication: 1 + trial % 2,
                skip_probability: if trial % 4 == 0 { 0.25 } else { 0.0 },
            },
        );
        for query in &queries {
            let decided = check_parallel_correctness(query, &policy).is_correct();
            let exhaustive = pc_core::check_parallel_correctness_naive(query, &policy);
            assert_eq!(
                decided, exhaustive,
                "C1 decision and exhaustive check disagree for {query} (trial {trial})"
            );
        }
    }
}

/// Condition (C0) is sufficient but not necessary: whenever it holds,
/// parallel-correctness must hold; the Example 3.5 policy witnesses that the
/// converse fails.
#[test]
fn c0_is_sufficient_but_not_necessary() {
    let mut rng = StdRng::seed_from_u64(2);
    let universe = workloads::complete_binary_relation("R", &["a", "b", "c"]);
    let query = example_3_5_query();
    let mut c0_held = 0;
    for trial in 0..10 {
        let policy = workloads::random_explicit_policy(
            &mut rng,
            &universe,
            workloads::PolicyParams {
                nodes: 3,
                replication: 1 + trial % 3,
                skip_probability: 0.0,
            },
        );
        let c0 = holds_c0(&query, &policy, &universe);
        let pc = check_parallel_correctness(&query, &policy).is_correct();
        if c0 {
            c0_held += 1;
            assert!(pc, "C0 held but the query is not parallel-correct");
        }
    }
    // With full replication some policies satisfy C0; the loop above must
    // have exercised the implication at least once.
    assert!(c0_held >= 1);

    // Not necessary: the two-node policy of Example 3.5.
    let r_ab = Fact::from_names("R", &["a", "b"]);
    let r_ba = Fact::from_names("R", &["b", "a"]);
    let universe2 = workloads::complete_binary_relation("R", &["a", "b"]);
    let mut policy = ExplicitPolicy::new(Network::with_size(2));
    for fact in universe2.facts() {
        let mut nodes = Vec::new();
        if *fact != r_ab {
            nodes.push(Node::numbered(0));
        }
        if *fact != r_ba {
            nodes.push(Node::numbered(1));
        }
        policy.assign(fact.clone(), nodes);
    }
    assert!(!holds_c0(&query, &policy, &universe2));
    assert!(check_parallel_correctness(&query, &policy).is_correct());
}

/// Hypercube distributions are parallel-correct for their query on arbitrary
/// instances (Lemma 5.7 via (C0)), for several query shapes and bucket
/// configurations.
#[test]
fn hypercube_one_round_evaluation_is_always_correct() {
    let mut rng = StdRng::seed_from_u64(3);
    let queries = [
        chain_query(2),
        chain_query(3),
        triangle_query(),
        example_3_5_query(),
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap(),
    ];
    for query in &queries {
        let schema = query.schema();
        for _ in 0..3 {
            let instance = workloads::random_instance(
                &mut rng,
                &schema,
                workloads::InstanceParams {
                    domain_size: 6,
                    facts_per_relation: 25,
                },
            );
            for buckets in 1..=3 {
                let policy = HypercubePolicy::uniform(query, buckets).unwrap();
                let outcome = OneRoundEngine::new(&policy).evaluate(query, &instance);
                assert_eq!(
                    outcome.result,
                    evaluate(query, &instance),
                    "hypercube evaluation incorrect for {query} with {buckets} buckets"
                );
            }
        }
    }
}

/// The violation returned by a failed parallel-correctness check is a real
/// counterexample: evaluating the query on the counterexample instance under
/// the policy loses the reported fact.
#[test]
fn pc_violations_are_executable_counterexamples() {
    let mut rng = StdRng::seed_from_u64(4);
    let universe = workloads::complete_binary_relation("R", &["a", "b", "c"]);
    let queries = [chain_query(2), example_3_5_query(), chain_query(3)];
    let mut violations_seen = 0;
    for trial in 0..15 {
        let policy = workloads::random_explicit_policy(
            &mut rng,
            &universe,
            workloads::PolicyParams {
                nodes: 3 + trial % 3,
                replication: 1,
                skip_probability: 0.0,
            },
        );
        for query in &queries {
            let report = check_parallel_correctness(query, &policy);
            if let Some(violation) = &report.violation {
                violations_seen += 1;
                assert!(pc_core::is_minimal_valuation(query, &violation.valuation));
                let pci = check_parallel_correctness_on_instance(
                    query,
                    &policy,
                    &violation.counterexample_instance,
                );
                assert!(!pci.is_correct());
                assert!(pci.missing.contains(&violation.lost_fact));
            }
        }
    }
    assert!(
        violations_seen > 0,
        "the random policies should produce at least one violation"
    );
}

/// The rule-based (declarative) specification of Hypercube policies from
/// Section 5.2 distributes facts exactly like the Hypercube policy object.
#[test]
fn declarative_hypercube_specification_matches_the_policy() {
    let query = triangle_query();
    let policy = HypercubePolicy::uniform(&query, 3).unwrap();
    let rules = policy.as_rules();
    // one rule per body atom, one dimension per variable
    assert_eq!(rules.rules().len(), query.body_size());
    assert_eq!(rules.schemes().len(), query.variables().len());

    let mut rng = StdRng::seed_from_u64(5);
    let instance = workloads::random_instance(
        &mut rng,
        &query.schema(),
        workloads::InstanceParams {
            domain_size: 8,
            facts_per_relation: 40,
        },
    );
    for fact in instance.facts() {
        assert_eq!(policy.nodes_for(fact), rules.nodes_for(fact));
    }
}
