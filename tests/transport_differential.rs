//! Differential test of the transport seam: cross-process rounds must
//! produce **byte-identical** query answers to the in-memory path — on
//! every named workload family, for single rounds and for iterated
//! (feedback) runs.
//!
//! Worker subprocesses are real spawns of the freshly built `pcq-analyze`
//! binary re-invoked as `worker`, so this exercises the whole stack:
//! reshuffle → binary encode → frame → pipe → decode → evaluate → reply.

use pcq::prelude::*;
use std::path::PathBuf;

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pcq-analyze"))
}

fn spawn_transport(workers: usize) -> ProcessTransport {
    ProcessTransport::spawn_command(worker_binary(), &["worker".to_string()], workers)
        .expect("cannot spawn worker subprocesses")
}

/// The named workload families of `workloads::named_query`, with a
/// feedback relation for the iterated runs where one applies.
fn named_workloads() -> Vec<(&'static str, Option<&'static str>)> {
    vec![
        ("triangle", None),
        ("example3.5", Some("R")),
        ("chain:2", Some("R")),
        ("chain:4", None),
        ("star:3", None),
        ("cycle:3", None),
    ]
}

fn instance_for(query: &ConjunctiveQuery, seed: u64) -> Instance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    random_instance(
        &mut rng,
        &query.schema(),
        InstanceParams {
            domain_size: 8,
            facts_per_relation: 30,
        },
    )
}

#[test]
fn one_round_process_transport_matches_in_memory_on_all_named_workloads() {
    let mut transport = spawn_transport(3);
    for (name, _) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 11);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();
        let engine = OneRoundEngine::new(&policy).workers(2);

        let in_memory = engine.evaluate(&query, &instance);
        let cross_process = engine
            .evaluate_via(&mut transport, 0, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));

        assert_eq!(
            cross_process.result, in_memory.result,
            "{name}: cross-process result diverged"
        );
        // byte-identical: the rendered answers match exactly
        assert_eq!(
            cross_process.result.to_string(),
            in_memory.result.to_string(),
            "{name}: rendered answers diverged"
        );
        assert_eq!(cross_process.per_node_load, in_memory.per_node_load);
        assert_eq!(cross_process.per_node_output, in_memory.per_node_output);
        assert_eq!(cross_process.stats, in_memory.stats);
    }
}

#[test]
fn multi_round_process_transport_matches_in_memory_on_all_named_workloads() {
    let mut transport = spawn_transport(2);
    for (name, feedback) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 23);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();

        let build_engine = || {
            let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(5);
            if let Some(relation) = feedback {
                engine = engine.feedback_into(relation);
            }
            engine
        };

        let in_memory = build_engine().evaluate(&query, &instance);
        let cross_process = build_engine()
            .evaluate_via(&mut transport, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));

        assert_eq!(
            cross_process.result.to_string(),
            in_memory.result.to_string(),
            "{name}: multi-round answers diverged"
        );
        assert_eq!(cross_process.converged, in_memory.converged, "{name}");
        assert_eq!(cross_process.rounds_run(), in_memory.rounds_run(), "{name}");
        assert_eq!(cross_process.final_state, in_memory.final_state, "{name}");
        for (mem_round, proc_round) in in_memory.rounds.iter().zip(&cross_process.rounds) {
            assert_eq!(
                mem_round.result, proc_round.result,
                "{name}: a round diverged"
            );
            assert_eq!(mem_round.per_node_load, proc_round.per_node_load, "{name}");
            assert_eq!(mem_round.stats, proc_round.stats, "{name}");
        }
    }
}

#[test]
fn semi_naive_delta_shipping_matches_full_chunk_shipping_on_all_named_workloads() {
    // The acceptance differential: on every named workload, the incremental
    // run (deltas over the wire, per-node state in the workers, semi-naive
    // local evaluation) must produce byte-identical answers to the classic
    // full-chunk run — in memory and across processes.
    let mut transport = spawn_transport(2);
    for (name, feedback) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 37);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();

        let build_engine = || {
            let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(6);
            if let Some(relation) = feedback {
                engine = engine.feedback_into(relation);
            }
            engine
        };

        let full = build_engine().evaluate(&query, &instance);
        let semi_memory = build_engine().semi_naive(true).evaluate(&query, &instance);
        let semi_process = build_engine()
            .semi_naive(true)
            .evaluate_via(&mut transport, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: semi-naive process transport failed: {e}"));

        for (label, semi) in [("memory", &semi_memory), ("process", &semi_process)] {
            assert_eq!(
                semi.result.to_string(),
                full.result.to_string(),
                "{name}/{label}: semi-naive answers diverged from full re-evaluation"
            );
            assert_eq!(semi.converged, full.converged, "{name}/{label}");
            assert_eq!(semi.rounds_run(), full.rounds_run(), "{name}/{label}");
            assert_eq!(semi.final_state, full.final_state, "{name}/{label}");
        }
        // The two semi-naive paths must agree round by round, not just in
        // the end: same delta loads, same delta outputs.
        for (m, p) in semi_memory.rounds.iter().zip(&semi_process.rounds) {
            assert_eq!(m.result, p.result, "{name}: a semi-naive round diverged");
            assert_eq!(m.per_node_load, p.per_node_load, "{name}");
            assert_eq!(m.stats, p.stats, "{name}");
        }
    }
}

#[test]
fn delta_shipping_moves_fewer_bytes_than_full_chunk_shipping() {
    // On a TC-style feedback workload the late rounds of a full-chunk run
    // re-ship the whole accumulated state; the incremental run ships only
    // deltas. The transport counts real serialized bytes, so the saving is
    // measured, not estimated.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 23);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let build_engine = || {
        MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(8)
            .feedback_into("R")
    };

    let mut transport = spawn_transport(2);
    let full = build_engine()
        .evaluate_via(&mut transport, &query, &instance)
        .unwrap();
    let semi = build_engine()
        .semi_naive(true)
        .evaluate_via(&mut transport, &query, &instance)
        .unwrap();
    assert_eq!(semi.result, full.result);
    assert!(semi.rounds_run() > 1, "need late rounds for the claim");
    assert!(
        semi.total_comm_bytes() < full.total_comm_bytes(),
        "delta shipping moved {} bytes, full-chunk shipping {}",
        semi.total_comm_bytes(),
        full.total_comm_bytes()
    );
    // In-memory runs serialize nothing and must say so.
    assert_eq!(
        build_engine()
            .evaluate(&query, &instance)
            .total_comm_bytes(),
        0
    );
}

#[test]
fn one_process_transport_serves_consecutive_incremental_runs() {
    // Worker processes persist across runs; the round-0 reset must isolate
    // one incremental run from the next (stale per-node state would make
    // the second run's outputs disappear).
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 51);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let mut transport = spawn_transport(2);
    let reference = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
        .rounds(5)
        .feedback_into("R")
        .evaluate(&query, &instance);
    for run in 0..2 {
        let semi = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(5)
            .feedback_into("R")
            .semi_naive(true)
            .evaluate_via(&mut transport, &query, &instance)
            .unwrap();
        assert_eq!(semi.result, reference.result, "run {run} diverged");
        assert_eq!(semi.rounds_run(), reference.rounds_run(), "run {run}");
    }
}

#[test]
fn process_transport_survives_rounds_with_empty_and_skewed_chunks() {
    // Round-robin skips nothing but produces lopsided chunks; an explicit
    // skipping policy produces empty ones. Neither may wedge the pipes.
    let query = named_query("chain:2").unwrap();
    let instance = cq::parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
    let network = Network::with_size(4);
    let policy = ExplicitPolicy::round_robin(&network, &instance);
    let engine = OneRoundEngine::new(&policy);

    let mut transport = spawn_transport(2);
    let via_process = engine
        .evaluate_via(&mut transport, 0, &query, &instance)
        .unwrap();
    let in_memory = engine.evaluate(&query, &instance);
    assert_eq!(via_process.result, in_memory.result);
    assert_eq!(via_process.per_node_load, in_memory.per_node_load);
}

#[test]
fn scenario_files_drive_identical_runs_across_transports() {
    // The acceptance path end to end: a scenario written by the
    // pretty-printer re-parses to an equal value, builds its schedule, and
    // evaluates identically across both transports.
    let scenario = Scenario::parse(
        "query T(x, z) :- R(x, y), R(y, z).
         instance {
           R(v0, v1). R(v1, v2). R(v2, v3). R(v3, v4). R(v4, v0).
         }
         schedule hash(3), hypercube(2)
         rounds 6
         feedback R",
    )
    .unwrap();
    assert_eq!(
        Scenario::parse(&scenario.to_string()).unwrap(),
        scenario,
        "pretty-printed scenario must re-parse to an equal value"
    );

    let policies = scenario.build_schedule().unwrap();
    let refs: Vec<&dyn DistributionPolicy> = policies.iter().map(Box::as_ref).collect();
    fn build_engine<'a>(
        refs: Vec<&'a dyn DistributionPolicy>,
        scenario: &Scenario,
    ) -> MultiRoundEngine<'a> {
        MultiRoundEngine::new(RoundSchedule::of(refs))
            .rounds(scenario.rounds)
            .feedback_into(scenario.feedback.unwrap().as_str())
    }

    let in_memory =
        build_engine(refs.clone(), &scenario).evaluate(scenario.query(), &scenario.instance);
    let mut transport = spawn_transport(2);
    let cross_process = build_engine(refs, &scenario)
        .evaluate_via(&mut transport, scenario.query(), &scenario.instance)
        .unwrap();
    assert_eq!(
        cross_process.result.to_string(),
        in_memory.result.to_string()
    );
    assert!(in_memory.converged && cross_process.converged);
}

// ---------------------------------------------------------------------------
// Socket transport: the TCP-backed coordinator must be indistinguishable
// from the stdio-pipe transport, which in turn matches in-memory.
// ---------------------------------------------------------------------------

fn spawn_socket_transport(workers: usize) -> SocketTransport {
    SocketTransport::spawn_command(worker_binary(), &["worker".to_string()], workers)
        .expect("cannot spawn socket workers")
}

#[test]
fn one_round_socket_transport_matches_memory_and_process_on_all_named_workloads() {
    let mut socket = spawn_socket_transport(3);
    let mut process = spawn_transport(3);
    for (name, _) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 11);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();
        let engine = OneRoundEngine::new(&policy).workers(2);

        let in_memory = engine.evaluate(&query, &instance);
        let via_socket = engine
            .evaluate_via(&mut socket, 0, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: socket transport failed: {e}"));
        let via_process = engine
            .evaluate_via(&mut process, 0, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));

        assert_eq!(
            via_socket.result.to_string(),
            in_memory.result.to_string(),
            "{name}: socket answers diverged from memory"
        );
        assert_eq!(
            via_socket.result.to_string(),
            via_process.result.to_string(),
            "{name}: socket answers diverged from process"
        );
        assert_eq!(via_socket.per_node_load, in_memory.per_node_load, "{name}");
        assert_eq!(
            via_socket.per_node_output, in_memory.per_node_output,
            "{name}"
        );
        assert_eq!(via_socket.stats, in_memory.stats, "{name}");
    }
}

#[test]
fn multi_round_socket_transport_matches_memory_on_all_named_workloads() {
    let mut socket = spawn_socket_transport(2);
    for (name, feedback) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 23);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();

        let build_engine = || {
            let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(5);
            if let Some(relation) = feedback {
                engine = engine.feedback_into(relation);
            }
            engine
        };

        let in_memory = build_engine().evaluate(&query, &instance);
        let via_socket = build_engine()
            .evaluate_via(&mut socket, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: socket transport failed: {e}"));

        assert_eq!(
            via_socket.result.to_string(),
            in_memory.result.to_string(),
            "{name}: multi-round socket answers diverged"
        );
        assert_eq!(via_socket.converged, in_memory.converged, "{name}");
        assert_eq!(via_socket.rounds_run(), in_memory.rounds_run(), "{name}");
        assert_eq!(via_socket.final_state, in_memory.final_state, "{name}");
        for (mem_round, sock_round) in in_memory.rounds.iter().zip(&via_socket.rounds) {
            assert_eq!(
                mem_round.result, sock_round.result,
                "{name}: a round diverged"
            );
            assert_eq!(mem_round.per_node_load, sock_round.per_node_load, "{name}");
            assert_eq!(mem_round.stats, sock_round.stats, "{name}");
        }
    }
}

#[test]
fn semi_naive_socket_transport_matches_memory_on_all_named_workloads() {
    let mut socket = spawn_socket_transport(2);
    for (name, feedback) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 37);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();

        let build_engine = || {
            let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(6);
            if let Some(relation) = feedback {
                engine = engine.feedback_into(relation);
            }
            engine
        };

        let semi_memory = build_engine().semi_naive(true).evaluate(&query, &instance);
        let semi_socket = build_engine()
            .semi_naive(true)
            .evaluate_via(&mut socket, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: semi-naive socket transport failed: {e}"));

        assert_eq!(
            semi_socket.result.to_string(),
            semi_memory.result.to_string(),
            "{name}: semi-naive socket answers diverged"
        );
        assert_eq!(semi_socket.converged, semi_memory.converged, "{name}");
        assert_eq!(semi_socket.rounds_run(), semi_memory.rounds_run(), "{name}");
        for (m, s) in semi_memory.rounds.iter().zip(&semi_socket.rounds) {
            assert_eq!(m.result, s.result, "{name}: a semi-naive round diverged");
            assert_eq!(m.per_node_load, s.per_node_load, "{name}");
            assert_eq!(m.stats, s.stats, "{name}");
        }
    }
}

// ---------------------------------------------------------------------------
// Byte accounting: comm_bytes must count worker→coordinator result frames,
// not just the requests.
// ---------------------------------------------------------------------------

#[test]
fn comm_bytes_exceed_request_frames_alone_on_both_wire_transports() {
    // Broadcast gives every node the full instance, so the request frames
    // are exactly reconstructible here: one EvalChunk per node carrying the
    // whole instance. A transport that only counted requests (the old bug)
    // would report exactly this sum; counting the replies too must land
    // strictly above it on a high-output round.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let network = Network::with_size(4);
    let policy = ExplicitPolicy::broadcast(&network, &instance);
    let engine = OneRoundEngine::new(&policy);

    let request_bytes: u64 = network
        .nodes()
        .map(|node| {
            let batch = pcq::wire::ChunkBatch {
                round: 0,
                node,
                chunk: instance.clone(),
            };
            pcq::wire::encode_frame(&pcq::wire::EvalChunkRef {
                query: &query,
                options: EvalOptions::default(),
                batch: &batch,
                trace: pcq::wire::TraceContext::default(),
            })
            .len() as u64
        })
        .sum();
    assert!(request_bytes > 0);

    let mut process = spawn_transport(2);
    let via_process = engine
        .evaluate_via(&mut process, 0, &query, &instance)
        .unwrap();
    assert!(!via_process.result.is_empty(), "need real result frames");
    assert!(
        via_process.comm_bytes > request_bytes,
        "process transport reported {} comm bytes; the requests alone are {} — \
         result frames are not being counted",
        via_process.comm_bytes,
        request_bytes
    );

    let mut socket = spawn_socket_transport(2);
    let via_socket = engine
        .evaluate_via(&mut socket, 0, &query, &instance)
        .unwrap();
    assert!(
        via_socket.comm_bytes > request_bytes,
        "socket transport reported {} comm bytes; the requests alone are {}",
        via_socket.comm_bytes,
        request_bytes
    );
    assert_eq!(via_socket.result, via_process.result);
}

// ---------------------------------------------------------------------------
// Shipped evaluation options: wire workers must honor the coordinator's
// EvalOptions instead of silently falling back to their own defaults.
// ---------------------------------------------------------------------------

#[test]
fn wire_workers_honor_the_coordinators_join_strategy() {
    // The options travel with every round since they joined the wire
    // protocol; under an explicitly forced multiway strategy all three
    // transports must produce the centralized answers on every family.
    let options = EvalOptions {
        join_strategy: JoinStrategy::Multiway,
        ..EvalOptions::default()
    };
    let mut process = spawn_transport(2);
    let mut socket = spawn_socket_transport(2);
    for (name, _) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 43);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();
        let engine = OneRoundEngine::new(&policy)
            .workers(2)
            .eval_options(options);

        let in_memory = engine.evaluate(&query, &instance);
        assert_eq!(
            in_memory.result,
            cq::evaluate(&query, &instance),
            "{name}: multiway in-memory run lost answers"
        );
        let via_process = engine
            .evaluate_via(&mut process, 0, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));
        let via_socket = engine
            .evaluate_via(&mut socket, 0, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: socket transport failed: {e}"));
        assert_eq!(
            via_process.result, in_memory.result,
            "{name}: process transport diverged under multiway"
        );
        assert_eq!(
            via_socket.result, in_memory.result,
            "{name}: socket transport diverged under multiway"
        );
    }
}

#[test]
fn multi_round_wire_runs_honor_the_coordinators_join_strategy() {
    // The multi-round engine forwards its options into every round's
    // transport calls — including delta rounds of an incremental run.
    let options = EvalOptions {
        join_strategy: JoinStrategy::Multiway,
        ..EvalOptions::default()
    };
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 43);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    for semi_naive in [false, true] {
        let build_engine = || {
            MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                .rounds(6)
                .feedback_into("R")
                .semi_naive(semi_naive)
                .eval_options(options)
        };
        let in_memory = build_engine().evaluate(&query, &instance);
        let mut process = spawn_transport(2);
        let via_process = build_engine()
            .evaluate_via(&mut process, &query, &instance)
            .unwrap();
        assert_eq!(
            via_process.result.to_string(),
            in_memory.result.to_string(),
            "semi_naive={semi_naive}: multiway multi-round answers diverged"
        );
        assert_eq!(via_process.rounds_run(), in_memory.rounds_run());
    }
}

// ---------------------------------------------------------------------------
// Multi-query runs: transferability-driven reshuffle elision must be
// answer-invisible against the reshuffle-always baseline, on every named
// query sequence, every transport, in full and semi-naive mode.
// ---------------------------------------------------------------------------

/// One instance covering every relation any query of the sequence reads:
/// the union of per-query generations under one seed, so shared relations
/// get identical facts.
fn instance_for_sequence(queries: &[ConjunctiveQuery], seed: u64) -> Instance {
    let mut all = Instance::new();
    for query in queries {
        all = all.union(&instance_for(query, seed));
    }
    all
}

#[test]
fn multi_query_elision_matches_reshuffle_always_on_all_sequences_and_transports() {
    let mut process = spawn_transport(2);
    let mut socket = spawn_socket_transport(2);
    for name in query_sequence_names() {
        let queries = named_query_sequence(name).unwrap();
        let instance = instance_for_sequence(&queries, 19);
        let policy = workloads::total_broadcast_policy(3).unwrap();
        for semi_naive in [false, true] {
            let build = |reshuffle_always: bool| {
                MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                    .rounds(4)
                    .semi_naive(semi_naive)
                    .reshuffle_always(reshuffle_always)
            };
            let mut cache = TransferCache::new();

            let baseline = build(true)
                .evaluate_queries(&queries, &instance, &mut |p, q| cache.transfers(p, q));
            let elided_memory = build(false)
                .evaluate_queries(&queries, &instance, &mut |p, q| cache.transfers(p, q));
            let baseline_process = build(true)
                .evaluate_queries_via(&mut process, &queries, &instance, &mut |p, q| {
                    cache.transfers(p, q)
                })
                .unwrap_or_else(|e| panic!("{name}: process baseline failed: {e}"));
            let elided_process = build(false)
                .evaluate_queries_via(&mut process, &queries, &instance, &mut |p, q| {
                    cache.transfers(p, q)
                })
                .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));
            let elided_socket = build(false)
                .evaluate_queries_via(&mut socket, &queries, &instance, &mut |p, q| {
                    cache.transfers(p, q)
                })
                .unwrap_or_else(|e| panic!("{name}: socket transport failed: {e}"));

            // Every named sequence contains a transferring pair, so the
            // engine must actually elide — otherwise this differential
            // silently compares reshuffle-always to itself.
            assert_eq!(baseline.elided_reshuffles(), 0, "{name}");
            assert!(
                elided_memory.elided_reshuffles() >= 1,
                "{name} semi_naive={semi_naive}: no reshuffle was elided"
            );
            assert!(
                elided_memory.total_comm_volume() < baseline.total_comm_volume(),
                "{name} semi_naive={semi_naive}: elision did not reduce comm volume \
                 ({} vs {})",
                elided_memory.total_comm_volume(),
                baseline.total_comm_volume()
            );

            for (i, (b, e)) in baseline
                .per_query
                .iter()
                .zip(&elided_memory.per_query)
                .enumerate()
            {
                assert_eq!(
                    e.result.to_string(),
                    b.result.to_string(),
                    "{name}[{i}] semi_naive={semi_naive}: elided answers diverged"
                );
                assert_eq!(
                    e.final_state, b.final_state,
                    "{name}[{i}] semi_naive={semi_naive}"
                );
                assert_eq!(e.converged, b.converged, "{name}[{i}]");
            }
            for (label, run) in [("process", &elided_process), ("socket", &elided_socket)] {
                assert_eq!(
                    run.elided_reshuffles(),
                    elided_memory.elided_reshuffles(),
                    "{name}/{label} semi_naive={semi_naive}: elision decisions diverged"
                );
                assert_eq!(
                    run.transfer_checks, elided_memory.transfer_checks,
                    "{name}/{label}"
                );
                for (i, (m, w)) in elided_memory
                    .per_query
                    .iter()
                    .zip(&run.per_query)
                    .enumerate()
                {
                    assert_eq!(
                        w.result.to_string(),
                        m.result.to_string(),
                        "{name}[{i}]/{label} semi_naive={semi_naive}: wire answers diverged"
                    );
                }
            }
            // The headline saving, measured on real serialized frames: the
            // elided run ships strictly fewer bytes than the baseline.
            assert!(
                elided_process.total_comm_bytes() < baseline_process.total_comm_bytes(),
                "{name} semi_naive={semi_naive}: elision shipped {} bytes, baseline {}",
                elided_process.total_comm_bytes(),
                baseline_process.total_comm_bytes()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fault tolerance: a worker dying mid-round must not lose the round.
// ---------------------------------------------------------------------------

/// Argument lists for a pool whose worker 0 dies after `fail_after` eval
/// jobs (the others run normally).
fn faulty_argv(workers: usize, fail_after: u64) -> Vec<Vec<String>> {
    (0..workers)
        .map(|i| {
            if i == 0 {
                vec![
                    "worker".to_string(),
                    "--fail-after".to_string(),
                    fail_after.to_string(),
                ]
            } else {
                vec!["worker".to_string()]
            }
        })
        .collect()
}

#[test]
fn full_mode_round_survives_a_worker_dying_mid_round() {
    // Six round-robin nodes across three workers; worker 0 dies on its
    // second job. The round must complete via requeue with the result of a
    // healthy run, and the pool must visibly have lost a worker (proving
    // the fault fired rather than the test silently passing).
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let network = Network::with_size(6);
    let policy = ExplicitPolicy::round_robin(&network, &instance);
    let engine = OneRoundEngine::new(&policy);
    let in_memory = engine.evaluate(&query, &instance);

    for label in ["process", "socket"] {
        let (outcome, before, after) = if label == "process" {
            let mut t =
                ProcessTransport::spawn_commands(worker_binary(), &faulty_argv(3, 1)).unwrap();
            let before = t.alive_workers();
            let outcome = engine.evaluate_via(&mut t, 0, &query, &instance);
            (outcome, before, t.alive_workers())
        } else {
            let mut t =
                SocketTransport::spawn_commands(worker_binary(), &faulty_argv(3, 1)).unwrap();
            let before = t.alive_workers();
            let outcome = engine.evaluate_via(&mut t, 0, &query, &instance);
            (outcome, before, t.alive_workers())
        };
        let outcome = outcome.unwrap_or_else(|e| panic!("{label}: round did not survive: {e}"));
        assert_eq!(
            outcome.result, in_memory.result,
            "{label}: requeued round diverged"
        );
        assert_eq!(before, 3, "{label}");
        assert!(
            after < before,
            "{label}: no worker died — the fault injection never fired"
        );
    }
}

#[test]
fn semi_naive_run_rebuilds_dead_workers_state_on_survivors() {
    // The hard path: the dead worker held per-node DeltaNode state. The
    // coordinator must re-ship the node's full accumulated input as a
    // round-0 rebuild on a survivor, and the run must still converge to
    // the same fixpoint as the in-memory reference — including rounds
    // *after* the death, which exercise the needs_rebuild bookkeeping.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 23);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let build_engine = || {
        MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(6)
            .feedback_into("R")
            .semi_naive(true)
    };
    let reference = build_engine().evaluate(&query, &instance);
    assert!(reference.rounds_run() > 2, "need rounds after the death");

    for label in ["process", "socket"] {
        let (outcome, after, total) = if label == "process" {
            let mut t =
                ProcessTransport::spawn_commands(worker_binary(), &faulty_argv(2, 1)).unwrap();
            let outcome = build_engine().evaluate_via(&mut t, &query, &instance);
            (outcome, t.alive_workers(), t.worker_count())
        } else {
            let mut t =
                SocketTransport::spawn_commands(worker_binary(), &faulty_argv(2, 1)).unwrap();
            let outcome = build_engine().evaluate_via(&mut t, &query, &instance);
            (outcome, t.alive_workers(), t.worker_count())
        };
        let outcome = outcome.unwrap_or_else(|e| panic!("{label}: run did not survive: {e}"));
        assert_eq!(
            outcome.result.to_string(),
            reference.result.to_string(),
            "{label}: post-fault fixpoint diverged"
        );
        assert_eq!(outcome.converged, reference.converged, "{label}");
        assert!(
            after < total,
            "{label}: no worker died — the fault injection never fired"
        );
    }
}

#[test]
fn with_fault_tolerance_off_a_worker_death_is_a_clean_error() {
    // No panic, no hang: the engine surfaces the first failure as a
    // TransportError and the transport still drops promptly.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 11);
    let network = Network::with_size(6);
    let policy = ExplicitPolicy::round_robin(&network, &instance);
    let engine = OneRoundEngine::new(&policy);

    let mut t = ProcessTransport::spawn_commands(worker_binary(), &faulty_argv(2, 0))
        .unwrap()
        .fault_tolerance(false);
    let err = engine
        .evaluate_via(&mut t, 0, &query, &instance)
        .expect_err("a dead worker without fault tolerance must error");
    match err {
        TransportError::Io(_) | TransportError::Protocol(_) => {}
        other => panic!("unexpected error kind: {other:?}"),
    }
    drop(t);

    let mut t = SocketTransport::spawn_commands(worker_binary(), &faulty_argv(2, 0))
        .unwrap()
        .fault_tolerance(false);
    engine
        .evaluate_via(&mut t, 0, &query, &instance)
        .expect_err("socket transport must surface the death too");
}

#[test]
fn dropping_a_transport_with_a_wedged_worker_is_bounded() {
    // `sleep 30` never speaks the protocol and ignores Shutdown; the old
    // Drop would block in child.wait() for the full 30 seconds. The
    // bounded grace must kill it quickly instead.
    let transport = ProcessTransport::spawn_command(PathBuf::from("sleep"), &["30".to_string()], 1)
        .unwrap()
        .shutdown_grace(std::time::Duration::from_millis(250));
    let start = std::time::Instant::now();
    drop(transport);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "drop took {:?} — the shutdown grace is not bounding the wait",
        start.elapsed()
    );
}
