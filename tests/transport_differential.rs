//! Differential test of the transport seam: cross-process rounds must
//! produce **byte-identical** query answers to the in-memory path — on
//! every named workload family, for single rounds and for iterated
//! (feedback) runs.
//!
//! Worker subprocesses are real spawns of the freshly built `pcq-analyze`
//! binary re-invoked as `worker`, so this exercises the whole stack:
//! reshuffle → binary encode → frame → pipe → decode → evaluate → reply.

use pcq::prelude::*;
use std::path::PathBuf;

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pcq-analyze"))
}

fn spawn_transport(workers: usize) -> ProcessTransport {
    ProcessTransport::spawn_command(worker_binary(), &["worker".to_string()], workers)
        .expect("cannot spawn worker subprocesses")
}

/// The named workload families of `workloads::named_query`, with a
/// feedback relation for the iterated runs where one applies.
fn named_workloads() -> Vec<(&'static str, Option<&'static str>)> {
    vec![
        ("triangle", None),
        ("example3.5", Some("R")),
        ("chain:2", Some("R")),
        ("chain:4", None),
        ("star:3", None),
        ("cycle:3", None),
    ]
}

fn instance_for(query: &ConjunctiveQuery, seed: u64) -> Instance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    random_instance(
        &mut rng,
        &query.schema(),
        InstanceParams {
            domain_size: 8,
            facts_per_relation: 30,
        },
    )
}

#[test]
fn one_round_process_transport_matches_in_memory_on_all_named_workloads() {
    let mut transport = spawn_transport(3);
    for (name, _) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 11);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();
        let engine = OneRoundEngine::new(&policy).workers(2);

        let in_memory = engine.evaluate(&query, &instance);
        let cross_process = engine
            .evaluate_via(&mut transport, 0, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));

        assert_eq!(
            cross_process.result, in_memory.result,
            "{name}: cross-process result diverged"
        );
        // byte-identical: the rendered answers match exactly
        assert_eq!(
            cross_process.result.to_string(),
            in_memory.result.to_string(),
            "{name}: rendered answers diverged"
        );
        assert_eq!(cross_process.per_node_load, in_memory.per_node_load);
        assert_eq!(cross_process.per_node_output, in_memory.per_node_output);
        assert_eq!(cross_process.stats, in_memory.stats);
    }
}

#[test]
fn multi_round_process_transport_matches_in_memory_on_all_named_workloads() {
    let mut transport = spawn_transport(2);
    for (name, feedback) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 23);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();

        let build_engine = || {
            let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(5);
            if let Some(relation) = feedback {
                engine = engine.feedback_into(relation);
            }
            engine
        };

        let in_memory = build_engine().evaluate(&query, &instance);
        let cross_process = build_engine()
            .evaluate_via(&mut transport, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: process transport failed: {e}"));

        assert_eq!(
            cross_process.result.to_string(),
            in_memory.result.to_string(),
            "{name}: multi-round answers diverged"
        );
        assert_eq!(cross_process.converged, in_memory.converged, "{name}");
        assert_eq!(cross_process.rounds_run(), in_memory.rounds_run(), "{name}");
        assert_eq!(cross_process.final_state, in_memory.final_state, "{name}");
        for (mem_round, proc_round) in in_memory.rounds.iter().zip(&cross_process.rounds) {
            assert_eq!(
                mem_round.result, proc_round.result,
                "{name}: a round diverged"
            );
            assert_eq!(mem_round.per_node_load, proc_round.per_node_load, "{name}");
            assert_eq!(mem_round.stats, proc_round.stats, "{name}");
        }
    }
}

#[test]
fn semi_naive_delta_shipping_matches_full_chunk_shipping_on_all_named_workloads() {
    // The acceptance differential: on every named workload, the incremental
    // run (deltas over the wire, per-node state in the workers, semi-naive
    // local evaluation) must produce byte-identical answers to the classic
    // full-chunk run — in memory and across processes.
    let mut transport = spawn_transport(2);
    for (name, feedback) in named_workloads() {
        let query = named_query(name).unwrap();
        let instance = instance_for(&query, 37);
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();

        let build_engine = || {
            let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy)).rounds(6);
            if let Some(relation) = feedback {
                engine = engine.feedback_into(relation);
            }
            engine
        };

        let full = build_engine().evaluate(&query, &instance);
        let semi_memory = build_engine().semi_naive(true).evaluate(&query, &instance);
        let semi_process = build_engine()
            .semi_naive(true)
            .evaluate_via(&mut transport, &query, &instance)
            .unwrap_or_else(|e| panic!("{name}: semi-naive process transport failed: {e}"));

        for (label, semi) in [("memory", &semi_memory), ("process", &semi_process)] {
            assert_eq!(
                semi.result.to_string(),
                full.result.to_string(),
                "{name}/{label}: semi-naive answers diverged from full re-evaluation"
            );
            assert_eq!(semi.converged, full.converged, "{name}/{label}");
            assert_eq!(semi.rounds_run(), full.rounds_run(), "{name}/{label}");
            assert_eq!(semi.final_state, full.final_state, "{name}/{label}");
        }
        // The two semi-naive paths must agree round by round, not just in
        // the end: same delta loads, same delta outputs.
        for (m, p) in semi_memory.rounds.iter().zip(&semi_process.rounds) {
            assert_eq!(m.result, p.result, "{name}: a semi-naive round diverged");
            assert_eq!(m.per_node_load, p.per_node_load, "{name}");
            assert_eq!(m.stats, p.stats, "{name}");
        }
    }
}

#[test]
fn delta_shipping_moves_fewer_bytes_than_full_chunk_shipping() {
    // On a TC-style feedback workload the late rounds of a full-chunk run
    // re-ship the whole accumulated state; the incremental run ships only
    // deltas. The transport counts real serialized bytes, so the saving is
    // measured, not estimated.
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 23);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let build_engine = || {
        MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(8)
            .feedback_into("R")
    };

    let mut transport = spawn_transport(2);
    let full = build_engine()
        .evaluate_via(&mut transport, &query, &instance)
        .unwrap();
    let semi = build_engine()
        .semi_naive(true)
        .evaluate_via(&mut transport, &query, &instance)
        .unwrap();
    assert_eq!(semi.result, full.result);
    assert!(semi.rounds_run() > 1, "need late rounds for the claim");
    assert!(
        semi.total_comm_bytes() < full.total_comm_bytes(),
        "delta shipping moved {} bytes, full-chunk shipping {}",
        semi.total_comm_bytes(),
        full.total_comm_bytes()
    );
    // In-memory runs serialize nothing and must say so.
    assert_eq!(
        build_engine()
            .evaluate(&query, &instance)
            .total_comm_bytes(),
        0
    );
}

#[test]
fn one_process_transport_serves_consecutive_incremental_runs() {
    // Worker processes persist across runs; the round-0 reset must isolate
    // one incremental run from the next (stale per-node state would make
    // the second run's outputs disappear).
    let query = named_query("chain:2").unwrap();
    let instance = instance_for(&query, 51);
    let policy = HypercubePolicy::uniform(&query, 2).unwrap();
    let mut transport = spawn_transport(2);
    let reference = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
        .rounds(5)
        .feedback_into("R")
        .evaluate(&query, &instance);
    for run in 0..2 {
        let semi = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(5)
            .feedback_into("R")
            .semi_naive(true)
            .evaluate_via(&mut transport, &query, &instance)
            .unwrap();
        assert_eq!(semi.result, reference.result, "run {run} diverged");
        assert_eq!(semi.rounds_run(), reference.rounds_run(), "run {run}");
    }
}

#[test]
fn process_transport_survives_rounds_with_empty_and_skewed_chunks() {
    // Round-robin skips nothing but produces lopsided chunks; an explicit
    // skipping policy produces empty ones. Neither may wedge the pipes.
    let query = named_query("chain:2").unwrap();
    let instance = cq::parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
    let network = Network::with_size(4);
    let policy = ExplicitPolicy::round_robin(&network, &instance);
    let engine = OneRoundEngine::new(&policy);

    let mut transport = spawn_transport(2);
    let via_process = engine
        .evaluate_via(&mut transport, 0, &query, &instance)
        .unwrap();
    let in_memory = engine.evaluate(&query, &instance);
    assert_eq!(via_process.result, in_memory.result);
    assert_eq!(via_process.per_node_load, in_memory.per_node_load);
}

#[test]
fn scenario_files_drive_identical_runs_across_transports() {
    // The acceptance path end to end: a scenario written by the
    // pretty-printer re-parses to an equal value, builds its schedule, and
    // evaluates identically across both transports.
    let scenario = Scenario::parse(
        "query T(x, z) :- R(x, y), R(y, z).
         instance {
           R(v0, v1). R(v1, v2). R(v2, v3). R(v3, v4). R(v4, v0).
         }
         schedule hash(3), hypercube(2)
         rounds 6
         feedback R",
    )
    .unwrap();
    assert_eq!(
        Scenario::parse(&scenario.to_string()).unwrap(),
        scenario,
        "pretty-printed scenario must re-parse to an equal value"
    );

    let policies = scenario.build_schedule().unwrap();
    let refs: Vec<&dyn DistributionPolicy> = policies.iter().map(Box::as_ref).collect();
    fn build_engine<'a>(
        refs: Vec<&'a dyn DistributionPolicy>,
        scenario: &Scenario,
    ) -> MultiRoundEngine<'a> {
        MultiRoundEngine::new(RoundSchedule::of(refs))
            .rounds(scenario.rounds)
            .feedback_into(scenario.feedback.unwrap().as_str())
    }

    let in_memory =
        build_engine(refs.clone(), &scenario).evaluate(&scenario.query, &scenario.instance);
    let mut transport = spawn_transport(2);
    let cross_process = build_engine(refs, &scenario)
        .evaluate_via(&mut transport, &scenario.query, &scenario.instance)
        .unwrap();
    assert_eq!(
        cross_process.result.to_string(),
        in_memory.result.to_string()
    );
    assert!(in_memory.converged && cross_process.converged);
}
