//! The tracing half: a process-global span recorder with per-thread
//! buffers.
//!
//! ## Lifecycle
//!
//! The coordinator calls [`start_trace`], runs the workload, and calls
//! [`end_trace`] to collect the merged, time-sorted event list. Worker
//! processes never start a trace themselves: they call [`adopt_trace`]
//! with the trace id and coordinator clock carried in the wire
//! protocol's trace context, record spans locally, and hand their
//! buffered events back via [`take_events`] (the transport ships them in
//! a `TraceFlush` frame); the coordinator injects them with
//! [`submit_events`].
//!
//! ## Recording
//!
//! Each thread records into its own bounded buffer (a full buffer drops
//! new events and counts them in [`dropped_events`] rather than growing
//! without bound) and maintains its own stack of open spans, which is
//! what gives every event a parent id without cross-thread
//! coordination. Buffers are shared with the collector through a global
//! registry, so draining sees every live thread's events — it does
//! *not* depend on thread-exit destructors, which `std::thread::scope`
//! is allowed to leave running slightly past the join. The per-event
//! cost while enabled is one uncontended mutex lock on the thread's own
//! buffer.
//!
//! ## Disabled cost
//!
//! With no active trace, [`span`]/[`instant_args`] return immediately
//! after one relaxed atomic load, argument closures are never invoked,
//! and the returned guard's `Drop` is a branch on an id. The
//! `cq_multiround` bench pins this overhead below 2%.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts_us..ts_us + dur_us`.
    Span,
    /// A point-in-time event (`dur_us` is 0).
    Instant,
}

/// One recorded event: the unit the exporter and the summarizer consume,
/// and the unit `TraceFlush` frames carry across processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or instant name (a static site name like `"eval_round"`).
    pub name: String,
    /// Span vs instant.
    pub kind: EventKind,
    /// Start timestamp, microseconds on the trace clock.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Process lane: 0 = coordinator; the coordinator stamps worker
    /// events with `worker index + 1` when it absorbs their flush.
    pub pid: u32,
    /// Thread lane within the process (assigned per thread, from 1).
    pub tid: u64,
    /// Span id (unique per process; instants reuse their parent's id).
    pub id: u64,
    /// Enclosing span id (0 = root).
    pub parent: u64,
    /// Optional key/value arguments.
    pub args: Vec<(String, String)>,
}

/// Active trace id; 0 means tracing is off — the whole fast path.
static TRACE_ID: AtomicU64 = AtomicU64::new(0);
/// Added to the local monotonic clock so worker timestamps land on the
/// coordinator's timeline (set by [`adopt_trace`]).
static CLOCK_OFFSET_US: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Events handed over by exiting threads and worker processes.
static COLLECTOR: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
/// Every live thread's buffer, so draining never depends on thread-exit
/// timing. Dead threads leave `Weak`s that prune on the next access.
static BUFFERS: Mutex<Vec<Weak<Mutex<BufInner>>>> = Mutex::new(Vec::new());

/// Per-thread buffer cap; beyond it new events are dropped (and counted)
/// instead of growing the buffer without bound.
const LOCAL_CAPACITY: usize = 1 << 16;

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Span ids must not collide between the coordinator and its worker
/// processes (events merge into one trace), so the per-process counter
/// is tagged with the OS process id in the high bits.
fn next_span_id() -> u64 {
    (u64::from(std::process::id()) << 40) | (NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & 0xff_ffff)
}

/// The shareable half of a thread's recording state: the drainer locks
/// this from another thread, so it holds only what draining needs.
struct BufInner {
    /// The trace id these events belong to; a drainer for a different
    /// trace clears instead of collecting.
    trace: u64,
    events: Vec<TraceEvent>,
}

impl BufInner {
    fn push(&mut self, trace: u64, event: TraceEvent) {
        if self.trace != trace {
            // First event of a new trace: drop anything stale.
            self.trace = trace;
            self.events.clear();
        }
        if self.events.len() >= LOCAL_CAPACITY {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.events.push(event);
    }
}

/// The thread-local half: the open-span stack is owner-only, the inner
/// buffer is shared with drainers via [`BUFFERS`].
struct LocalBuf {
    inner: Arc<Mutex<BufInner>>,
    tid: u64,
    /// Trace id the stack belongs to (stale stacks reset on first use).
    stack_trace: u64,
    stack: Vec<u64>,
}

impl LocalBuf {
    fn new() -> LocalBuf {
        let inner = Arc::new(Mutex::new(BufInner {
            trace: 0,
            events: Vec::new(),
        }));
        let mut buffers = BUFFERS.lock().expect("trace buffer registry poisoned");
        buffers.retain(|weak| weak.strong_count() > 0);
        buffers.push(Arc::downgrade(&inner));
        drop(buffers);
        LocalBuf {
            inner,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack_trace: 0,
            stack: Vec::new(),
        }
    }

    fn sync_stack(&mut self, trace: u64) {
        if self.stack_trace != trace {
            self.stack_trace = trace;
            self.stack.clear();
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // Hand leftover events of the *active* trace to the collector so
        // they survive this thread's buffer disappearing from the
        // registry; anything stale just dies with the thread.
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        if inner.trace != 0 && inner.trace == TRACE_ID.load(Ordering::Relaxed) {
            let mut collector = COLLECTOR.lock().expect("trace collector poisoned");
            collector.append(&mut inner.events);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Runs `f` on the thread's buffer; a no-op when the thread-local is
/// already torn down (guards dropped during thread destruction).
fn with_local<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> Option<R> {
    LOCAL.try_with(|local| f(&mut local.borrow_mut())).ok()
}

/// True when a trace is active. One relaxed load — the entire cost of
/// every disabled span site.
#[inline]
pub fn enabled() -> bool {
    TRACE_ID.load(Ordering::Relaxed) != 0
}

/// The active trace id (0 = none): what the transports stamp into wire
/// trace contexts.
#[inline]
pub fn current_trace() -> u64 {
    TRACE_ID.load(Ordering::Relaxed)
}

/// Microseconds on the trace clock: monotonic within the process, offset
/// onto the coordinator's timeline in adopted (worker) processes.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64 + CLOCK_OFFSET_US.load(Ordering::Relaxed)
}

/// Starts a new trace and returns its (non-zero) id, clearing anything a
/// previous trace left in the collector.
pub fn start_trace() -> u64 {
    // splitmix64 over pid + elapsed nanos: unique enough across the
    // processes of one run without any randomness dependency.
    let seed = ((u64::from(std::process::id()) << 32) ^ epoch().elapsed().as_nanos() as u64)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut id = seed;
    id = (id ^ (id >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    id = (id ^ (id >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    id ^= id >> 31;
    let id = id.max(1);
    COLLECTOR.lock().expect("trace collector poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
    CLOCK_OFFSET_US.store(0, Ordering::Relaxed);
    TRACE_ID.store(id, Ordering::Relaxed);
    id
}

/// Joins a trace started by another process (the coordinator):
/// `clock_us` is the coordinator's [`now_us`] at send time, used to
/// offset this process's monotonic clock onto the shared timeline.
pub fn adopt_trace(trace_id: u64, clock_us: u64) {
    if trace_id == 0 {
        return;
    }
    let local_us = epoch().elapsed().as_micros() as u64;
    CLOCK_OFFSET_US.store(clock_us.saturating_sub(local_us), Ordering::Relaxed);
    COLLECTOR.lock().expect("trace collector poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
    TRACE_ID.store(trace_id, Ordering::Relaxed);
}

/// Ends the active trace and returns every collected event, sorted by
/// timestamp. Subsequent span sites are no-ops again.
pub fn end_trace() -> Vec<TraceEvent> {
    let trace = TRACE_ID.swap(0, Ordering::Relaxed);
    let mut events = drain(trace);
    events.sort_by_key(|e| (e.ts_us, e.id));
    events
}

/// Drains everything recorded so far *without* ending the trace — the
/// worker side of a barrier flush.
pub fn take_events() -> Vec<TraceEvent> {
    drain(TRACE_ID.load(Ordering::Relaxed))
}

/// Collects the events of `trace` from every live thread buffer plus
/// the collector.
fn drain(trace: u64) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    if trace != 0 {
        let mut buffers = BUFFERS.lock().expect("trace buffer registry poisoned");
        buffers.retain(|weak| match weak.upgrade() {
            Some(inner) => {
                let mut inner = inner.lock().expect("trace buffer poisoned");
                if inner.trace == trace {
                    out.append(&mut inner.events);
                }
                true
            }
            None => false,
        });
    }
    let mut collector = COLLECTOR.lock().expect("trace collector poisoned");
    out.append(&mut collector);
    out
}

/// Injects events recorded elsewhere (a worker's flushed buffer) into
/// this process's collector so [`end_trace`] returns one merged
/// timeline.
pub fn submit_events(events: Vec<TraceEvent>) {
    if events.is_empty() {
        return;
    }
    let mut collector = COLLECTOR.lock().expect("trace collector poisoned");
    collector.extend(events);
}

/// Events dropped because a thread buffer was full (0 in healthy runs).
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The innermost open span id on the calling thread (0 when none is open
/// or tracing is off) — what a transport stamps into an outgoing trace
/// context as the remote parent.
pub fn current_span() -> u64 {
    let trace = TRACE_ID.load(Ordering::Relaxed);
    if trace == 0 {
        return 0;
    }
    with_local(|local| {
        local.sync_stack(trace);
        local.stack.last().copied().unwrap_or(0)
    })
    .unwrap_or(0)
}

/// An open span. Dropping it records the completed event; the guard from
/// a disabled site is inert.
#[must_use = "a span measures the scope holding it; dropping it immediately records nothing useful"]
pub struct Span {
    name: &'static str,
    trace: u64,
    id: u64,
    parent: u64,
    start_us: u64,
    args: Vec<(String, String)>,
}

impl Span {
    fn noop(name: &'static str) -> Span {
        Span {
            name,
            trace: 0,
            id: 0,
            parent: 0,
            start_us: 0,
            args: Vec::new(),
        }
    }

    /// The span id (0 when tracing is disabled) — what wire trace
    /// contexts carry as the remote parent.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.trace == 0 || TRACE_ID.load(Ordering::Relaxed) != self.trace {
            return;
        }
        let dur_us = now_us().saturating_sub(self.start_us);
        with_local(|local| {
            local.sync_stack(self.trace);
            // Close this span on the stack; out-of-order drops (guards
            // stored in structs) just unwind to the surviving ancestor.
            if let Some(at) = local.stack.iter().rposition(|&id| id == self.id) {
                local.stack.truncate(at);
            }
            let event = TraceEvent {
                name: self.name.to_string(),
                kind: EventKind::Span,
                ts_us: self.start_us,
                dur_us,
                pid: 0,
                tid: local.tid,
                id: self.id,
                parent: self.parent,
                args: std::mem::take(&mut self.args),
            };
            let mut inner = local.inner.lock().expect("trace buffer poisoned");
            inner.push(self.trace, event);
        });
    }
}

fn open_span(
    name: &'static str,
    explicit_parent: Option<u64>,
    args: Vec<(String, String)>,
) -> Span {
    let trace = TRACE_ID.load(Ordering::Relaxed);
    if trace == 0 {
        return Span::noop(name);
    }
    let id = next_span_id();
    let start_us = now_us();
    let parent = with_local(|local| {
        local.sync_stack(trace);
        let parent = local.stack.last().copied().or(explicit_parent).unwrap_or(0);
        local.stack.push(id);
        parent
    })
    .unwrap_or(0);
    Span {
        name,
        trace,
        id,
        parent,
        start_us,
        args,
    }
}

/// Opens a span with no arguments. Prefer the [`span!`](crate::span!)
/// macro, which also skips argument construction when disabled.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::noop(name);
    }
    open_span(name, None, Vec::new())
}

/// Opens a span whose arguments are built lazily — `args` runs only when
/// a trace is active.
pub fn span_args(name: &'static str, args: impl FnOnce() -> Vec<(String, String)>) -> Span {
    if !enabled() {
        return Span::noop(name);
    }
    open_span(name, None, args())
}

/// Opens a span under an explicit parent id when this thread has no open
/// span of its own — how worker processes attach their local spans to
/// the coordinator span that shipped the work.
pub fn span_under(
    name: &'static str,
    parent: u64,
    args: impl FnOnce() -> Vec<(String, String)>,
) -> Span {
    if !enabled() {
        return Span::noop(name);
    }
    open_span(name, Some(parent), args())
}

/// Records a point-in-time event under the current span; `args` runs
/// only when a trace is active. Prefer the [`instant!`](crate::instant!)
/// macro.
pub fn instant_args(name: &'static str, args: impl FnOnce() -> Vec<(String, String)>) {
    let trace = TRACE_ID.load(Ordering::Relaxed);
    if trace == 0 {
        return;
    }
    let ts_us = now_us();
    let args = args();
    with_local(|local| {
        local.sync_stack(trace);
        let parent = local.stack.last().copied().unwrap_or(0);
        let event = TraceEvent {
            name: name.to_string(),
            kind: EventKind::Instant,
            ts_us,
            dur_us: 0,
            pid: 0,
            tid: local.tid,
            id: parent,
            parent,
            args,
        };
        let mut inner = local.inner.lock().expect("trace buffer poisoned");
        inner.push(trace, event);
    });
}

/// Opens a [`Span`] guard: `obs::span!("eval_round")` or
/// `obs::span!("eval_round", node = node, round = i)`. Argument
/// expressions are evaluated (via `ToString`) only while a trace is
/// active.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span_args($name, || {
            vec![$((stringify!($key).to_string(), $value.to_string())),+]
        })
    };
}

/// Records an instant event: `obs::instant!("requeue", node = node)`.
/// Argument expressions are evaluated only while a trace is active.
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::instant_args($name, Vec::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::instant_args($name, || {
            vec![$((stringify!($key).to_string(), $value.to_string())),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The recorder is process-global; tests that start traces must not
    /// overlap.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_sites_record_nothing_and_skip_args() {
        let _gate = serial();
        assert!(!enabled());
        let evaluated = std::cell::Cell::new(false);
        {
            let _span = span_args("quiet", || {
                evaluated.set(true);
                vec![]
            });
            crate::instant!("quiet_instant", x = 1);
        }
        assert!(!evaluated.get(), "args must not be built when disabled");
        start_trace();
        assert!(end_trace().is_empty());
    }

    #[test]
    fn spans_nest_via_parent_ids_and_timestamps() {
        let _gate = serial();
        start_trace();
        {
            let outer = crate::span!("outer");
            let outer_id = outer.id();
            {
                let inner = crate::span!("inner", node = "n0");
                assert_ne!(inner.id(), outer_id);
                crate::instant!("tick");
            }
        }
        let events = end_trace();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, inner.id);
        assert_eq!(tick.kind, EventKind::Instant);
        assert_eq!(inner.args, vec![("node".to_string(), "n0".to_string())]);
        // Temporal containment: the inner span lies within the outer.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
    }

    #[test]
    fn scoped_threads_are_drained_without_relying_on_tls_teardown() {
        let _gate = serial();
        start_trace();
        {
            let _s = crate::span!("main_side");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _s = crate::span!("thread_side");
                    });
                }
            });
        }
        let events = end_trace();
        assert_eq!(events.iter().filter(|e| e.name == "thread_side").count(), 2);
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "three threads, three lanes: {events:?}");
    }

    #[test]
    fn adopted_traces_offset_onto_the_coordinator_clock() {
        let _gate = serial();
        // Pretend the coordinator clock is far ahead of ours.
        let far_ahead = now_us() + 5_000_000;
        adopt_trace(42, far_ahead);
        assert_eq!(current_trace(), 42);
        let worker_span = crate::span!("worker_side");
        drop(worker_span);
        let events = end_trace();
        assert!(events[0].ts_us >= far_ahead, "{events:?}");
        // Reset the offset for later tests.
        CLOCK_OFFSET_US.store(0, Ordering::Relaxed);
    }

    #[test]
    fn submitted_events_merge_time_sorted() {
        let _gate = serial();
        start_trace();
        {
            let _s = crate::span!("local");
        }
        submit_events(vec![TraceEvent {
            name: "remote".to_string(),
            kind: EventKind::Span,
            ts_us: 0,
            dur_us: 1,
            pid: 2,
            tid: 1,
            id: 7,
            parent: 0,
            args: vec![],
        }]);
        let events = end_trace();
        assert_eq!(events.first().map(|e| e.name.as_str()), Some("remote"));
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn full_buffers_drop_and_count_instead_of_growing() {
        let _gate = serial();
        start_trace();
        for _ in 0..(LOCAL_CAPACITY + 10) {
            crate::instant!("flood");
        }
        assert_eq!(dropped_events(), 10);
        let events = end_trace();
        assert_eq!(events.len(), LOCAL_CAPACITY);
    }

    #[test]
    fn take_events_keeps_the_trace_alive() {
        let _gate = serial();
        start_trace();
        {
            let _s = crate::span!("first");
        }
        let first = take_events();
        assert_eq!(first.len(), 1);
        assert!(enabled(), "take_events must not end the trace");
        {
            let _s = crate::span!("second");
        }
        let rest = end_trace();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "second");
    }

    #[test]
    fn span_ids_carry_the_process_tag() {
        let pid_tag = u64::from(std::process::id()) << 40;
        assert_eq!(next_span_id() & !0xff_ffff, pid_tag);
    }
}
