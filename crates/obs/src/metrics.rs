//! The metrics half: named [`Counter`]s and [`Histogram`]s behind a
//! [`Registry`].
//!
//! A registry is an *instance*, not a process global: each transport or
//! engine owns one (usually behind an [`Arc`]), hands counter handles to
//! the components it instruments, and reads them back for reports. Two
//! engines running side by side — the normal situation under `cargo
//! test` — therefore never pollute each other's counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared monotonically-increasing counter. Cloning yields another
/// handle onto the same underlying value, so a component can hold the
/// handle while the registry (and its reports) read the same number —
/// one source of truth.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere — for components that work
    /// standalone but can be handed registry-backed handles instead.
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How many samples a histogram retains for quantile estimation. Beyond
/// this, the reservoir becomes a ring over the most recent samples —
/// `count`/`sum`/`min`/`max` stay exact over everything ever recorded,
/// the quantiles describe the trailing window.
const RESERVOIR_CAPACITY: usize = 4096;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Retained samples for quantiles: a ring buffer over the most recent
    /// [`RESERVOIR_CAPACITY`] recordings (see the constant's docs).
    samples: Mutex<Vec<u64>>,
    /// Ring cursor into `samples` once the reservoir is full.
    cursor: AtomicU64,
}

/// A shared histogram: count/sum/min/max behind four lock-free atomics
/// (exact over every sample), plus a bounded reservoir of recent samples
/// behind a mutex so snapshots can report p50/p90/p99 quantiles.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

/// A point-in-time reading of a [`Histogram`].
///
/// The quantiles are nearest-rank over the retained reservoir (the most
/// recent ≤ [`RESERVOIR_CAPACITY`] samples); with fewer recordings than
/// the capacity they are exact. An empty histogram reads all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median of the retained samples.
    pub p50: u64,
    /// 90th percentile of the retained samples.
    pub p90: u64,
    /// 99th percentile of the retained samples.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
            cursor: AtomicU64::new(0),
        }))
    }
}

/// Nearest-rank quantile (lower interpolation) over a sorted non-empty
/// slice: `p` in percent.
fn quantile(sorted: &[u64], p: u64) -> u64 {
    let index = (sorted.len() as u64 - 1) * p / 100;
    sorted[index as usize]
}

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
        let mut samples = inner.samples.lock().expect("histogram reservoir poisoned");
        if samples.len() < RESERVOIR_CAPACITY {
            samples.push(value);
        } else {
            let at = inner.cursor.fetch_add(1, Ordering::Relaxed) as usize;
            samples[at % RESERVOIR_CAPACITY] = value;
        }
    }

    /// The current count/sum/min/max plus reservoir quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let count = inner.count.load(Ordering::Relaxed);
        let (p50, p90, p99) = {
            let samples = inner.samples.lock().expect("histogram reservoir poisoned");
            if samples.is_empty() {
                (0, 0, 0)
            } else {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                (
                    quantile(&sorted, 50),
                    quantile(&sorted, 90),
                    quantile(&sorted, 99),
                )
            }
        };
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
            p50,
            p90,
            p99,
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.snapshot().mean()
    }
}

/// A named collection of counters and histograms. `counter(name)`
/// returns the existing handle when the name is already registered, so
/// every component asking for `"index_cache_hits"` shares one value.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. The returned handle stays live after the registry is gone.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().expect("metrics registry poisoned");
        counters.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, creating it empty on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.histograms.lock().expect("metrics registry poisoned");
        histograms.entry(name.to_string()).or_default().clone()
    }

    /// Current value of the counter under `name` (0 when absent — an
    /// unregistered counter has never been incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        let counters = self.counters.lock().expect("metrics registry poisoned");
        counters.get(name).map(Counter::get).unwrap_or(0)
    }

    /// A snapshot of every counter, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let counters = self.counters.lock().expect("metrics registry poisoned");
        counters
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// A snapshot of every histogram, sorted by name.
    pub fn histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        let histograms = self.histograms.lock().expect("metrics registry poisoned");
        histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_value() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter_value("hits"), 3);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.counter_value("absent"), 0);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let registry = Registry::new();
        let h = registry.histogram("wait_us");
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(10);
        h.record(4);
        h.record(7);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 21);
        assert_eq!(snap.min, 4);
        assert_eq!(snap.max, 10);
        assert_eq!(h.mean(), 7);
    }

    #[test]
    fn quantiles_use_nearest_rank_over_all_samples() {
        let h = Histogram::detached();
        for value in 1..=100 {
            h.record(value);
        }
        let snap = h.snapshot();
        // (len - 1) * p / 100 over the sorted values 1..=100.
        assert_eq!(snap.p50, 50);
        assert_eq!(snap.p90, 90);
        assert_eq!(snap.p99, 99);
        assert_eq!(snap.max, 100);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.max);
    }

    #[test]
    fn quantiles_of_single_sample_collapse_to_it() {
        let h = Histogram::detached();
        h.record(42);
        let snap = h.snapshot();
        assert_eq!((snap.p50, snap.p90, snap.p99), (42, 42, 42));
    }

    #[test]
    fn reservoir_keeps_only_recent_samples_but_exact_totals() {
        let h = Histogram::detached();
        // Overfill the reservoir: the first RESERVOIR_CAPACITY zeros are
        // overwritten by the trailing ones, so quantiles see only ones
        // while count/sum stay exact.
        for _ in 0..RESERVOIR_CAPACITY {
            h.record(0);
        }
        for _ in 0..RESERVOIR_CAPACITY {
            h.record(1);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 2 * RESERVOIR_CAPACITY as u64);
        assert_eq!(snap.sum, RESERVOIR_CAPACITY as u64);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.p50, 1);
        assert_eq!(snap.p99, 1);
    }

    #[test]
    fn registries_are_isolated_instances() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("n").inc();
        assert_eq!(a.counter_value("n"), 1);
        assert_eq!(b.counter_value("n"), 0);
    }

    #[test]
    fn snapshots_list_everything_by_name() {
        let registry = Registry::new();
        registry.counter("b").add(2);
        registry.counter("a").inc();
        registry.histogram("h").record(5);
        let counters = registry.counters();
        assert_eq!(
            counters.keys().collect::<Vec<_>>(),
            vec![&"a".to_string(), &"b".to_string()]
        );
        assert_eq!(counters["a"], 1);
        assert_eq!(registry.histograms()["h"].sum, 5);
    }

    #[test]
    fn counters_survive_concurrent_increments() {
        let registry = Registry::new();
        let counter = registry.counter("races");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter_value("races"), 4000);
    }
}
