//! Observability substrate for the `pcq` workspace: lightweight tracing
//! spans and a unified metrics registry, with **zero dependencies** so
//! every other crate — down to the innermost evaluator loops — can
//! depend on it without cycles or build-cost.
//!
//! ## Two halves
//!
//! * [`trace`] — a process-global span recorder. When a trace is active
//!   ([`start_trace`]), [`span!`] guards and [`instant!`] events are
//!   written to per-thread buffers with monotonic microsecond
//!   timestamps and collected into one timeline ([`end_trace`]). When no
//!   trace is active the entire API is a no-op behind a single relaxed
//!   atomic load — cheap enough to leave in the hottest seams.
//!   Cross-process runs adopt the coordinator's trace id and clock
//!   ([`adopt_trace`]), record locally, and ship their events back
//!   ([`take_events`] / [`submit_events`]).
//! * [`metrics`] — [`Registry`], [`Counter`] and [`Histogram`]: shared
//!   atomic handles registered under stable names. A registry instance
//!   (not a process global) is owned by each transport/engine so
//!   parallel tests never observe each other's counts.
//!
//! The span model is deliberately tiny: complete spans (name, start,
//! duration, id, parent id) and instant events, each with optional
//! string key/value arguments. That is exactly what the Chrome
//! trace-event format needs and what the `pcq-analyze trace` rollups
//! consume; anything richer belongs in the exporter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Histogram, HistogramSnapshot, Registry};
pub use trace::{
    adopt_trace, current_span, current_trace, dropped_events, enabled, end_trace, instant_args,
    now_us, span, span_args, span_under, start_trace, submit_events, take_events, EventKind, Span,
    TraceEvent,
};
