//! Graph 3-colorability → condition (C3) (Propositions D.1 and D.2).
//!
//! Proposition 5.4 shows NP-hardness of deciding condition (C3) — and hence
//! of transferability for strongly minimal queries and of
//! parallel-correctness for Hypercube families — by two reductions from
//! graph 3-colorability:
//!
//! * [`three_col_to_c3_acyclic_q`] (Prop. D.1) encodes the input graph in
//!   `Q'` and the valid colorings in an *acyclic* `Q`,
//! * [`three_col_to_c3_acyclic_q_prime`] (Prop. D.2) encodes the graph in
//!   `Q` and keeps `Q'` acyclic, using edge labels and "free" atoms.
//!
//! In both cases the graph is 3-colorable if and only if condition (C3)
//! holds for the produced pair `(Q, Q')`.

use cq::{Atom, ConjunctiveQuery, Variable};

use crate::graphs::Graph;

/// The output of a 3-colorability reduction: the query pair `(Q, Q')`.
#[derive(Clone, Debug)]
pub struct C3Reduction {
    /// The query `Q` (the "color side" for D.1, the "graph side" for D.2).
    pub from: ConjunctiveQuery,
    /// The query `Q'`.
    pub to: ConjunctiveQuery,
}

fn color_vars() -> [Variable; 3] {
    [Variable::new("r"), Variable::new("g"), Variable::new("b")]
}

fn vertex_var(v: usize) -> Variable {
    Variable::indexed("u", v)
}

fn label_var(i: usize) -> Variable {
    Variable::indexed("z", i + 1)
}

fn free_var(edge: usize, i: usize) -> Variable {
    Variable::new(&format!("w{edge}_{i}"))
}

/// All ordered pairs of distinct colors (the set `EC`).
fn color_pairs() -> Vec<(Variable, Variable)> {
    let [r, g, b] = color_vars();
    vec![(r, g), (g, r), (r, b), (b, r), (g, b), (b, g)]
}

/// Proposition D.1: the graph is encoded in `Q'`, the valid color
/// assignments in the acyclic query `Q`.
///
/// `G` is 3-colorable iff condition (C3) holds for the returned pair.
pub fn three_col_to_c3_acyclic_q(graph: &Graph) -> C3Reduction {
    let [r, g, b] = color_vars();

    // Q: () :- E(c, d) for all (c, d) ∈ EC, Fix(r, g, b).
    // The Fix atom is listed first: it pins the color variables early, which
    // keeps the (C3) searches fast without changing the (set) semantics.
    let mut from_body = vec![Atom::new("Fix", vec![r, g, b])];
    for (c, d) in color_pairs() {
        from_body.push(Atom::new("E", vec![c, d]));
    }
    let from = ConjunctiveQuery::new(Atom::new("Ans", vec![]), from_body)
        .expect("the D.1 color query is well-formed");

    // Q': () :- E(x, y) for all (x, y) ∈ E, E(c, d) for all (c, d) ∈ EC, Fix(r, g, b).
    let mut to_body = vec![Atom::new("Fix", vec![r, g, b])];
    for (c, d) in color_pairs() {
        to_body.push(Atom::new("E", vec![c, d]));
    }
    for &(u, v) in graph.edges() {
        to_body.push(Atom::new("E", vec![vertex_var(u), vertex_var(v)]));
    }
    let to = ConjunctiveQuery::new(Atom::new("Ans", vec![]), to_body)
        .expect("the D.1 graph query is well-formed");

    C3Reduction { from, to }
}

/// Proposition D.2: the graph is encoded in `Q` (with edge labels and free
/// atoms), and `Q'` is acyclic.
///
/// `G` is 3-colorable iff condition (C3) holds for the returned pair.
/// The construction requires at least two edges (the Fix-chain of the paper
/// is empty otherwise).
pub fn three_col_to_c3_acyclic_q_prime(graph: &Graph) -> C3Reduction {
    let m = graph.edges().len();
    assert!(m >= 2, "the D.2 reduction requires at least two edges");
    let [r, g, b] = color_vars();

    let fix_chain: Vec<Atom> = (0..m - 1)
        .map(|i| Atom::new("Fix", vec![label_var(i), label_var(i + 1), r, g, b]))
        .collect();

    // Q': () :- E(z, c, d) for every label z and (c, d) ∈ EC, plus the Fix chain.
    let mut to_body = fix_chain.clone();
    for i in 0..m {
        for (c, d) in color_pairs() {
            to_body.push(Atom::new("E", vec![label_var(i), c, d]));
        }
    }
    let to = ConjunctiveQuery::new(Atom::new("Ans", vec![]), to_body)
        .expect("the D.2 Q' query is well-formed");

    // Q: () :- E(ℓ(x,y), x, y) for every edge, five free E-atoms per label,
    //          plus the Fix chain.
    let mut from_body = fix_chain;
    for (i, &(u, v)) in graph.edges().iter().enumerate() {
        from_body.push(Atom::new(
            "E",
            vec![label_var(i), vertex_var(u), vertex_var(v)],
        ));
    }
    for i in 0..m {
        for j in [1usize, 3, 5, 7, 9] {
            from_body.push(Atom::new(
                "E",
                vec![label_var(i), free_var(i, j), free_var(i, j + 1)],
            ));
        }
    }
    let from = ConjunctiveQuery::new(Atom::new("Ans", vec![]), from_body)
        .expect("the D.2 Q query is well-formed");

    C3Reduction { from, to }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::is_acyclic;
    use pc_core::holds_c3;

    #[test]
    fn d1_shapes_and_acyclicity() {
        let g = Graph::cycle(3);
        let red = three_col_to_c3_acyclic_q(&g);
        assert!(is_acyclic(&red.from), "Q of D.1 must be acyclic");
        assert_eq!(red.from.body_size(), 7);
        assert_eq!(red.to.body_size(), 7 + 3);
        assert!(red.from.is_boolean() && red.to.is_boolean());
    }

    #[test]
    fn d1_colorable_graphs_satisfy_c3() {
        for g in [Graph::cycle(3), Graph::cycle(5), Graph::complete(3)] {
            assert!(g.is_three_colorable());
            let red = three_col_to_c3_acyclic_q(&g);
            assert!(
                holds_c3(&red.from, &red.to),
                "C3 must hold for a 3-colorable graph"
            );
        }
    }

    #[test]
    fn d1_non_colorable_graphs_violate_c3() {
        let k4 = Graph::complete(4);
        assert!(!k4.is_three_colorable());
        let red = three_col_to_c3_acyclic_q(&k4);
        assert!(!holds_c3(&red.from, &red.to));

        // K4 plus an extra pendant edge stays non-colorable.
        let mut k4p = Graph::from_edges(5, Graph::complete(4).edges());
        k4p.add_edge(3, 4);
        let red2 = three_col_to_c3_acyclic_q(&k4p);
        assert!(!holds_c3(&red2.from, &red2.to));
    }

    #[test]
    fn d1_agreement_with_the_coloring_oracle_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        for n in [4usize, 5] {
            for p in [0.4, 0.8] {
                let g = Graph::random(&mut rng, n, p);
                let red = three_col_to_c3_acyclic_q(&g);
                assert_eq!(
                    g.is_three_colorable(),
                    holds_c3(&red.from, &red.to),
                    "D.1 disagrees with the coloring oracle on {g:?}"
                );
            }
        }
    }

    #[test]
    fn d2_shapes_and_acyclicity() {
        let g = Graph::cycle(3);
        let red = three_col_to_c3_acyclic_q_prime(&g);
        assert!(is_acyclic(&red.to), "Q' of D.2 must be acyclic");
        let m = 3;
        // Q': 6 E-atoms per label + (m-1) Fix atoms
        assert_eq!(red.to.body_size(), 6 * m + (m - 1));
        // Q: one edge atom per edge + 5 free atoms per label + (m-1) Fix atoms
        assert_eq!(red.from.body_size(), m + 5 * m + (m - 1));
    }

    #[test]
    fn d2_colorable_path_satisfies_c3() {
        // A path with two edges is 3-colorable.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.is_three_colorable());
        let red = three_col_to_c3_acyclic_q_prime(&g);
        assert!(holds_c3(&red.from, &red.to));
    }

    #[test]
    fn d2_requires_at_least_two_edges() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let result = std::panic::catch_unwind(|| three_col_to_c3_acyclic_q_prime(&g));
        assert!(result.is_err());
    }
}
