//! 3-SAT → non-strong-minimality (Lemma C.9).
//!
//! Given a propositional 3-CNF formula `ϕ`, the reduction builds a
//! conjunctive query `Q_ϕ` such that `ϕ` is satisfiable if and only if `Q_ϕ`
//! is **not** strongly minimal. Together with the matching upper bound this
//! shows coNP-completeness of deciding strong minimality (Lemma 4.10).

use cq::{Atom, ConjunctiveQuery, Variable};
use logic::{Cnf, Literal};

fn w1() -> Variable {
    Variable::new("w1")
}

fn w0() -> Variable {
    Variable::new("w0")
}

fn pos_var(v: usize) -> Variable {
    Variable::indexed("v", v)
}

fn neg_var(v: usize) -> Variable {
    Variable::indexed("nv", v)
}

fn r0() -> Variable {
    Variable::new("r0")
}

fn r1() -> Variable {
    Variable::new("r1")
}

fn clause_relation(j: usize) -> String {
    format!("C{j}")
}

/// The pair of variables representing a literal: `(x, x̄)` for a positive
/// literal, `(x̄, x)` for a negative one.
fn rep(lit: Literal) -> (Variable, Variable) {
    if lit.positive {
        (pos_var(lit.var), neg_var(lit.var))
    } else {
        (neg_var(lit.var), pos_var(lit.var))
    }
}

/// The 6-tuples over `{w1, w0}` encoding satisfying truth assignments of a
/// three-way disjunction (`U⁺`): each literal is a pair `(w1, w0)` (true) or
/// `(w0, w1)` (false), and the all-false tuple is excluded.
fn u_plus() -> Vec<[Variable; 6]> {
    let mut out = Vec::new();
    for mask in 0u8..8 {
        if mask == 0 {
            continue; // the all-false assignment
        }
        let pair = |bit: bool| if bit { (w1(), w0()) } else { (w0(), w1()) };
        let (a, ab) = pair(mask & 1 != 0);
        let (b, bb) = pair(mask & 2 != 0);
        let (c, cb) = pair(mask & 4 != 0);
        out.push([a, ab, b, bb, c, cb]);
    }
    out
}

/// Builds the query `Q_ϕ` of Lemma C.9 for a 3-CNF formula.
///
/// `ϕ` is satisfiable if and only if the returned query is not strongly
/// minimal.
pub fn sat_to_strong_minimality(cnf: &Cnf) -> ConjunctiveQuery {
    assert!(cnf.is_3cnf(), "the reduction expects a 3-CNF formula");

    // Head: H(w1, w0, x1, x̄1, …, xm, x̄m).
    let mut head_args = vec![w1(), w0()];
    for g in 0..cnf.num_vars {
        head_args.push(pos_var(g));
        head_args.push(neg_var(g));
    }
    let head = Atom::new("H", head_args);

    let mut body = Vec::new();
    // Values: the two Val-atoms over the non-head variables r0, r1.
    body.push(Atom::new("Val", vec![r0(), r1()]));
    body.push(Atom::new("Val", vec![r1(), r0()]));
    // Cons: for every clause, all satisfying 6-tuples prefixed by (w1, w0).
    for j in 0..cnf.clauses.len() {
        for tuple in u_plus() {
            let mut args = vec![w1(), w0()];
            args.extend(tuple);
            body.push(Atom::new(clause_relation(j).as_str(), args));
        }
    }
    // Struct(ϕ): the actual clauses, prefixed by (r1, r0).
    for (j, clause) in cnf.clauses.iter().enumerate() {
        let mut args = vec![r1(), r0()];
        for &lit in &clause.literals {
            let (a, b) = rep(lit);
            args.push(a);
            args.push(b);
        }
        body.push(Atom::new(clause_relation(j).as_str(), args));
    }
    ConjunctiveQuery::new(head, body).expect("the reduction query is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{dpll_satisfiable, Clause};
    use pc_core::is_strongly_minimal;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause::new(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    #[test]
    fn reduction_shape_matches_the_paper() {
        let cnf = Cnf::new(2, vec![clause(&[(0, true), (1, false), (0, false)])]);
        let query = sat_to_strong_minimality(&cnf);
        // head: w1, w0 plus two variables per propositional variable
        assert_eq!(query.head().arity(), 2 + 2 * 2);
        // body: 2 Val atoms + 7 Cons atoms per clause + 1 Struct atom per clause
        assert_eq!(query.body_size(), 2 + 7 + 1);
        // exactly two non-head variables (r0 and r1)
        assert_eq!(query.existential_variables().len(), 2);
    }

    #[test]
    fn satisfiable_formula_gives_non_strongly_minimal_query() {
        // (x0 ∨ x1 ∨ x1) ∧ (¬x0 ∨ x1 ∨ x1): satisfiable (x1 = true).
        let cnf = Cnf::new(
            2,
            vec![
                clause(&[(0, true), (1, true), (1, true)]),
                clause(&[(0, false), (1, true), (1, true)]),
            ],
        );
        assert!(dpll_satisfiable(&cnf));
        let query = sat_to_strong_minimality(&cnf);
        assert!(!is_strongly_minimal(&query));
    }

    #[test]
    fn unsatisfiable_formula_gives_strongly_minimal_query() {
        // All four sign patterns over a single variable (padded to width 3):
        // unsatisfiable.
        let cnf = Cnf::new(
            1,
            vec![
                clause(&[(0, true), (0, true), (0, true)]),
                clause(&[(0, false), (0, false), (0, false)]),
            ],
        );
        assert!(!dpll_satisfiable(&cnf));
        let query = sat_to_strong_minimality(&cnf);
        assert!(is_strongly_minimal(&query));
    }

    #[test]
    fn random_small_formulas_agree_with_the_sat_oracle() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..4 {
            let num_vars = 2;
            let num_clauses = 2 + rng.gen_range(0..2);
            let clauses = (0..num_clauses)
                .map(|_| {
                    Clause::new(
                        (0..3)
                            .map(|_| Literal {
                                var: rng.gen_range(0..num_vars),
                                positive: rng.gen_bool(0.5),
                            })
                            .collect(),
                    )
                })
                .collect();
            let cnf = Cnf::new(num_vars, clauses);
            let query = sat_to_strong_minimality(&cnf);
            assert_eq!(
                dpll_satisfiable(&cnf),
                !is_strongly_minimal(&query),
                "reduction disagrees with the SAT oracle on {cnf}"
            );
        }
    }
}
