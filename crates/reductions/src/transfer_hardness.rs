//! Π₃-QBF → parallel-correctness transfer (Proposition C.6).
//!
//! Given `ϕ = ∀x ∃y ∀z ψ(x, y, z)` with `ψ` in 3-DNF, the reduction builds a
//! pair `(Q_ϕ, Q'_ϕ)` of conjunctive queries such that `ϕ` is true if and
//! only if parallel-correctness transfers from `Q_ϕ` to `Q'_ϕ`.
//!
//! `Q_ϕ` encodes a Boolean circuit evaluating `ψ` (Neg/And/Or gate relations
//! plus a clause/disjunction chain), `Q'_ϕ` forces a truth assignment for the
//! `x` block and demands a positive result (`Res(w1)`).

use cq::{Atom, ConjunctiveQuery, Variable};
use logic::{Literal, Pi3Qbf};

/// The output of the Π₃-QBF reduction: the pair of queries.
#[derive(Clone, Debug)]
pub struct Pi3Reduction {
    /// The query `Q_ϕ` parallel-correctness transfers *from*.
    pub from: ConjunctiveQuery,
    /// The query `Q'_ϕ` parallel-correctness transfers *to*.
    pub to: ConjunctiveQuery,
}

fn w1() -> Variable {
    Variable::new("w1")
}

fn w0() -> Variable {
    Variable::new("w0")
}

fn pos_var(v: usize) -> Variable {
    Variable::indexed("v", v)
}

fn neg_var(v: usize) -> Variable {
    Variable::indexed("nv", v)
}

fn literal_var(lit: Literal) -> Variable {
    if lit.positive {
        pos_var(lit.var)
    } else {
        neg_var(lit.var)
    }
}

fn s_var(j: usize) -> Variable {
    Variable::indexed("s", j)
}

fn r_var(j: usize) -> Variable {
    Variable::indexed("r", j)
}

fn yval_relation(h: usize) -> String {
    format!("YVal{h}")
}

fn xval_relation(g: usize) -> String {
    format!("XVal{g}")
}

/// The `Fix` atoms shared by both queries: they pin the truth values of the
/// head variables `x_g`, `w1` and `w0`.
fn fix_atoms(qbf: &Pi3Qbf) -> Vec<Atom> {
    let mut out = Vec::new();
    for (g, &xv) in qbf.x_vars.iter().enumerate() {
        out.push(Atom::new(xval_relation(g).as_str(), vec![pos_var(xv)]));
    }
    out.push(Atom::new("True", vec![w1()]));
    out.push(Atom::new("False", vec![w0()]));
    out
}

/// The consistent gate atoms over `{w0, w1}` (the `Gates` set).
fn gate_atoms() -> Vec<Atom> {
    let tv = |b: bool| if b { w1() } else { w0() };
    let mut out = vec![
        Atom::new("Neg", vec![w0(), w1()]),
        Atom::new("Neg", vec![w1(), w0()]),
    ];
    // 3-input And gates: output is the conjunction of the inputs.
    for mask in 0u8..8 {
        let a = mask & 1 != 0;
        let b = mask & 2 != 0;
        let c = mask & 4 != 0;
        out.push(Atom::new("And", vec![tv(a), tv(b), tv(c), tv(a && b && c)]));
    }
    // Binary Or gates.
    for mask in 0u8..4 {
        let a = mask & 1 != 0;
        let b = mask & 2 != 0;
        out.push(Atom::new("Or", vec![tv(a), tv(b), tv(a || b)]));
    }
    out
}

/// The `Circuit` atoms of `Q_ϕ`: negation links for every matrix variable,
/// one And-gate per DNF term and the Or-chain accumulating the disjunction.
fn circuit_atoms(qbf: &Pi3Qbf) -> Vec<Atom> {
    let mut out = Vec::new();
    for &u in qbf
        .x_vars
        .iter()
        .chain(qbf.y_vars.iter())
        .chain(qbf.z_vars.iter())
    {
        out.push(Atom::new("Neg", vec![pos_var(u), neg_var(u)]));
    }
    for (j, term) in qbf.matrix.terms.iter().enumerate() {
        let mut args: Vec<Variable> = term.literals.iter().map(|&l| literal_var(l)).collect();
        args.push(s_var(j + 1));
        out.push(Atom::new("And", args));
    }
    let k = qbf.matrix.terms.len();
    if k > 0 {
        out.push(Atom::new("Or", vec![s_var(1), s_var(1), r_var(1)]));
        for j in 2..=k {
            out.push(Atom::new("Or", vec![r_var(j - 1), s_var(j), r_var(j)]));
        }
    }
    out
}

/// Builds the pair `(Q_ϕ, Q'_ϕ)` of Proposition C.6.
pub fn pi3_to_transfer(qbf: &Pi3Qbf) -> Pi3Reduction {
    assert!(qbf.matrix.is_3dnf(), "the reduction expects a 3-DNF matrix");
    assert!(
        !qbf.matrix.terms.is_empty(),
        "the reduction expects at least one DNF term"
    );
    let k = qbf.matrix.terms.len();

    // Q'_ϕ: head H(x₁, …, x_m, w1, w0).
    let mut to_head_args: Vec<Variable> = qbf.x_vars.iter().map(|&g| pos_var(g)).collect();
    to_head_args.push(w1());
    to_head_args.push(w0());
    let mut to_body = Vec::new();
    for h in 0..qbf.y_vars.len() {
        to_body.push(Atom::new(yval_relation(h).as_str(), vec![w1()]));
        to_body.push(Atom::new(yval_relation(h).as_str(), vec![w0()]));
    }
    to_body.push(Atom::new("Res", vec![w1()]));
    to_body.extend(fix_atoms(qbf));
    let to = ConjunctiveQuery::new(Atom::new("H", to_head_args), to_body)
        .expect("Q' of the Π₃ reduction is well-formed");

    // Q_ϕ: head H(x₁, …, x_m, y₁, …, y_n, w1, w0).
    let mut from_head_args: Vec<Variable> = qbf.x_vars.iter().map(|&g| pos_var(g)).collect();
    from_head_args.extend(qbf.y_vars.iter().map(|&h| pos_var(h)));
    from_head_args.push(w1());
    from_head_args.push(w0());
    let mut from_body = Vec::new();
    for (h, &yv) in qbf.y_vars.iter().enumerate() {
        from_body.push(Atom::new(yval_relation(h).as_str(), vec![pos_var(yv)]));
        from_body.push(Atom::new(yval_relation(h).as_str(), vec![neg_var(yv)]));
    }
    from_body.push(Atom::new("Res", vec![w0()]));
    from_body.push(Atom::new("Res", vec![r_var(k)]));
    from_body.extend(fix_atoms(qbf));
    from_body.extend(gate_atoms());
    from_body.extend(circuit_atoms(qbf));
    let from = ConjunctiveQuery::new(Atom::new("H", from_head_args), from_body)
        .expect("Q of the Π₃ reduction is well-formed");

    Pi3Reduction { from, to }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{Clause, Dnf};
    use pc_core::check_transfer;

    fn term(lits: &[(usize, bool)]) -> Clause {
        Clause::new(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    /// ∀x0 ∃y(=x1) ∀z(=x2): (x1 ∧ x1 ∧ x1) ∨ (¬x1 ∧ ¬x1 ∧ ¬x1) — true.
    fn true_formula() -> Pi3Qbf {
        Pi3Qbf::new(
            vec![0],
            vec![1],
            vec![2],
            Dnf::new(
                3,
                vec![
                    term(&[(1, true), (1, true), (1, true)]),
                    term(&[(1, false), (1, false), (1, false)]),
                ],
            ),
        )
    }

    /// ∀x0 ∃x1 ∀x2: (x2 ∧ x2 ∧ x2) — false (z = false).
    fn false_formula() -> Pi3Qbf {
        Pi3Qbf::new(
            vec![0],
            vec![1],
            vec![2],
            Dnf::new(3, vec![term(&[(2, true), (2, true), (2, true)])]),
        )
    }

    /// ∀x0 ∃x1 ∀x2: (x0 ∧ x1 ∧ x2) — false (e.g. x0 = false).
    fn false_formula_2() -> Pi3Qbf {
        Pi3Qbf::new(
            vec![0],
            vec![1],
            vec![2],
            Dnf::new(3, vec![term(&[(0, true), (1, true), (2, true)])]),
        )
    }

    /// ∀x0 ∃x1 ∀x2: (x1 ∧ x1 ∧ x1) — true (choose y = true; z irrelevant).
    fn true_formula_2() -> Pi3Qbf {
        Pi3Qbf::new(
            vec![0],
            vec![1],
            vec![2],
            Dnf::new(3, vec![term(&[(1, true), (1, true), (1, true)])]),
        )
    }

    #[test]
    fn reduction_shapes_are_as_in_the_paper() {
        let qbf = true_formula();
        let red = pi3_to_transfer(&qbf);
        // Q' head: x-block + w1 + w0; Q head: x-block + y-block + w1 + w0.
        assert_eq!(red.to.head().arity(), 1 + 2);
        assert_eq!(red.from.head().arity(), 1 + 1 + 2);
        // Q' body: 2 per y-variable + Res + |x| XVal + True + False.
        assert_eq!(red.to.body_size(), 2 + 1 + 1 + 2);
        // Q body contains the 14 gate atoms and the circuit.
        assert!(red.from.body_size() > 14);
        assert!(red
            .from
            .body()
            .iter()
            .any(|a| a.relation == cq::Symbol::new("And")));
    }

    #[test]
    fn true_formulas_transfer() {
        for qbf in [true_formula(), true_formula_2()] {
            assert!(qbf.is_true());
            let red = pi3_to_transfer(&qbf);
            assert!(
                check_transfer(&red.from, &red.to).transfers(),
                "transfer must hold for a true formula"
            );
        }
    }

    #[test]
    fn false_formulas_do_not_transfer() {
        for qbf in [false_formula(), false_formula_2()] {
            assert!(!qbf.is_true());
            let red = pi3_to_transfer(&qbf);
            assert!(
                !check_transfer(&red.from, &red.to).transfers(),
                "transfer must fail for a false formula"
            );
        }
    }
}
