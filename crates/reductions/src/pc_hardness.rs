//! Π₂-QBF → parallel-correctness (Propositions B.7 and B.8).
//!
//! Given `ϕ = ∀x ∃y ψ(x, y)` with `ψ` in 3-CNF, the reduction builds a query
//! `Q_ϕ`, an instance `I_ϕ` and a two-node policy `P_ϕ` such that `ϕ` is true
//! if and only if `Q_ϕ` is parallel-correct on `I_ϕ` under `P_ϕ` (and if and
//! only if `Q_ϕ` is parallel-correct under `P_ϕ` on all instances
//! `I ⊆ facts(P_ϕ)`).

use cq::{Atom, ConjunctiveQuery, Fact, Instance, Value, Variable};
use distribution::{ExplicitPolicy, Network, Node};
use logic::{Literal, Pi2Qbf};

/// The output of the Π₂-QBF reduction: query, instance and policy.
#[derive(Clone, Debug)]
pub struct Pi2Reduction {
    /// The query `Q_ϕ`.
    pub query: ConjunctiveQuery,
    /// The instance `I_ϕ`.
    pub instance: Instance,
    /// The two-node policy `P_ϕ` (`κ⁺ = n0`, `κ⁻ = n1`).
    pub policy: ExplicitPolicy,
}

fn pos_var(v: usize) -> Variable {
    Variable::indexed("v", v)
}

fn neg_var(v: usize) -> Variable {
    Variable::indexed("nv", v)
}

/// The query variable representing a literal: the positive variable for a
/// positive literal, the "barred" variable for a negated one.
fn literal_var(lit: Literal) -> Variable {
    if lit.positive {
        pos_var(lit.var)
    } else {
        neg_var(lit.var)
    }
}

fn w1() -> Variable {
    Variable::new("w1")
}

fn w0() -> Variable {
    Variable::new("w0")
}

fn clause_relation(j: usize) -> String {
    format!("C{j}")
}

/// All triples over `{w0, w1}` containing at least one `w1` (the set `W⁺`).
fn w_plus() -> Vec<[Variable; 3]> {
    let mut out = Vec::new();
    for mask in 1u8..8 {
        out.push([
            if mask & 1 != 0 { w1() } else { w0() },
            if mask & 2 != 0 { w1() } else { w0() },
            if mask & 4 != 0 { w1() } else { w0() },
        ]);
    }
    out
}

/// All Boolean triples as data values (`B`), and whether they are non-zero.
fn boolean_triples() -> Vec<([Value; 3], bool)> {
    let tv = |b: bool| Value::new(if b { "1" } else { "0" });
    let mut out = Vec::new();
    for mask in 0u8..8 {
        let bits = [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0];
        out.push(([tv(bits[0]), tv(bits[1]), tv(bits[2])], mask != 0));
    }
    out
}

/// Builds the query `Q_ϕ` of Proposition B.7.
fn build_query(qbf: &Pi2Qbf) -> ConjunctiveQuery {
    assert!(qbf.matrix.is_3cnf(), "the reduction expects a 3-CNF matrix");
    let head = Atom::new("H", qbf.x_vars.iter().map(|&g| pos_var(g)).collect());

    // Cons: True/False/Neg consistency atoms.
    let mut body = vec![
        Atom::new("True", vec![w1()]),
        Atom::new("False", vec![w0()]),
        Atom::new("Neg", vec![w1(), w0()]),
        Atom::new("Neg", vec![w0(), w1()]),
    ];
    // Cons: satisfying combinations for every clause relation.
    for j in 0..qbf.matrix.clauses.len() {
        for triple in w_plus() {
            body.push(Atom::new(clause_relation(j).as_str(), triple.to_vec()));
        }
    }
    // Struct(ψ): the Neg-atoms linking every matrix variable to its negation…
    for &g in qbf.x_vars.iter().chain(qbf.y_vars.iter()) {
        body.push(Atom::new("Neg", vec![pos_var(g), neg_var(g)]));
    }
    // …and one atom per clause over the literal variables.
    for (j, clause) in qbf.matrix.clauses.iter().enumerate() {
        body.push(Atom::new(
            clause_relation(j).as_str(),
            clause.literals.iter().map(|&l| literal_var(l)).collect(),
        ));
    }
    ConjunctiveQuery::new(head, body).expect("the reduction query is well-formed")
}

/// Builds the instance `I_ϕ` and the partition `(I⁺, I⁻)` of Proposition B.7.
fn build_instance(qbf: &Pi2Qbf) -> (Instance, Instance, Instance) {
    let one = Value::new("1");
    let zero = Value::new("0");
    let mut plus = Instance::new();
    let mut minus = Instance::new();
    plus.insert(Fact::new("True", vec![one]));
    plus.insert(Fact::new("False", vec![zero]));
    plus.insert(Fact::new("Neg", vec![one, zero]));
    plus.insert(Fact::new("Neg", vec![zero, one]));
    for j in 0..qbf.matrix.clauses.len() {
        for (triple, nonzero) in boolean_triples() {
            let fact = Fact::new(clause_relation(j).as_str(), triple.to_vec());
            if nonzero {
                plus.insert(fact);
            } else {
                minus.insert(fact);
            }
        }
    }
    let all = plus.union(&minus);
    (all, plus, minus)
}

/// The reduction of Proposition B.7: `ϕ ∈ Π₂-QBF` iff `Q_ϕ` is
/// parallel-correct **on `I_ϕ`** under `P_ϕ`.
pub fn pi2_to_pci(qbf: &Pi2Qbf) -> Pi2Reduction {
    let query = build_query(qbf);
    let (instance, plus, minus) = build_instance(qbf);
    let kappa_plus = Node::numbered(0);
    let kappa_minus = Node::numbered(1);
    let mut policy = ExplicitPolicy::new(Network::new([kappa_plus, kappa_minus]));
    for fact in plus.facts() {
        policy.assign(fact.clone(), [kappa_plus]);
    }
    for fact in minus.facts() {
        policy.assign(fact.clone(), [kappa_minus]);
    }
    Pi2Reduction {
        query,
        instance,
        policy,
    }
}

/// The reduction of Proposition B.8: `ϕ ∈ Π₂-QBF` iff `Q_ϕ` is
/// parallel-correct under `P_ϕ` on **all** instances `I ⊆ facts(P_ϕ)`.
///
/// The construction is identical to [`pi2_to_pci`]; only the question asked
/// about the output differs.
pub fn pi2_to_pc(qbf: &Pi2Qbf) -> Pi2Reduction {
    pi2_to_pci(qbf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distribution::DistributionPolicy;
    use logic::{random_pi2_qbf, Clause, Cnf};
    use pc_core::{check_parallel_correctness, check_parallel_correctness_on_instance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause::new(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    /// ∀x0 ∃x1: (x0 ∨ x1 ∨ x1) ∧ (¬x0 ∨ ¬x1 ∨ ¬x1) — true (choose y = ¬x).
    fn true_formula() -> Pi2Qbf {
        Pi2Qbf::new(
            vec![0],
            vec![1],
            Cnf::new(
                2,
                vec![
                    clause(&[(0, true), (1, true), (1, true)]),
                    clause(&[(0, false), (1, false), (1, false)]),
                ],
            ),
        )
    }

    /// ∀x0 ∃x1: (x0 ∨ x0 ∨ x0) — false (x0 = false kills the only clause).
    fn false_formula() -> Pi2Qbf {
        Pi2Qbf::new(
            vec![0],
            vec![1],
            Cnf::new(2, vec![clause(&[(0, true), (0, true), (0, true)])]),
        )
    }

    #[test]
    fn reduction_shapes_are_as_in_the_paper() {
        let qbf = true_formula();
        let red = pi2_to_pci(&qbf);
        // head arity = |x|; body = 4 + 7k (Cons) + (m+n) + k (Struct)
        assert_eq!(red.query.head().arity(), 1);
        let k = 2;
        assert_eq!(red.query.body_size(), 4 + 7 * k + 2 + k);
        // instance: 4 base facts + 8 per clause
        assert_eq!(red.instance.len(), 4 + 8 * k);
        // the policy has exactly two nodes and covers the instance
        assert_eq!(red.policy.network().len(), 2);
        for fact in red.instance.facts() {
            assert_eq!(red.policy.nodes_for(fact).len(), 1);
        }
    }

    #[test]
    fn true_formula_gives_parallel_correct_query() {
        let qbf = true_formula();
        assert!(qbf.is_true());
        let red = pi2_to_pci(&qbf);
        assert!(
            check_parallel_correctness_on_instance(&red.query, &red.policy, &red.instance)
                .is_correct()
        );
        assert!(check_parallel_correctness(&red.query, &red.policy).is_correct());
    }

    #[test]
    fn false_formula_gives_a_violation() {
        let qbf = false_formula();
        assert!(!qbf.is_true());
        let red = pi2_to_pci(&qbf);
        assert!(
            !check_parallel_correctness_on_instance(&red.query, &red.policy, &red.instance)
                .is_correct()
        );
        assert!(!check_parallel_correctness(&red.query, &red.policy).is_correct());
    }

    #[test]
    fn random_formulas_agree_with_the_qbf_oracle() {
        let mut rng = StdRng::seed_from_u64(2015);
        let mut seen_true = 0;
        let mut seen_false = 0;
        for _ in 0..6 {
            let qbf = random_pi2_qbf(&mut rng, 2, 2, 3);
            let expected = qbf.is_true();
            let red = pi2_to_pci(&qbf);
            let pci =
                check_parallel_correctness_on_instance(&red.query, &red.policy, &red.instance)
                    .is_correct();
            let pc = check_parallel_correctness(&red.query, &red.policy).is_correct();
            assert_eq!(pci, expected, "PCI disagrees with the QBF oracle");
            assert_eq!(pc, expected, "PC disagrees with the QBF oracle");
            if expected {
                seen_true += 1;
            } else {
                seen_false += 1;
            }
        }
        // the sample should not be completely one-sided (sanity of the seed)
        assert!(seen_true + seen_false == 6);
    }
}
