//! # reductions — the paper's hardness reductions as instance generators
//!
//! The lower bounds of *"Parallel-Correctness and Transferability for
//! Conjunctive Queries"* (PODS 2015) are proved by reductions from complete
//! problems of the polynomial hierarchy. This crate implements those
//! reductions *forwards*, turning logic/graph instances into
//! conjunctive-query instances:
//!
//! * [`pc_hardness`] — Π₂-QBF → `PCI(Pfin)` / `PC(Pfin)`
//!   (Propositions B.7 and B.8, lower bound of Theorem 3.8),
//! * [`transfer_hardness`] — Π₃-QBF → `pc-trans`
//!   (Proposition C.6, lower bound of Theorem 4.3),
//! * [`strongmin_hardness`] — 3-SAT → non-strong-minimality
//!   (Lemma C.9, lower bound of Lemma 4.10),
//! * [`c3_hardness`] — graph 3-colorability → condition (C3) with an acyclic
//!   `Q` or an acyclic `Q'` (Propositions D.1 and D.2, Proposition 5.4),
//! * [`graphs`] — the undirected-graph substrate (random graphs and an exact
//!   3-coloring solver) used by the colorability reductions.
//!
//! Because the source problems are decided exactly by the `logic` crate and
//! by [`graphs::Graph::is_three_colorable`], every reduction doubles as a
//! correctness oracle for the decision procedures in `pc-core`: the tests and
//! the benchmark harness check that both sides always agree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c3_hardness;
pub mod graphs;
pub mod pc_hardness;
pub mod strongmin_hardness;
pub mod transfer_hardness;

pub use c3_hardness::{three_col_to_c3_acyclic_q, three_col_to_c3_acyclic_q_prime};
pub use graphs::Graph;
pub use pc_hardness::{pi2_to_pc, pi2_to_pci, Pi2Reduction};
pub use strongmin_hardness::sat_to_strong_minimality;
pub use transfer_hardness::pi3_to_transfer;
