//! Undirected graphs and an exact 3-coloring solver.

use rand::Rng;

/// A simple undirected graph over vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    vertices: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// The graph with `vertices` vertices and no edges.
    pub fn new(vertices: usize) -> Graph {
        Graph {
            vertices,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(vertices: usize, edges: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(vertices);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}` (self-loops and duplicates ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.vertices && v < self.vertices,
            "vertex out of range"
        );
        if u == v {
            return;
        }
        let (a, b) = (u.min(v), u.max(v));
        if !self.edges.contains(&(a, b)) {
            self.edges.push((a, b));
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// The edges, each as `(min, max)`, in insertion order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// An Erdős–Rényi random graph `G(n, p)`.
    pub fn random<R: Rng>(rng: &mut R, vertices: usize, edge_probability: f64) -> Graph {
        let mut g = Graph::new(vertices);
        for u in 0..vertices {
            for v in (u + 1)..vertices {
                if rng.gen_bool(edge_probability) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The cycle on `n` vertices.
    pub fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// The complete graph on `n` vertices.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Finds a proper 3-coloring by backtracking, if one exists.
    pub fn find_three_coloring(&self) -> Option<Vec<u8>> {
        let mut colors = vec![3u8; self.vertices]; // 3 = uncolored
        if self.color_rec(0, &mut colors) {
            Some(colors)
        } else {
            None
        }
    }

    fn color_rec(&self, vertex: usize, colors: &mut Vec<u8>) -> bool {
        if vertex == self.vertices {
            return true;
        }
        for c in 0..3u8 {
            if self
                .edges
                .iter()
                .filter(|&&(u, v)| u == vertex || v == vertex)
                .all(|&(u, v)| {
                    let other = if u == vertex { v } else { u };
                    colors[other] != c
                })
            {
                colors[vertex] = c;
                if self.color_rec(vertex + 1, colors) {
                    return true;
                }
                colors[vertex] = 3;
            }
        }
        false
    }

    /// Whether the graph admits a proper 3-coloring.
    pub fn is_three_colorable(&self) -> bool {
        self.find_three_coloring().is_some()
    }

    /// Whether `coloring` is a proper coloring (adjacent vertices differ).
    pub fn is_proper_coloring(&self, coloring: &[u8]) -> bool {
        coloring.len() == self.vertices
            && self.edges.iter().all(|&(u, v)| coloring[u] != coloring[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_is_three_colorable() {
        let g = Graph::cycle(3);
        let coloring = g.find_three_coloring().unwrap();
        assert!(g.is_proper_coloring(&coloring));
    }

    #[test]
    fn k4_is_not_three_colorable() {
        assert!(!Graph::complete(4).is_three_colorable());
        assert!(Graph::complete(3).is_three_colorable());
    }

    #[test]
    fn odd_and_even_cycles() {
        assert!(Graph::cycle(4).is_three_colorable());
        assert!(Graph::cycle(5).is_three_colorable());
        assert!(Graph::cycle(7).is_three_colorable());
    }

    #[test]
    fn empty_and_edgeless_graphs_are_colorable() {
        assert!(Graph::new(0).is_three_colorable());
        assert!(Graph::new(5).is_three_colorable());
    }

    #[test]
    fn self_loops_and_duplicate_edges_are_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn random_graphs_have_plausible_edge_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = Graph::random(&mut rng, 10, 0.5);
        // 45 possible edges; with p=0.5 expect between 10 and 35.
        assert!(g.edges().len() > 10 && g.edges().len() < 35);
        let dense = Graph::random(&mut rng, 6, 1.0);
        assert_eq!(dense.edges().len(), 15);
    }

    #[test]
    fn k4_plus_isolated_vertices_still_not_colorable() {
        let mut g = Graph::complete(4);
        g = Graph::from_edges(6, g.edges());
        assert!(!g.is_three_colorable());
    }

    #[test]
    fn proper_coloring_validation() {
        let g = Graph::cycle(4);
        assert!(g.is_proper_coloring(&[0, 1, 0, 1]));
        assert!(!g.is_proper_coloring(&[0, 0, 1, 1]));
        assert!(!g.is_proper_coloring(&[0, 1]));
    }
}
