//! Minimal valuations (Definition 3.3), strong minimality (Definition 4.4)
//! and the sufficient condition of Lemma 4.8.

use std::ops::ControlFlow;

use cq::{
    for_each_satisfying, CanonicalValuations, ConjunctiveQuery, EvalOptions, Instance, Valuation,
};
use delta::IndexCache;

/// The search for a strictly smaller valuation over an already-materialized
/// required-fact instance. Shared by the scratch and cached entry points so
/// the two can never diverge semantically.
fn smaller_valuation_exists(
    query: &ConjunctiveQuery,
    valuation: &Valuation,
    required: &Instance,
) -> bool {
    let head_binding = valuation.restrict(&query.head_variables());
    let mut found_smaller = false;
    let _ = for_each_satisfying(
        query,
        required,
        &head_binding,
        EvalOptions::default(),
        |candidate| {
            // candidate(body) ⊆ required by construction; strictness is a size check.
            if candidate.required_facts(query).len() < required.len() {
                found_smaller = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    found_smaller
}

/// Whether `valuation` is a *minimal* valuation for `query`
/// (Definition 3.3): there is no valuation `V'` with `V' <_Q V`.
///
/// Any counterexample `V'` satisfies `V'(body_Q) ⊊ V(body_Q)`, so it maps all
/// variables into the active domain of `V(body_Q)`; the search is therefore
/// finite and is implemented as a constrained evaluation of `Q` over the
/// instance `V(body_Q)` with the head variables pre-bound.
pub fn is_minimal_valuation(query: &ConjunctiveQuery, valuation: &Valuation) -> bool {
    let required = valuation.required_facts(query);
    !smaller_valuation_exists(query, valuation, &required)
}

/// [`is_minimal_valuation`] with the candidate's required-fact instance
/// warmed through a shared [`IndexCache`].
///
/// The decision procedures check minimality for thousands of valuations
/// whose required-fact sets coincide up to variable collapses; warming the
/// instance hoists the secondary-index build out of the per-candidate loop —
/// equal required sets share one resident instance whose indexes are built
/// once.
pub fn is_minimal_valuation_cached(
    query: &ConjunctiveQuery,
    valuation: &Valuation,
    cache: &mut IndexCache,
) -> bool {
    let required = cache.warm_owned(valuation.required_facts(query));
    !smaller_valuation_exists(query, valuation, &required)
}

/// Enumerates the valuations of `query` that are satisfying on `facts` and
/// minimal, invoking `callback` for each.
pub fn for_each_minimal_valuation<F>(
    query: &ConjunctiveQuery,
    facts: &Instance,
    callback: F,
) -> ControlFlow<()>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    let mut cache = IndexCache::default();
    for_each_minimal_valuation_cached(query, facts, &mut cache, callback)
}

/// [`for_each_minimal_valuation`] with the per-candidate minimality checks
/// warmed through a caller-owned [`IndexCache`], so consecutive candidates
/// with equal required-fact sets share one indexed instance.
pub fn for_each_minimal_valuation_cached<F>(
    query: &ConjunctiveQuery,
    facts: &Instance,
    cache: &mut IndexCache,
    mut callback: F,
) -> ControlFlow<()>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    for_each_satisfying(
        query,
        facts,
        &Valuation::new(),
        EvalOptions::default(),
        |v| {
            if is_minimal_valuation_cached(query, v, cache) {
                callback(v)
            } else {
                ControlFlow::Continue(())
            }
        },
    )
}

/// The satisfying valuations of `query` on `facts` that are minimal.
pub fn minimal_valuations_over(query: &ConjunctiveQuery, facts: &Instance) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let _ = for_each_minimal_valuation(query, facts, |v| {
        if seen.insert(v.clone()) {
            out.push(v.clone());
        }
        ControlFlow::Continue(())
    });
    out
}

/// A report on the strong minimality of a query.
#[derive(Clone, Debug)]
pub struct StrongMinimalityReport {
    /// Whether the query is strongly minimal.
    pub strongly_minimal: bool,
    /// Whether the sufficient syntactic condition of Lemma 4.8 holds.
    pub lemma_4_8: bool,
    /// Number of canonical valuations inspected by the complete check.
    pub valuations_checked: usize,
}

/// Whether `query` is *strongly minimal* (Definition 4.4): every valuation
/// for the query is minimal.
///
/// By genericity it suffices to check one representative valuation per
/// equality pattern of the query variables (canonical set partitions).
pub fn is_strongly_minimal(query: &ConjunctiveQuery) -> bool {
    strong_minimality_witness(query).is_none()
}

/// Searches for a witness of non-strong-minimality: a valuation of the query
/// that is not minimal. Returns `None` when the query is strongly minimal.
pub fn strong_minimality_witness(query: &ConjunctiveQuery) -> Option<Valuation> {
    // Fast path: the syntactic sufficient condition of Lemma 4.8.
    if satisfies_lemma_4_8(query) {
        return None;
    }
    CanonicalValuations::new(query.variables()).find(|v| !is_minimal_valuation(query, v))
}

/// Full report on strong minimality, including which path decided it.
pub fn strong_minimality_report(query: &ConjunctiveQuery) -> StrongMinimalityReport {
    let lemma = satisfies_lemma_4_8(query);
    if lemma {
        return StrongMinimalityReport {
            strongly_minimal: true,
            lemma_4_8: true,
            valuations_checked: 0,
        };
    }
    let mut checked = 0usize;
    let mut strongly_minimal = true;
    for v in CanonicalValuations::new(query.variables()) {
        checked += 1;
        if !is_minimal_valuation(query, &v) {
            strongly_minimal = false;
            break;
        }
    }
    StrongMinimalityReport {
        strongly_minimal,
        lemma_4_8: false,
        valuations_checked: checked,
    }
}

/// The sufficient condition of Lemma 4.8: if a variable `x` occurs at a
/// position `i` in some self-join atom and not in the head of `Q`, then all
/// self-join atoms have `x` at position `i`.
///
/// In particular every full CQ and every CQ without self-joins satisfies the
/// condition. The condition is *not* necessary (Example 4.9).
pub fn satisfies_lemma_4_8(query: &ConjunctiveQuery) -> bool {
    let self_join_atoms = query.self_join_atoms();
    let head_vars = query.head_variables();
    for atom in &self_join_atoms {
        for (i, &var) in atom.args.iter().enumerate() {
            if head_vars.contains(&var) {
                continue;
            }
            // `var` occurs at position i of a self-join atom and is not a head
            // variable: all self-join atoms must have `var` at position i.
            for other in &self_join_atoms {
                if other.args.get(i) != Some(&var) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::Valuation;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn example_3_5_minimal_and_non_minimal_valuations() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let v = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
        let v_prime = Valuation::from_names([("x", "a"), ("y", "a"), ("z", "a")]);
        assert!(!is_minimal_valuation(&query, &v));
        assert!(is_minimal_valuation(&query, &v_prime));
    }

    #[test]
    fn injective_valuations_of_minimal_queries_are_minimal() {
        // Lemma 3.6 (one direction): for an injective valuation, minimality
        // of the valuation coincides with minimality of the query.
        let minimal_query = q("T(x) :- R(x, y), R(y, z).");
        let injective = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "c")]);
        assert!(is_minimal_valuation(&minimal_query, &injective));

        let non_minimal_query = q("T(x) :- R(x, y), R(x, z).");
        let injective2 = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "c")]);
        assert!(!is_minimal_valuation(&non_minimal_query, &injective2));
    }

    #[test]
    fn lemma_3_6_equivalence_on_sample_queries() {
        // For every sample query: Q minimal  <=>  its injective valuations are minimal.
        let samples = [
            "T(x) :- R(x, y), R(y, z).",
            "T(x) :- R(x, y), R(x, z).",
            "T(x, z) :- R(x, y), R(y, z), R(x, x).",
            "T() :- R(x, y), R(y, x).",
            "T() :- R(x, y), R(y, y), R(z, z), R(u, u).",
        ];
        for text in samples {
            let query = q(text);
            let vars = query.variables();
            let injective = Valuation::from_pairs(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, cq::Value::indexed("inj", i))),
            );
            assert_eq!(
                cq::is_minimal(&query),
                is_minimal_valuation(&query, &injective),
                "Lemma 3.6 violated for {text}"
            );
        }
    }

    #[test]
    fn minimal_valuations_over_an_instance() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let instance = cq::parse_instance("R(a, a). R(a, b). R(b, a).").unwrap();
        let minimal = minimal_valuations_over(&query, &instance);
        // The valuation x=a,y=b,z=a is satisfying but NOT minimal (x=y=z=a is
        // smaller); the all-a valuation is minimal; x=a,y=a|b,z=b requires
        // R(a,b),(R(a,a) or R(b,b)),… — check that every returned valuation
        // is indeed minimal and satisfying.
        assert!(!minimal.is_empty());
        for v in &minimal {
            assert!(v.satisfies(&query, &instance));
            assert!(is_minimal_valuation(&query, v));
        }
        // the non-minimal valuation is not in the list
        let non_minimal = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
        assert!(!minimal.contains(&non_minimal));
    }

    #[test]
    fn example_4_5_strongly_minimal_queries() {
        // Q1 is full (the paper's Example 4.5 argues "by fullness of Q1";
        // we spell the head with all body variables); Q2 has no self-joins.
        let q1 = q("T(x1, x2, x3, x4) :- R(x1, x2), R(x2, x3), R(x3, x4).");
        let q2 = q("T() :- R1(x1, x2), R2(x2, x3), R3(x3, x4).");
        assert!(q1.is_full());
        assert!(satisfies_lemma_4_8(&q1));
        assert!(is_strongly_minimal(&q1));
        assert!(satisfies_lemma_4_8(&q2));
        assert!(is_strongly_minimal(&q2));
    }

    #[test]
    fn projected_chain_with_self_joins_is_not_strongly_minimal() {
        // The literal head of the paper's Example 4.5 (which omits x3) makes
        // the query non-strongly-minimal: collapsing x3 onto x2's value can
        // shrink the required facts while deriving the same head fact.
        let query = q("T(x1, x2, x2, x4) :- R(x1, x2), R(x2, x3), R(x3, x4).");
        assert!(!is_strongly_minimal(&query));
    }

    #[test]
    fn example_3_5_query_is_minimal_but_not_strongly_minimal() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        assert!(cq::is_minimal(&query));
        assert!(!is_strongly_minimal(&query));
        let witness = strong_minimality_witness(&query).expect("witness must exist");
        assert!(!is_minimal_valuation(&query, &witness));
    }

    #[test]
    fn example_4_9_strongly_minimal_without_lemma_4_8() {
        // T() :- R(x1, x2), R(x2, x1) is strongly minimal but fails the
        // sufficient condition of Lemma 4.8.
        let query = q("T() :- R(x1, x2), R(x2, x1).");
        assert!(!satisfies_lemma_4_8(&query));
        assert!(is_strongly_minimal(&query));
        let report = strong_minimality_report(&query);
        assert!(report.strongly_minimal);
        assert!(!report.lemma_4_8);
        assert!(report.valuations_checked >= 2);
    }

    #[test]
    fn full_queries_satisfy_lemma_4_8() {
        let query = q("T(x, y) :- R(x, y), R(y, x).");
        assert!(satisfies_lemma_4_8(&query));
        assert!(is_strongly_minimal(&query));
    }

    #[test]
    fn self_join_free_queries_satisfy_lemma_4_8() {
        let query = q("T(x) :- R(x, y), S(y, z), U(z, x).");
        assert!(satisfies_lemma_4_8(&query));
        assert!(is_strongly_minimal(&query));
    }

    #[test]
    fn strongly_minimal_implies_minimal() {
        // every strongly minimal CQ is minimal (the converse fails, see above)
        let samples = [
            "T() :- R(x1, x2), R(x2, x1).",
            "T(x1, x2) :- R(x1, x2), R(x2, x3).",
            "T() :- R1(x, y), R2(y, z).",
        ];
        for text in samples {
            let query = q(text);
            if is_strongly_minimal(&query) {
                assert!(
                    cq::is_minimal(&query),
                    "strongly minimal but not minimal: {text}"
                );
            }
        }
    }

    #[test]
    fn non_strongly_minimal_self_join_with_existential_variable() {
        // T(x) :- R(x, y), R(x, x): the valuation y ↦ x-value collapses.
        let query = q("T(x) :- R(x, y), R(x, x).");
        assert!(!satisfies_lemma_4_8(&query));
        assert!(!is_strongly_minimal(&query));
    }

    #[test]
    fn cached_minimality_agrees_with_scratch_on_canonical_valuations() {
        let samples = [
            "T(x, z) :- R(x, y), R(y, z), R(x, x).",
            "T(x) :- R(x, y), R(x, z).",
            "T() :- R(x, y), R(y, x).",
            "T(x) :- E(x, y), E(y, z), E(z, x).",
        ];
        for text in samples {
            let query = q(text);
            let mut cache = IndexCache::default();
            for v in CanonicalValuations::new(query.variables()) {
                assert_eq!(
                    is_minimal_valuation(&query, &v),
                    is_minimal_valuation_cached(&query, &v, &mut cache),
                    "cached minimality diverged for {text} on {v:?}"
                );
            }
        }
    }

    #[test]
    fn cached_minimality_builds_indexes_once_per_required_set() {
        // Regression: the per-candidate loop used to rebuild the secondary
        // indexes of each candidate's required-fact instance from scratch.
        // With the cache, repeated checks of valuations with equal required
        // sets share one resident instance whose indexes are built once.
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let v = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
        let mut cache = IndexCache::default();
        for _ in 0..5 {
            assert!(!is_minimal_valuation_cached(&query, &v, &mut cache));
        }
        assert_eq!(cache.misses(), 1, "one distinct required set");
        assert_eq!(cache.hits(), 4, "later checks reuse the resident entry");
        let resident = cache.warm_owned(v.required_facts(&query));
        assert_eq!(
            resident.index_builds(),
            1,
            "indexes of the shared required instance were built exactly once"
        );
    }
}
