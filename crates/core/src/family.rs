//! Parallel-correctness for families of distribution policies (Section 5).
//!
//! For a family `F` that is `Q`-generous and `Q`-scattered, a query `Q'` is
//! parallel-correct for `F` if and only if condition (C3) holds for the pair
//! `(Q, Q')` (Lemma 5.2); deciding this is NP-complete (Theorem 5.3). The
//! Hypercube family `H_Q` is such a family (Lemma 5.7), which gives
//! Corollary 5.8.

use cq::{evaluate, ConjunctiveQuery, Instance};
use distribution::{DistributionPolicy, HypercubeFamily, HypercubePolicy};

use crate::conditions::{c3_witness, holds_c3};

/// Report on whether a query is parallel-correct for the `Q`-generous and
/// `Q`-scattered families associated with a query `Q` (in particular, for
/// the Hypercube family `H_Q`).
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// Whether `Q'` is parallel-correct for every `Q`-generous,
    /// `Q`-scattered family of distribution policies.
    pub parallel_correct: bool,
    /// The (C3) witness when the answer is positive.
    pub witness: Option<crate::conditions::C3Witness>,
}

/// Decides whether `q_prime` is parallel-correct for the Hypercube family
/// `H_Q` of `query` (Corollary 5.8), via condition (C3).
///
/// By Theorem 5.3 the same answer applies to every `Q`-generous and
/// `Q`-scattered family, not just the Hypercube family.
pub fn hypercube_parallel_correct(
    query: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
) -> FamilyReport {
    let witness = c3_witness(query, q_prime);
    FamilyReport {
        parallel_correct: witness.is_some(),
        witness,
    }
}

/// Result of the randomized/structural validation of the Hypercube family
/// properties (Lemma 5.7) on concrete instances and members.
#[derive(Clone, Debug)]
pub struct FamilyValidation {
    /// Number of Hypercube members inspected.
    pub members_checked: usize,
    /// Number of (member, valuation) pairs for which generosity was verified.
    pub generous_checks: usize,
    /// Whether every inspected valuation had all its facts meet at a node.
    pub generous: bool,
    /// Whether the scattered member partitioned the instance so that every
    /// chunk is contained in the required facts of a single valuation.
    pub scattered: bool,
    /// Whether the one-round evaluation of `query` agreed with the
    /// centralized evaluation for every inspected member (parallel-correctness
    /// of `Q` for its own family, a consequence of generosity).
    pub self_parallel_correct: bool,
}

/// Validates the two properties of Lemma 5.7 — `H_Q` is `Q`-generous and
/// `Q`-scattered — on a concrete instance, for the uniform members with
/// `1..=max_buckets` buckets plus the scattered member.
pub fn validate_hypercube_family(
    query: &ConjunctiveQuery,
    instance: &Instance,
    max_buckets: usize,
) -> FamilyValidation {
    let family = HypercubeFamily::new(query);
    let members = family
        .representative_members(max_buckets)
        .expect("hypercube members must be constructible");

    let expected = evaluate(query, instance);
    let mut generous = true;
    let mut generous_checks = 0usize;
    let mut self_pc = true;

    for member in &members {
        // Generosity on every satisfying valuation of the instance.
        for valuation in cq::satisfying_valuations(query, instance) {
            generous_checks += 1;
            let required = valuation.required_facts(query);
            if !member.facts_meet(&required) {
                generous = false;
            }
        }
        // Parallel-correctness of Q itself on this instance.
        let outcome = distribution::OneRoundEngine::new(member).evaluate(query, instance);
        if outcome.result != expected {
            self_pc = false;
        }
    }

    // Scatteredness of the identity-hash member.
    let scattered_member =
        HypercubePolicy::scattered_for(query, instance).expect("scattered member");
    let scattered = chunks_are_scattered(query, instance, &scattered_member);

    FamilyValidation {
        members_checked: members.len() + 1,
        generous_checks,
        generous,
        scattered,
        self_parallel_correct: self_pc,
    }
}

/// Whether every chunk of `policy`'s distribution of `instance` is contained
/// in `V(body_Q)` for some valuation `V` (the `(Q, I)`-scattered property).
fn chunks_are_scattered(
    query: &ConjunctiveQuery,
    instance: &Instance,
    policy: &HypercubePolicy,
) -> bool {
    let adom: Vec<cq::Value> = instance.adom().into_iter().collect();
    let vars = query.variables();
    let distribution = policy.distribute(instance);
    let scattered = distribution.chunks().all(|(_, chunk)| {
        if chunk.is_empty() {
            return true;
        }
        cq::all_assignments(vars.len(), adom.len())
            .into_iter()
            .any(|assignment| {
                let valuation = cq::Valuation::from_pairs(
                    vars.iter()
                        .zip(assignment.iter())
                        .map(|(&var, &i)| (var, adom[i])),
                );
                let required = valuation.required_facts(query);
                chunk.facts().all(|f| required.contains(f))
            })
    });
    scattered
}

/// Convenience wrapper: condition (C3) seen as "is `q_prime` parallel-correct
/// for every `Q`-generous and `Q`-scattered family of `query`" (Lemma 5.2).
pub fn parallel_correct_for_generous_scattered_families(
    query: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
) -> bool {
    holds_c3(query, q_prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_instance;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn every_query_is_parallel_correct_for_its_own_hypercube_family() {
        let queries = [
            q("T(x, z) :- R(x, y), S(y, z)."),
            q("T(x, y, z) :- E(x, y), E(y, z), E(z, x)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T() :- R(x, y), R(y, x)."),
        ];
        for query in &queries {
            let report = hypercube_parallel_correct(query, query);
            assert!(report.parallel_correct, "C3 must hold for (Q, Q): {query}");
        }
    }

    #[test]
    fn lemma_5_7_validation_on_concrete_instances() {
        let query = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let instance =
            parse_instance("E(a, b). E(b, c). E(c, a). E(a, a). E(b, d). E(d, b). E(d, d).")
                .unwrap();
        let validation = validate_hypercube_family(&query, &instance, 3);
        assert!(validation.generous);
        assert!(validation.scattered);
        assert!(validation.self_parallel_correct);
        assert!(validation.generous_checks > 0);
        assert_eq!(validation.members_checked, 4);
    }

    #[test]
    fn hypercube_family_of_a_join_query_accepts_its_projections() {
        // Q' computes a sub-join of Q over the same relations: Q-generous
        // families gather all facts of a Q-valuation at a node, which also
        // contains everything a Q'-valuation needs (after simplification).
        let query = q("T(x, y, z) :- R(x, y), S(y, z).");
        let sub = q("U(x, y) :- R(x, y).");
        assert!(hypercube_parallel_correct(&query, &sub).parallel_correct);
        assert!(parallel_correct_for_generous_scattered_families(
            &query, &sub
        ));
    }

    #[test]
    fn hypercube_family_rejects_queries_over_missing_relations() {
        let query = q("T(x, y) :- R(x, y).");
        let other = q("U(x, y) :- S(x, y).");
        assert!(!hypercube_parallel_correct(&query, &other).parallel_correct);
    }

    #[test]
    fn family_answer_is_consistent_with_concrete_members() {
        // If C3 holds, Q' must evaluate correctly under concrete Hypercube
        // members of Q on concrete instances; if C3 fails, there must be a
        // member and an instance where the distributed evaluation loses facts
        // (we check the scattered member on the canonical counterexample).
        let query = q("T(x, y, z) :- R(x, y), S(y, z).");
        let good = q("U(x, y) :- R(x, y).");
        let bad = q("U(x, z) :- R(x, y), R(y, z).");

        let instance = parse_instance("R(a, b). R(b, c). S(b, d). S(c, e).").unwrap();

        assert!(hypercube_parallel_correct(&query, &good).parallel_correct);
        for buckets in 1..=3 {
            let member = HypercubePolicy::uniform(&query, buckets).unwrap();
            let outcome = distribution::OneRoundEngine::new(&member).evaluate(&good, &instance);
            assert_eq!(outcome.result, evaluate(&good, &instance));
        }

        assert!(!hypercube_parallel_correct(&query, &bad).parallel_correct);
        // The R-R join of `bad` needs R(a,b) and R(b,c) at the same node; the
        // scattered member of Q separates them (they share no Q-valuation
        // whose required facts contain both), so the answer T(a,c) is lost.
        let scattered = HypercubePolicy::scattered_for(&query, &instance).unwrap();
        let outcome = distribution::OneRoundEngine::new(&scattered).evaluate(&bad, &instance);
        assert_ne!(outcome.result, evaluate(&bad, &instance));
    }
}
