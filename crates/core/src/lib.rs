//! # pc-core — parallel-correctness and transferability for conjunctive queries
//!
//! This crate implements the contributions of
//! *"Parallel-Correctness and Transferability for Conjunctive Queries"*
//! (Ameloot, Geck, Ketsman, Neven, Schwentick, PODS 2015):
//!
//! * **valuation minimality** (Definition 3.3) and **strong minimality**
//!   (Definition 4.4) together with the sufficient syntactic condition of
//!   Lemma 4.8 — module [`minimality`],
//! * the conditions **(C0)**, **(C1)** (Lemma 3.4), **(C2)** (Lemma 4.2) and
//!   **(C3)** (Lemma 4.6 / Lemma 5.2) — module [`conditions`],
//! * deciders for **parallel-correctness** on an instance (`PCI`,
//!   Definition 3.1) and for all instances over a finite policy (`PC(Pfin)`,
//!   Theorem 3.8) — module [`pc`],
//! * deciders for **parallel-correctness transfer** (`pc-trans`,
//!   Theorem 4.3) in the general case and the NP procedure for strongly
//!   minimal queries (Theorem 4.7) — module [`transfer`],
//! * parallel-correctness for **Q-generous / Q-scattered families** and in
//!   particular the Hypercube family (Lemma 5.2, Theorem 5.3, Lemma 5.7,
//!   Corollary 5.8) — module [`family`].
//!
//! All deciders return *reports* carrying witnesses or counterexamples, so
//! the examples and benches can show not only "yes/no" but also why.
//!
//! ## Example: the query and policy of Example 3.5
//!
//! ```
//! use cq::{ConjunctiveQuery, Fact, Instance};
//! use distribution::{ExplicitPolicy, Network, Node};
//! use pc_core::{check_parallel_correctness, conditions};
//!
//! let q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(x, x).").unwrap();
//!
//! // Facts over {a, b}; every fact except R(a,b) goes to node 1, every fact
//! // except R(b,a) goes to node 2.
//! let r_ab = Fact::from_names("R", &["a", "b"]);
//! let r_ba = Fact::from_names("R", &["b", "a"]);
//! let mut universe = Instance::new();
//! for x in ["a", "b"] {
//!     for y in ["a", "b"] {
//!         universe.insert(Fact::from_names("R", &[x, y]));
//!     }
//! }
//! let mut policy = ExplicitPolicy::new(Network::with_size(2));
//! for fact in universe.facts() {
//!     let mut nodes = vec![];
//!     if *fact != r_ab { nodes.push(Node::numbered(0)); }
//!     if *fact != r_ba { nodes.push(Node::numbered(1)); }
//!     policy.assign(fact.clone(), nodes);
//! }
//!
//! // Condition (C0) fails (R(a,b) and R(b,a) never meet) …
//! assert!(!conditions::holds_c0(&q, &policy, &universe));
//! // … yet the query is parallel-correct under the policy (Lemma 3.4 / (C1)).
//! assert!(check_parallel_correctness(&q, &policy).is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod family;
pub mod minimality;
pub mod pc;
pub mod transfer;

pub use conditions::{holds_c0, holds_c1, holds_c2, holds_c3, C1Violation, C3Witness};
pub use family::{
    hypercube_parallel_correct, validate_hypercube_family, FamilyReport, FamilyValidation,
};
pub use minimality::{
    is_minimal_valuation, is_minimal_valuation_cached, is_strongly_minimal,
    minimal_valuations_over, satisfies_lemma_4_8, strong_minimality_witness,
    StrongMinimalityReport,
};
pub use pc::{
    check_parallel_correctness, check_parallel_correctness_bounded,
    check_parallel_correctness_naive, check_parallel_correctness_naive_incremental,
    check_parallel_correctness_on_instance, multi_round_correct_on, IncrementalPcReport,
    IncrementalPcStats, MultiRoundInstanceReport, PcInstanceReport, PcReport, PcViolation,
};
pub use transfer::{
    check_transfer, check_transfer_no_skip, check_transfer_strongly_minimal, TransferCache,
    TransferReport, TransferViolation,
};
