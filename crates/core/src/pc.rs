//! Deciding parallel-correctness (Section 3 of the paper), and its
//! multi-round extension: comparing an iterated distributed run against the
//! global fixpoint of the iterated query.

use cq::{evaluate, evaluate_seminaive_step, ConjunctiveQuery, Fact, Instance};
use delta::{CacheStats, IndexCache};
use distribution::{
    DistributionPolicy, FinitePolicy, MultiRoundEngine, MultiRoundOutcome, OneRoundEngine,
};

use crate::conditions::{c1_violation_cached, C1Violation};

/// A violation of parallel-correctness: a minimal valuation whose required
/// facts never meet, together with the concrete counterexample instance and
/// the fact that is lost (cf. the proof of Lemma 3.4).
#[derive(Clone, Debug)]
pub struct PcViolation {
    /// The minimal valuation whose facts do not meet under the policy.
    pub valuation: cq::Valuation,
    /// The counterexample instance `V(body_Q)`.
    pub counterexample_instance: Instance,
    /// The fact `V(head_Q)` that the distributed evaluation misses on the
    /// counterexample instance.
    pub lost_fact: cq::Fact,
}

/// The result of a parallel-correctness check over all instances.
#[derive(Clone, Debug)]
pub struct PcReport {
    /// Whether the query is parallel-correct under the policy.
    pub correct: bool,
    /// A violation witness when the query is not parallel-correct.
    pub violation: Option<PcViolation>,
    /// Hit/miss counters of the [`IndexCache`] the minimality search warmed
    /// its candidate instances through.
    pub cache: CacheStats,
}

impl PcReport {
    /// Whether the query is parallel-correct.
    pub fn is_correct(&self) -> bool {
        self.correct
    }

    /// The index-cache counters accumulated while deciding the verdict.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }
}

/// The result of a parallel-correctness check on one instance (PCI).
#[derive(Clone, Debug)]
pub struct PcInstanceReport {
    /// Whether `Q(I) = ⋃_κ Q(dist_P(I)(κ))` on the given instance.
    pub correct: bool,
    /// The centralized result `Q(I)`.
    pub expected: Instance,
    /// The union of the per-node results.
    pub distributed: Instance,
    /// Facts of `Q(I)` missing from the distributed result.
    pub missing: Instance,
}

impl PcInstanceReport {
    /// Whether the evaluation is correct on the instance.
    pub fn is_correct(&self) -> bool {
        self.correct
    }
}

/// Decides parallel-correctness *on a given instance* (`PCI`,
/// Definition 3.1): compares the centralized evaluation with the union of
/// the per-node evaluations of the distributed instance.
pub fn check_parallel_correctness_on_instance<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    instance: &Instance,
) -> PcInstanceReport {
    let expected = evaluate(query, instance);
    let outcome = OneRoundEngine::new(policy).evaluate(query, instance);
    let distributed = outcome.result;
    let missing = expected.difference(&distributed);
    PcInstanceReport {
        correct: missing.is_empty() && distributed.contains_all(&expected),
        expected,
        distributed,
        missing,
    }
}

/// The result of a multi-round correctness check on one instance.
#[derive(Clone, Debug)]
pub struct MultiRoundInstanceReport {
    /// Whether the distributed multi-round result equals the global
    /// fixpoint of the centralized iterated query.
    pub correct: bool,
    /// The centralized global fixpoint `Q^∞(I)` (all rounds' outputs).
    pub expected: Instance,
    /// The full distributed multi-round outcome (capped at the engine's
    /// round limit).
    pub outcome: MultiRoundOutcome,
    /// Facts of the global fixpoint missing from the distributed result —
    /// non-empty when a round's policy loses answers *or* when the round
    /// cap stopped the run before its fixpoint.
    pub missing: Instance,
    /// Rounds the centralized reference needed to reach its fixpoint.
    pub reference_rounds: usize,
}

impl MultiRoundInstanceReport {
    /// Whether the multi-round evaluation is correct on the instance.
    pub fn is_correct(&self) -> bool {
        self.correct
    }

    /// Judges an already-computed distributed `outcome` against the global
    /// fixpoint of the centralized iterated query — the comparison behind
    /// [`multi_round_correct_on`], exposed separately so callers that need
    /// to time or instrument the distributed run can evaluate it themselves
    /// without re-implementing the verdict.
    pub fn from_outcome(
        query: &ConjunctiveQuery,
        engine: &MultiRoundEngine<'_>,
        instance: &Instance,
        outcome: MultiRoundOutcome,
    ) -> MultiRoundInstanceReport {
        let reference = engine.reference_fixpoint(query, instance);
        let missing = reference.result.difference(&outcome.result);
        MultiRoundInstanceReport {
            correct: missing.is_empty() && reference.result.contains_all(&outcome.result),
            expected: reference.result,
            outcome,
            missing,
            reference_rounds: reference.rounds,
        }
    }
}

/// Decides multi-round parallel-correctness *on a given instance*: runs the
/// engine's distribute→evaluate cycles and compares the accumulated result
/// against the **global fixpoint** of the centralized iterated query (same
/// carry/feedback semantics, no round cap — guaranteed to terminate because
/// conjunctive queries cannot invent new data values).
///
/// This is the multi-round analogue of Definition 3.1: correctness now
/// requires both that no round's reshuffle loses answers *and* that the
/// round cap suffices to reach the fixpoint.
pub fn multi_round_correct_on(
    query: &ConjunctiveQuery,
    engine: &MultiRoundEngine<'_>,
    instance: &Instance,
) -> MultiRoundInstanceReport {
    let outcome = engine.evaluate(query, instance);
    MultiRoundInstanceReport::from_outcome(query, engine, instance, outcome)
}

/// Decides parallel-correctness of `query` under a finite policy for **all**
/// instances `I ⊆ facts(P)` (`PC(Pfin)`, Theorem 3.8), using the
/// characterization by minimal valuations (condition (C1), Lemma 3.4 /
/// Lemma B.4).
pub fn check_parallel_correctness<P: FinitePolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
) -> PcReport {
    let universe = policy.fact_universe();
    check_parallel_correctness_bounded(query, policy, &universe)
}

/// Decides parallel-correctness restricted to instances over a finite fact
/// universe (the `Pⁿ` restriction used for black-box policies in the paper,
/// Section 3): the query is parallel-correct on every instance
/// `I ⊆ universe` if and only if every minimal valuation over `universe`
/// has its required facts meeting at some node.
pub fn check_parallel_correctness_bounded<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    universe: &Instance,
) -> PcReport {
    let mut cache = IndexCache::default();
    let violation = c1_violation_cached(query, policy, universe, &mut cache);
    let cache_stats = cache.stats();
    match violation {
        None => PcReport {
            correct: true,
            violation: None,
            cache: cache_stats,
        },
        Some(C1Violation {
            valuation,
            required_facts,
        }) => {
            let lost_fact = valuation.derived_fact(query);
            PcReport {
                correct: false,
                violation: Some(PcViolation {
                    valuation,
                    counterexample_instance: required_facts,
                    lost_fact,
                }),
                cache: cache_stats,
            }
        }
    }
}

/// Brute-force reference decision of `PC(Pfin)`: checks Definition 3.1 on
/// **every** subinstance of `facts(P)`.
///
/// Exponential in `|facts(P)|`; used to cross-validate
/// [`check_parallel_correctness`] in tests and benchmarks.
pub fn check_parallel_correctness_naive<P: FinitePolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
) -> bool {
    let universe = policy.fact_universe();
    universe
        .subsets()
        .iter()
        .all(|i| check_parallel_correctness_on_instance(query, policy, i).correct)
}

/// Statistics of the incremental brute-force search
/// ([`check_parallel_correctness_naive_incremental`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalPcStats {
    /// Candidate subinstances whose PCI verdict was checked (`2^|facts(P)|`).
    pub subsets_checked: u64,
    /// Semi-naive differential evaluation steps performed — one per
    /// (inserted fact, affected instance) pair, instead of one full
    /// evaluation per candidate instance and node.
    pub seminaive_steps: u64,
    /// Hit/miss counters of the [`IndexCache`] the candidate instances were
    /// warmed through.
    pub cache: CacheStats,
}

/// The result of the incremental brute-force `PC(Pfin)` decision.
#[derive(Clone, Debug)]
pub struct IncrementalPcReport {
    /// Whether the query is parallel-correct under the policy.
    pub correct: bool,
    /// A counterexample subinstance violating Definition 3.1, when not.
    pub counterexample: Option<Instance>,
    /// Search statistics.
    pub stats: IncrementalPcStats,
}

impl IncrementalPcReport {
    /// Whether the query is parallel-correct.
    pub fn is_correct(&self) -> bool {
        self.correct
    }

    /// The index-cache counters accumulated during the search.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats.cache
    }
}

/// Incremental brute-force decision of `PC(Pfin)`: checks Definition 3.1 on
/// every subinstance of `facts(P)` like
/// [`check_parallel_correctness_naive`], but walks the subset lattice
/// depth-first and re-evaluates only the **delta** between consecutive
/// candidate instances.
///
/// Including one fact `f` extends the running global instance and the
/// chunks of the nodes `f` is assigned to; each extension costs one
/// [`evaluate_seminaive_step`] (joining the single-fact delta against the
/// grown instance) instead of a from-scratch evaluation of every candidate
/// at every node. The candidate instances are warmed through a shared
/// [`IndexCache`], so replicated chunks (a broadcast node set, or a chunk
/// equal to the global instance) share one set of secondary indexes.
pub fn check_parallel_correctness_naive_incremental<P: FinitePolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
) -> IncrementalPcReport {
    let universe = policy.fact_universe();
    let facts: Vec<Fact> = universe.facts().cloned().collect();
    let nodes: Vec<distribution::Node> = policy.network().nodes().collect();
    let mut search = IncrementalSearch {
        query,
        facts,
        full: Instance::new(),
        derived: Instance::new(),
        chunks: vec![Instance::new(); nodes.len()],
        node_derived: vec![Instance::new(); nodes.len()],
        cache: IndexCache::default(),
        stats: IncrementalPcStats::default(),
        counterexample: None,
    };
    let assigned: Vec<Vec<usize>> = search
        .facts
        .iter()
        .map(|f| {
            let at = policy.nodes_for(f);
            nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| at.contains(n))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    search.dfs(0, &assigned);
    let mut stats = search.stats;
    stats.cache = search.cache.stats();
    IncrementalPcReport {
        correct: search.counterexample.is_none(),
        counterexample: search.counterexample,
        stats,
    }
}

/// The mutable state of the depth-first subset-lattice walk.
struct IncrementalSearch<'a> {
    query: &'a ConjunctiveQuery,
    facts: Vec<Fact>,
    /// The candidate global instance for the current lattice position.
    full: Instance,
    /// `Q(full)`, maintained by differential steps.
    derived: Instance,
    /// Per-node chunk of `full` under the policy.
    chunks: Vec<Instance>,
    /// Per-node `Q(chunk)`, maintained by differential steps.
    node_derived: Vec<Instance>,
    cache: IndexCache,
    stats: IncrementalPcStats,
    counterexample: Option<Instance>,
}

impl IncrementalSearch<'_> {
    /// One differential step: inserts `fact` into `target`, derives what is
    /// new via a semi-naive step against the grown (cache-warmed) instance,
    /// merges it into `derived`, and returns the merged facts for undo.
    fn step(
        query: &ConjunctiveQuery,
        cache: &mut IndexCache,
        stats: &mut IncrementalPcStats,
        target: &mut Instance,
        derived: &mut Instance,
        fact: &Fact,
        delta: &Instance,
    ) -> Vec<Fact> {
        target.insert(fact.clone());
        let warmed = cache.warm(target);
        let new = evaluate_seminaive_step(query, &warmed, delta);
        stats.seminaive_steps += 1;
        let added: Vec<Fact> = new
            .facts()
            .filter(|g| !derived.contains(g))
            .cloned()
            .collect();
        for g in &added {
            derived.insert(g.clone());
        }
        added
    }

    fn dfs(&mut self, depth: usize, assigned: &[Vec<usize>]) {
        if self.counterexample.is_some() {
            return;
        }
        if depth == self.facts.len() {
            self.stats.subsets_checked += 1;
            // Q is monotone, so every node derives a subset of Q(full);
            // the verdict reduces to "does the union cover Q(full)?".
            let mut distributed = Instance::new();
            for nd in &self.node_derived {
                distributed = distributed.union(nd);
            }
            if !self.derived.difference(&distributed).is_empty() {
                self.counterexample = Some(self.full.clone());
            }
            return;
        }

        // Exclude facts[depth]: state is unchanged.
        self.dfs(depth + 1, assigned);
        if self.counterexample.is_some() {
            return;
        }

        // Include facts[depth]: one differential step per affected instance.
        let fact = self.facts[depth].clone();
        let delta = Instance::from_facts([fact.clone()]);
        let added_global = Self::step(
            self.query,
            &mut self.cache,
            &mut self.stats,
            &mut self.full,
            &mut self.derived,
            &fact,
            &delta,
        );
        let mut added_per_node = Vec::with_capacity(assigned[depth].len());
        for &node in &assigned[depth] {
            let added = Self::step(
                self.query,
                &mut self.cache,
                &mut self.stats,
                &mut self.chunks[node],
                &mut self.node_derived[node],
                &fact,
                &delta,
            );
            added_per_node.push((node, added));
        }

        self.dfs(depth + 1, assigned);

        // Undo the inclusion; a counterexample keeps its clone of `full`.
        for (node, added) in added_per_node {
            for g in &added {
                self.node_derived[node].remove(g);
            }
            self.chunks[node].remove(&fact);
        }
        for g in &added_global {
            self.derived.remove(g);
        }
        self.full.remove(&fact);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{parse_instance, Fact};
    use distribution::{ExplicitPolicy, HypercubePolicy, Network, Node};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn all_r_facts(values: &[&str]) -> Instance {
        let mut out = Instance::new();
        for x in values {
            for y in values {
                out.insert(Fact::from_names("R", &[x, y]));
            }
        }
        out
    }

    fn example_3_5_policy(universe: &Instance) -> ExplicitPolicy {
        let r_ab = Fact::from_names("R", &["a", "b"]);
        let r_ba = Fact::from_names("R", &["b", "a"]);
        let mut policy = ExplicitPolicy::new(Network::with_size(2));
        for fact in universe.facts() {
            let mut nodes = Vec::new();
            if *fact != r_ab {
                nodes.push(Node::numbered(0));
            }
            if *fact != r_ba {
                nodes.push(Node::numbered(1));
            }
            policy.assign(fact.clone(), nodes);
        }
        policy
    }

    #[test]
    fn example_3_5_query_is_parallel_correct_under_its_policy() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let universe = all_r_facts(&["a", "b"]);
        let policy = example_3_5_policy(&universe);
        let report = check_parallel_correctness(&query, &policy);
        assert!(report.is_correct());
        assert!(report.violation.is_none());
        // agrees with the brute-force reference over all 2^4 subinstances
        assert!(check_parallel_correctness_naive(&query, &policy));
    }

    #[test]
    fn plain_path_query_is_not_parallel_correct_under_example_3_5_policy() {
        // Without the R(x,x) atom the valuation x=a,y=b,z=a is minimal and
        // requires R(a,b), R(b,a), which never meet.
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let universe = all_r_facts(&["a", "b"]);
        let policy = example_3_5_policy(&universe);
        let report = check_parallel_correctness(&query, &policy);
        assert!(!report.is_correct());
        let violation = report.violation.unwrap();
        assert_eq!(violation.counterexample_instance.len(), 2);
        assert!(!check_parallel_correctness_naive(&query, &policy));

        // The counterexample instance really does break Definition 3.1.
        let pci = check_parallel_correctness_on_instance(
            &query,
            &policy,
            &violation.counterexample_instance,
        );
        assert!(!pci.is_correct());
        assert!(pci.missing.contains(&violation.lost_fact));
    }

    #[test]
    fn broadcast_policies_are_always_parallel_correct() {
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let mut universe = parse_instance("R(a, b). R(b, c). S(b, d). S(c, e).").unwrap();
        universe.insert(Fact::from_names("S", &["d", "f"]));
        let policy = ExplicitPolicy::broadcast(&Network::with_size(3), &universe);
        assert!(check_parallel_correctness(&query, &policy).is_correct());
        assert!(check_parallel_correctness_naive(&query, &policy));
    }

    #[test]
    fn round_robin_splits_joins_and_fails() {
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let universe = parse_instance("R(a, b). S(b, c).").unwrap();
        let policy = ExplicitPolicy::round_robin(&Network::with_size(2), &universe);
        let report = check_parallel_correctness(&query, &policy);
        assert!(!report.is_correct());
        assert!(!check_parallel_correctness_naive(&query, &policy));
    }

    #[test]
    fn characterization_agrees_with_naive_on_many_small_policies() {
        // Cross-validation of Lemma 3.4 / Lemma B.4: the (C1)-based decision
        // agrees with the brute-force Definition 3.2 check for a collection
        // of small queries and policies.
        let queries = [
            q("T(x, z) :- R(x, y), R(y, z)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T(x) :- R(x, x)."),
            q("T() :- R(x, y), R(y, x)."),
        ];
        let universe = all_r_facts(&["a", "b"]);
        let facts: Vec<Fact> = universe.facts().cloned().collect();

        // A deterministic family of policies over two nodes: every subset of
        // facts goes to node 0, the complement to node 1 (plus broadcast and
        // skip variants).
        for mask in 0..(1u32 << facts.len()) {
            let mut policy = ExplicitPolicy::new(Network::with_size(2));
            for (i, fact) in facts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    policy.assign(fact.clone(), [Node::numbered(0)]);
                } else {
                    policy.assign(fact.clone(), [Node::numbered(1)]);
                }
            }
            for query in &queries {
                assert_eq!(
                    check_parallel_correctness(query, &policy).is_correct(),
                    check_parallel_correctness_naive(query, &policy),
                    "mismatch for {query} under mask {mask:b}"
                );
            }
        }
    }

    #[test]
    fn incremental_search_agrees_with_scratch_on_many_small_policies() {
        // The incremental subset-lattice walk must reach exactly the verdict
        // of the from-scratch brute force on the same policy family, and any
        // counterexample it reports must genuinely violate Definition 3.1.
        let queries = [
            q("T(x, z) :- R(x, y), R(y, z)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T(x) :- R(x, x)."),
            q("T() :- R(x, y), R(y, x)."),
        ];
        let universe = all_r_facts(&["a", "b"]);
        let facts: Vec<Fact> = universe.facts().cloned().collect();
        for mask in 0..(1u32 << facts.len()) {
            let mut policy = ExplicitPolicy::new(Network::with_size(2));
            for (i, fact) in facts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    policy.assign(fact.clone(), [Node::numbered(0)]);
                } else {
                    policy.assign(fact.clone(), [Node::numbered(1)]);
                }
            }
            for query in &queries {
                let scratch = check_parallel_correctness_naive(query, &policy);
                let report = check_parallel_correctness_naive_incremental(query, &policy);
                assert_eq!(
                    report.is_correct(),
                    scratch,
                    "incremental diverged for {query} under mask {mask:b}"
                );
                if report.is_correct() {
                    assert_eq!(report.stats.subsets_checked, 1 << facts.len());
                } else {
                    assert!(report.stats.subsets_checked <= 1 << facts.len());
                }
                if let Some(counterexample) = &report.counterexample {
                    let pci =
                        check_parallel_correctness_on_instance(query, &policy, counterexample);
                    assert!(!pci.is_correct(), "bogus counterexample for {query}");
                }
            }
        }
    }

    #[test]
    fn incremental_search_shares_indexes_on_replicated_chunks() {
        // Under a broadcast policy every node's chunk equals the global
        // instance, so warming the candidates through the cache must produce
        // hits (shared indexes) rather than per-node rebuilds.
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let universe = all_r_facts(&["a", "b"]);
        let policy = ExplicitPolicy::broadcast(&Network::with_size(3), &universe);
        let report = check_parallel_correctness_naive_incremental(&query, &policy);
        assert!(report.is_correct());
        assert!(
            report.cache_stats().hits > report.cache_stats().misses,
            "broadcast chunks must mostly hit the shared cache: {:?}",
            report.stats
        );
        assert!(report.stats.seminaive_steps > 0);
    }

    #[test]
    fn hypercube_policies_are_parallel_correct_for_their_query() {
        // Corollary of Lemma 5.7 (Q-generous ⇒ (C0) ⇒ (C1)).
        let queries = [
            q("T(x, z) :- R(x, y), S(y, z)."),
            q("T(x, y, z) :- E(x, y), E(y, z), E(z, x)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
        ];
        for query in &queries {
            let policy = HypercubePolicy::uniform(query, 2).unwrap();
            // bounded check over a small fact universe
            let mut universe = Instance::new();
            for rel in query.schema().relations() {
                for x in ["a", "b", "c"] {
                    for y in ["a", "b", "c"] {
                        universe.insert(Fact::new(rel.name, vec![x.into(), y.into()]));
                    }
                }
            }
            let report = check_parallel_correctness_bounded(query, &policy, &universe);
            assert!(report.is_correct(), "hypercube not PC for {query}");
        }
    }

    #[test]
    fn pci_report_lists_missing_facts() {
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let instance = parse_instance("R(a, b). S(b, c). R(c, b). S(b, a).").unwrap();
        let policy = ExplicitPolicy::round_robin(&Network::with_size(4), &instance);
        let report = check_parallel_correctness_on_instance(&query, &policy, &instance);
        assert!(!report.is_correct());
        assert_eq!(report.expected.len(), 4);
        assert!(!report.missing.is_empty());
        assert!(report.expected.contains_all(&report.distributed));
    }

    #[test]
    fn single_node_policies_are_always_parallel_correct() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(z, x).");
        let universe = all_r_facts(&["a", "b"]);
        let mut policy = ExplicitPolicy::new(Network::with_size(1));
        for fact in universe.facts() {
            policy.assign(fact.clone(), [Node::numbered(0)]);
        }
        assert!(check_parallel_correctness(&query, &policy).is_correct());
    }

    #[test]
    fn multi_round_hypercube_closure_matches_the_global_fixpoint() {
        // Hypercube policies are parallel-correct for their query on every
        // instance, so each round preserves the centralized semantics and
        // the iterated run must reach the exact global fixpoint.
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let instance =
            parse_instance("R(a, b). R(b, c). R(c, d). R(d, e). R(e, f). R(b, a).").unwrap();
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();
        let engine = MultiRoundEngine::new(distribution::RoundSchedule::repeat(&policy))
            .rounds(16)
            .feedback_into("R");
        let report = multi_round_correct_on(&query, &engine, &instance);
        assert!(report.is_correct(), "missing: {}", report.missing);
        assert!(report.outcome.converged);
        assert!(report.missing.is_empty());
        assert_eq!(report.outcome.rounds_run(), report.reference_rounds);
        assert_eq!(report.outcome.result, report.expected);
    }

    #[test]
    fn round_capped_multi_round_run_is_reported_incorrect() {
        // Two rounds of squaring cannot close a 8-edge chain, so the capped
        // distributed run falls short of the global fixpoint.
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let text: String = (0..8).map(|i| format!("R(v{i}, v{}).", i + 1)).collect();
        let instance = parse_instance(&text).unwrap();
        let policy = HypercubePolicy::uniform(&query, 2).unwrap();
        let engine = MultiRoundEngine::new(distribution::RoundSchedule::repeat(&policy))
            .rounds(2)
            .feedback_into("R");
        let report = multi_round_correct_on(&query, &engine, &instance);
        assert!(!report.is_correct());
        assert!(!report.outcome.converged);
        assert!(!report.missing.is_empty());
        assert!(report.expected.contains_all(&report.outcome.result));
    }

    #[test]
    fn answer_losing_policy_is_caught_by_the_multi_round_check() {
        // Round-robin splits the joining facts, so even with a generous
        // round cap the distributed run misses fixpoint facts.
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let instance = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let policy = ExplicitPolicy::round_robin(&Network::with_size(3), &instance);
        let engine = MultiRoundEngine::new(distribution::RoundSchedule::repeat(&policy))
            .rounds(8)
            .feedback_into("R");
        let report = multi_round_correct_on(&query, &engine, &instance);
        assert!(!report.is_correct());
        assert!(!report.missing.is_empty());
    }
}
