//! The conditions (C0), (C1), (C2) and (C3) of the paper, as checkable
//! predicates with witnesses.
//!
//! * **(C0)** — for every valuation `V` for `Q`, the facts `V(body_Q)` meet
//!   at some node. Sufficient but not necessary for parallel-correctness.
//! * **(C1)** — the same, restricted to *minimal* valuations. Characterizes
//!   parallel-correctness (Lemma 3.4).
//! * **(C2)** — for every minimal valuation `V'` of `Q'` there is a minimal
//!   valuation `V` of `Q` with `V'(body_{Q'}) ⊆ V(body_Q)`. Characterizes
//!   transferability (Lemma 4.2).
//! * **(C3)** — there are a simplification `θ` of `Q'` and a substitution
//!   `ρ` of `Q` with `body_{θ(Q')} ⊆ body_{ρ(Q)}`. Characterizes
//!   transferability for strongly minimal `Q` (Lemma 4.6) and
//!   parallel-correctness for `Q`-generous, `Q`-scattered families
//!   (Lemma 5.2).
//!
//! The quantification over valuations is made finite as in the paper: (C0)
//! and (C1) are evaluated relative to a finite fact universe (for `Pfin`
//! policies this is `facts(P)`, cf. Lemma B.4), while (C2) uses canonical
//! valuations over a bounded domain (Claim C.4).

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use cq::{
    for_each_atom_mapping, Atom, ConjunctiveQuery, CoverProblem, EvalOptions, Instance,
    Substitution, Valuation, Value, Variable,
};
use delta::IndexCache;
use distribution::DistributionPolicy;

use crate::minimality::is_minimal_valuation_cached;

/// A violation of condition (C1): a minimal valuation whose required facts
/// do not meet at any node.
#[derive(Clone, Debug)]
pub struct C1Violation {
    /// The offending (minimal) valuation.
    pub valuation: Valuation,
    /// Its required facts `V(body_Q)`.
    pub required_facts: Instance,
}

/// Condition (C0) relative to the finite fact universe `universe`:
/// every valuation of `query` whose required facts lie inside `universe`
/// has its facts meeting at some node of `policy`.
pub fn holds_c0<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    universe: &Instance,
) -> bool {
    c0_violation(query, policy, universe).is_none()
}

/// Searches for a violation of (C0) (any satisfying valuation over
/// `universe` whose facts do not meet).
pub fn c0_violation<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    universe: &Instance,
) -> Option<C1Violation> {
    let mut violation = None;
    let _ = cq::for_each_satisfying(
        query,
        universe,
        &Valuation::new(),
        EvalOptions::default(),
        |v| {
            let required = v.required_facts(query);
            if !policy.facts_meet(&required) {
                violation = Some(C1Violation {
                    valuation: v.clone(),
                    required_facts: required,
                });
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    violation
}

/// Condition (C1) relative to the finite fact universe `universe`:
/// every **minimal** valuation of `query` over `universe` has its required
/// facts meeting at some node of `policy` (Lemma 3.4 / Lemma B.4).
pub fn holds_c1<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    universe: &Instance,
) -> bool {
    c1_violation(query, policy, universe).is_none()
}

/// Searches for a violation of (C1).
pub fn c1_violation<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    universe: &Instance,
) -> Option<C1Violation> {
    let mut cache = IndexCache::default();
    c1_violation_cached(query, policy, universe, &mut cache)
}

/// [`c1_violation`] with the per-candidate minimality checks warmed through
/// a caller-owned [`IndexCache`]. The verdict and the witness are identical
/// to the scratch search; only the index work is shared across candidates.
pub fn c1_violation_cached<P: DistributionPolicy + ?Sized>(
    query: &ConjunctiveQuery,
    policy: &P,
    universe: &Instance,
    cache: &mut IndexCache,
) -> Option<C1Violation> {
    let mut violation = None;
    let _ = crate::minimality::for_each_minimal_valuation_cached(query, universe, cache, |v| {
        let required = v.required_facts(query);
        if !policy.facts_meet(&required) {
            violation = Some(C1Violation {
                valuation: v.clone(),
                required_facts: required,
            });
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    violation
}

/// Condition (C2): for every minimal valuation `V'` of `to`, there is a
/// minimal valuation `V` of `from` with `V'(body_{to}) ⊆ V(body_{from})`
/// (Lemma 4.2; `from` is the query parallel-correctness transfers *from*).
pub fn holds_c2(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> bool {
    c2_violation(from, to).is_none()
}

/// Searches for a violation of (C2): a minimal valuation of `to` for which
/// no covering minimal valuation of `from` exists.
pub fn c2_violation(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Valuation> {
    let mut cache = IndexCache::default();
    c2_violation_cached(from, to, &mut cache)
}

/// [`c2_violation`] with every minimality check warmed through a
/// caller-owned [`IndexCache`]. Verdict and witness are identical to the
/// scratch search.
pub fn c2_violation_cached(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    cache: &mut IndexCache,
) -> Option<Valuation> {
    // Canonical enumeration of the valuations of `to` (Claim C.4: equality
    // patterns suffice).
    for v_prime in cq::CanonicalValuations::new(to.variables()) {
        if !is_minimal_valuation_cached(to, &v_prime, cache) {
            continue;
        }
        let target = v_prime.required_facts(to);
        if find_minimal_covering_valuation_cached(from, &target, cache).is_none() {
            return Some(v_prime);
        }
    }
    None
}

/// Whether there is a **minimal** valuation `V` of `query` with
/// `target ⊆ V(body_query)`.
///
/// The search first covers every target fact by some body atom of `query`
/// (binding the constrained variables), then enumerates the remaining
/// variables over the active domain of `target` extended with canonical
/// fresh values, and finally checks minimality of each candidate.
pub fn exists_minimal_covering_valuation(query: &ConjunctiveQuery, target: &Instance) -> bool {
    find_minimal_covering_valuation(query, target).is_some()
}

/// As [`exists_minimal_covering_valuation`], returning the witness.
pub fn find_minimal_covering_valuation(
    query: &ConjunctiveQuery,
    target: &Instance,
) -> Option<Valuation> {
    let mut cache = IndexCache::default();
    find_minimal_covering_valuation_cached(query, target, &mut cache)
}

/// As [`find_minimal_covering_valuation`], with the per-candidate minimality
/// checks warmed through a caller-owned [`IndexCache`].
pub fn find_minimal_covering_valuation_cached(
    query: &ConjunctiveQuery,
    target: &Instance,
    cache: &mut IndexCache,
) -> Option<Valuation> {
    let vars = query.variables();
    let target_facts: Vec<_> = target.facts().cloned().collect();

    // Domain: adom(target) plus |vars(query)| fresh values.
    let mut domain: Vec<Value> = target.adom().into_iter().collect();
    let fresh_base = domain.len();
    for i in 0..vars.len() {
        domain.push(Value::indexed("$fresh", i));
    }

    let mut result: Option<Valuation> = None;
    let mut partial = Valuation::new();
    cover_search(
        query,
        &target_facts,
        0,
        &mut partial,
        &vars,
        &domain,
        fresh_base,
        cache,
        &mut result,
    );
    result
}

/// Backtracking over the target facts: each must be the image of a body atom.
#[allow(clippy::too_many_arguments)]
fn cover_search(
    query: &ConjunctiveQuery,
    target: &[cq::Fact],
    depth: usize,
    partial: &mut Valuation,
    vars: &[Variable],
    domain: &[Value],
    fresh_base: usize,
    cache: &mut IndexCache,
    result: &mut Option<Valuation>,
) {
    if result.is_some() {
        return;
    }
    if depth == target.len() {
        // All target facts covered; enumerate the remaining variables.
        extend_and_check(query, partial, vars, domain, fresh_base, cache, result);
        return;
    }
    let goal = &target[depth];
    'atoms: for atom in query.body() {
        if atom.relation != goal.relation || atom.arity() != goal.arity() {
            continue;
        }
        let mut newly_bound = Vec::new();
        for (&var, &value) in atom.args.iter().zip(goal.values.iter()) {
            match partial.get(var) {
                Some(existing) if existing == value => {}
                Some(_) => {
                    for v in newly_bound {
                        partial.unbind(v);
                    }
                    continue 'atoms;
                }
                None => {
                    partial.bind(var, value);
                    newly_bound.push(var);
                }
            }
        }
        cover_search(
            query,
            target,
            depth + 1,
            partial,
            vars,
            domain,
            fresh_base,
            cache,
            result,
        );
        for v in newly_bound {
            partial.unbind(v);
        }
        if result.is_some() {
            return;
        }
    }
}

/// Enumerates values for the unbound variables (with fresh values used in
/// canonical order to avoid isomorphic duplicates) and records the first
/// minimal candidate valuation.
#[allow(clippy::too_many_arguments)]
fn extend_and_check(
    query: &ConjunctiveQuery,
    partial: &Valuation,
    vars: &[Variable],
    domain: &[Value],
    fresh_base: usize,
    cache: &mut IndexCache,
    result: &mut Option<Valuation>,
) {
    let unbound: Vec<Variable> = vars
        .iter()
        .copied()
        .filter(|v| !partial.binds(*v))
        .collect();

    #[allow(clippy::too_many_arguments)] // depth-first enumerator state, recursive
    fn rec(
        query: &ConjunctiveQuery,
        unbound: &[Variable],
        idx: usize,
        max_fresh_used: usize,
        current: &mut Valuation,
        domain: &[Value],
        fresh_base: usize,
        cache: &mut IndexCache,
        result: &mut Option<Valuation>,
    ) {
        if result.is_some() {
            return;
        }
        if idx == unbound.len() {
            if is_minimal_valuation_cached(query, current, cache) {
                *result = Some(current.clone());
            }
            return;
        }
        let var = unbound[idx];
        // allowed values: all of adom plus fresh values up to max_fresh_used + 1
        let limit = (fresh_base + max_fresh_used + 1).min(domain.len());
        for (i, &value) in domain.iter().enumerate().take(limit) {
            current.bind(var, value);
            let new_max = if i >= fresh_base {
                max_fresh_used.max(i - fresh_base + 1)
            } else {
                max_fresh_used
            };
            rec(
                query,
                unbound,
                idx + 1,
                new_max,
                current,
                domain,
                fresh_base,
                cache,
                result,
            );
            current.unbind(var);
            if result.is_some() {
                return;
            }
        }
    }

    let mut current = partial.clone();
    rec(
        query,
        &unbound,
        0,
        0,
        &mut current,
        domain,
        fresh_base,
        cache,
        result,
    );
}

/// A witness for condition (C3): the simplification `θ` of `Q'` and the
/// substitution `ρ` of `Q` with `body_{θ(Q')} ⊆ body_{ρ(Q)}`.
#[derive(Clone, Debug)]
pub struct C3Witness {
    /// The simplification `θ` of `Q'`.
    pub theta: Substitution,
    /// The substitution `ρ` of `Q`.
    pub rho: Substitution,
}

/// Condition (C3) for the pair (`from` = `Q`, `to` = `Q'`).
pub fn holds_c3(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> bool {
    c3_witness(from, to).is_some()
}

/// Searches for a witness of condition (C3): enumerate simplifications `θ`
/// of `to` (endomorphisms fixing the head with body image inside the body)
/// and, for each, try to cover `body_{θ(to)}` by a substitution image of
/// `body_{from}`.
pub fn c3_witness(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<C3Witness> {
    // Seed: head variables of `to` must be fixed (θ is a simplification).
    let mut seed = Substitution::identity();
    for &v in &to.head().args {
        seed.bind(v, v);
    }
    let mut witness = None;
    let mut seen_bodies: BTreeSet<Vec<Atom>> = BTreeSet::new();
    let _ = for_each_atom_mapping(to.body(), to.body(), &seed, &mut |theta| {
        // θ maps body(to) into body(to) and fixes the head: a simplification.
        let image = theta.apply_atoms(to.body());
        let mut sorted = image.clone();
        sorted.sort();
        if !seen_bodies.insert(sorted) {
            // Another simplification with the same body image was already tried.
            return ControlFlow::Continue(());
        }
        if let Some(rho) = CoverProblem::new(from.body().to_vec(), image).solve() {
            witness = Some(C3Witness {
                theta: theta.clone(),
                rho,
            });
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    witness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimality::is_minimal_valuation;
    use cq::Fact;
    use distribution::{ExplicitPolicy, Network, Node};

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn all_r_facts(values: &[&str]) -> Instance {
        let mut out = Instance::new();
        for x in values {
            for y in values {
                out.insert(Fact::from_names("R", &[x, y]));
            }
        }
        out
    }

    /// The policy of Example 3.5: node 1 gets everything except R(a,b),
    /// node 2 everything except R(b,a).
    fn example_3_5_policy(universe: &Instance) -> ExplicitPolicy {
        let r_ab = Fact::from_names("R", &["a", "b"]);
        let r_ba = Fact::from_names("R", &["b", "a"]);
        let mut policy = ExplicitPolicy::new(Network::with_size(2));
        for fact in universe.facts() {
            let mut nodes = Vec::new();
            if *fact != r_ab {
                nodes.push(Node::numbered(0));
            }
            if *fact != r_ba {
                nodes.push(Node::numbered(1));
            }
            policy.assign(fact.clone(), nodes);
        }
        policy
    }

    #[test]
    fn example_3_5_c0_fails_but_c1_holds() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let universe = all_r_facts(&["a", "b"]);
        let policy = example_3_5_policy(&universe);

        assert!(!holds_c0(&query, &policy, &universe));
        let violation = c0_violation(&query, &policy, &universe).unwrap();
        // the violating valuation requires both R(a,b) and R(b,a)
        assert!(violation
            .required_facts
            .contains(&Fact::from_names("R", &["a", "b"])));
        assert!(violation
            .required_facts
            .contains(&Fact::from_names("R", &["b", "a"])));

        assert!(holds_c1(&query, &policy, &universe));
        assert!(c1_violation(&query, &policy, &universe).is_none());
    }

    #[test]
    fn cached_c1_search_is_byte_identical_to_scratch() {
        // Same witness (valuation AND required facts), not just the same
        // verdict, whether the minimality checks run scratch or through a
        // shared cache — over a family of policies that exercises both the
        // violation and the no-violation paths.
        let queries = [
            q("T(x, z) :- R(x, y), R(y, z)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T() :- R(x, y), R(y, x)."),
        ];
        let universe = all_r_facts(&["a", "b"]);
        let policies = [
            example_3_5_policy(&universe),
            ExplicitPolicy::round_robin(&Network::with_size(4), &universe),
            ExplicitPolicy::broadcast(&Network::with_size(2), &universe),
        ];
        for query in &queries {
            for policy in &policies {
                let scratch = c1_violation(query, policy, &universe);
                let mut cache = IndexCache::default();
                let cached = c1_violation_cached(query, policy, &universe, &mut cache);
                match (scratch, cached) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.valuation, b.valuation, "{query}");
                        assert_eq!(a.required_facts, b.required_facts, "{query}");
                    }
                    (a, b) => panic!("witness mismatch for {query}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn c1_fails_when_a_minimal_valuation_is_split() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let universe = all_r_facts(&["a", "b"]);
        // Round-robin splits R(a,b) and R(b,a) over different nodes, so the
        // minimal valuation x=a,y=b,z=a never meets.
        let policy = ExplicitPolicy::round_robin(&Network::with_size(4), &universe);
        assert!(!holds_c1(&query, &policy, &universe));
        let violation = c1_violation(&query, &policy, &universe).unwrap();
        assert!(is_minimal_valuation(&query, &violation.valuation));
    }

    #[test]
    fn c0_implies_c1() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let universe = all_r_facts(&["a", "b", "c"]);
        let broadcast = ExplicitPolicy::broadcast(&Network::with_size(3), &universe);
        assert!(holds_c0(&query, &broadcast, &universe));
        assert!(holds_c1(&query, &broadcast, &universe));
    }

    #[test]
    fn c2_holds_for_identical_queries() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        assert!(holds_c2(&query, &query));
    }

    #[test]
    fn c2_holds_when_q_prime_is_a_restriction() {
        // Q' asks for paths through a self-loop; Q asks for paths.
        // Every minimal valuation of Q' requires facts that some minimal
        // valuation of Q also requires... here Q' requires MORE facts, so
        // inclusion of Q'-requirements in Q-requirements fails in general.
        let q_paths = q("T(x, z) :- R(x, y), R(y, z).");
        let q_loop = q("T(x, z) :- R(x, y), R(y, z), R(y, y).");
        // from q_loop to q_paths: minimal valuations of q_paths require two
        // facts R(a,b), R(b,c); the q_loop valuation x=a,y=b,z=c requires
        // these plus R(b,b) — so a covering valuation exists and is minimal.
        assert!(holds_c2(&q_loop, &q_paths));
        // from q_paths to q_loop: a minimal valuation of q_loop requires
        // R(a,b),R(b,c),R(b,b); no valuation of q_paths requires a superset
        // that stays minimal? In fact V={x→a,y→b,z→c} of q_paths requires
        // only two facts and can never cover three distinct facts.
        assert!(!holds_c2(&q_paths, &q_loop));
    }

    #[test]
    fn c2_violation_returns_a_minimal_valuation_of_q_prime() {
        let q_paths = q("T(x, z) :- R(x, y), R(y, z).");
        let q_loop = q("T(x, z) :- R(x, y), R(y, z), R(y, y).");
        let violation = c2_violation(&q_paths, &q_loop).unwrap();
        assert!(is_minimal_valuation(&q_loop, &violation));
    }

    #[test]
    fn covering_valuation_search_respects_minimality() {
        // Target facts of the non-minimal Example 3.5 valuation: a covering
        // valuation of the same query exists but is not minimal; the search
        // must reject it (no OTHER minimal valuation covers all three facts).
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let target = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["b", "a"]),
            Fact::from_names("R", &["a", "a"]),
        ]);
        assert!(!exists_minimal_covering_valuation(&query, &target));

        // A single self-loop is covered by the minimal all-equal valuation.
        let small = Instance::from_facts([Fact::from_names("R", &["a", "a"])]);
        let witness = find_minimal_covering_valuation(&query, &small).unwrap();
        assert!(is_minimal_valuation(&query, &witness));
        assert!(witness.required_facts(&query).contains_all(&small));
    }

    #[test]
    fn c3_holds_for_identical_queries() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let witness = c3_witness(&query, &query).unwrap();
        assert!(witness.theta.is_simplification_of(&query));
        // ρ applied to body(Q) must cover θ(body(Q))
        let image = witness.theta.apply_atoms(query.body());
        let covered = witness.rho.apply_atoms(query.body());
        for atom in image {
            assert!(covered.contains(&atom));
        }
    }

    #[test]
    fn c3_for_boolean_queries_with_different_granularity() {
        // Q  : T() :- R(x, y)            (one atom)
        // Q' : T() :- R(u, v), R(v, w)   (two atoms)
        // θ can collapse Q' to a single atom only by unifying u,v,w (giving
        // R(u,u), which is NOT in body(Q') — so θ must keep both atoms);
        // ρ maps the single atom of Q onto one of them but cannot cover both.
        let q1 = q("T() :- R(x, y).");
        let q2 = q("T() :- R(u, v), R(v, w).");
        assert!(!holds_c3(&q1, &q2));
        // The other direction: cover θ(body(Q1)) = {R(x,y)} by ρ(body(Q2)):
        // ρ = identity works since R(u,v) can be renamed onto R(x,y).
        assert!(holds_c3(&q2, &q1));
    }

    #[test]
    fn c3_uses_non_trivial_simplifications() {
        // Q' : T(x) :- R(x, y), R(x, z) simplifies to T(x) :- R(x, y);
        // Q  : T(x) :- R(x, w). Without the simplification the two-atom body
        // cannot be covered by a single-atom image? It can: both atoms map
        // consistently only if y and z both map… actually ρ(R(x,w)) is a
        // single atom and cannot equal both R(x,y) and R(x,z); the θ that
        // collapses z onto y is required.
        let q_from = q("T(x) :- R(x, w).");
        let q_to = q("T(x) :- R(x, y), R(x, z).");
        let witness = c3_witness(&q_from, &q_to).unwrap();
        assert!(!witness.theta.is_identity());
    }
}
