//! Parallel-correctness transfer (Section 4 of the paper).

use std::collections::BTreeMap;

use cq::{ConjunctiveQuery, Instance, Valuation};
use delta::{CacheStats, IndexCache};

use crate::conditions::{c2_violation_cached, c3_witness};
use crate::minimality::is_strongly_minimal;

/// A witness that parallel-correctness does **not** transfer: a minimal
/// valuation of `Q'` whose required facts are not contained in the required
/// facts of any minimal valuation of `Q`. The proof of Lemma 4.2 turns such
/// a valuation into a concrete policy separating the two queries; the
/// separating policy can be rebuilt with
/// [`distribution::ExplicitPolicy::all_but_one`] /
/// [`distribution::ExplicitPolicy::skip_one`] over
/// [`TransferViolation::required_facts`].
#[derive(Clone, Debug)]
pub struct TransferViolation {
    /// The minimal valuation of `Q'` that no minimal valuation of `Q` covers.
    pub valuation: Valuation,
    /// Its required facts `V'(body_{Q'})`.
    pub required_facts: Instance,
}

/// The result of a transferability check from `Q` to `Q'`.
#[derive(Clone, Debug)]
pub struct TransferReport {
    /// Whether parallel-correctness transfers from `Q` to `Q'`.
    pub transfers: bool,
    /// Which decision procedure was used (`"C2"` or `"C3"`).
    pub method: &'static str,
    /// A violation witness when transfer fails.
    pub violation: Option<TransferViolation>,
    /// Hit/miss counters of the [`IndexCache`] the minimality checks warmed
    /// their candidate instances through (all zero for the syntactic C3
    /// procedure, which evaluates no instances).
    pub cache: CacheStats,
}

impl TransferReport {
    /// Whether parallel-correctness transfers.
    pub fn transfers(&self) -> bool {
        self.transfers
    }

    /// The index-cache counters accumulated while deciding the verdict.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }
}

/// Decides whether parallel-correctness transfers from `from` to `to`
/// (Definition 4.1) using the semantic characterization by condition (C2)
/// (Lemma 4.2). This is the general, ΠP3-complete problem (Theorem 4.3).
pub fn check_transfer(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> TransferReport {
    let mut cache = IndexCache::default();
    let violation = c2_violation_cached(from, to, &mut cache);
    match violation {
        None => TransferReport {
            transfers: true,
            method: "C2",
            violation: None,
            cache: cache.stats(),
        },
        Some(valuation) => {
            let required_facts = valuation.required_facts(to);
            TransferReport {
                transfers: false,
                method: "C2",
                violation: Some(TransferViolation {
                    valuation,
                    required_facts,
                }),
                cache: cache.stats(),
            }
        }
    }
}

/// Decides transferability from a **strongly minimal** query `from` to `to`
/// using condition (C3) (Lemma 4.6) — the NP procedure of Theorem 4.7.
///
/// # Panics
///
/// Panics (in debug builds) if `from` is not strongly minimal; the
/// characterization by (C3) is only valid for strongly minimal `from`.
pub fn check_transfer_strongly_minimal(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
) -> TransferReport {
    debug_assert!(
        is_strongly_minimal(from),
        "check_transfer_strongly_minimal requires a strongly minimal source query"
    );
    let transfers = c3_witness(from, to).is_some();
    TransferReport {
        transfers,
        method: "C3",
        violation: None,
        cache: CacheStats::default(),
    }
}

/// Decides transferability in the setting of Remark C.3 of the paper, where
/// distribution policies are **not allowed to skip facts** (every fact is
/// sent to at least one node).
///
/// In that setting the characterization (C2) relaxes to (C2'): a minimal
/// valuation `V'` of `Q'` that requires only a **single** fact never needs a
/// covering valuation of `Q`, because a non-skipping policy always places
/// that single fact somewhere.
pub fn check_transfer_no_skip(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> TransferReport {
    // Same canonical enumeration as the (C2) check, but single-fact
    // requirements are exempted.
    let mut cache = IndexCache::default();
    for v_prime in cq::CanonicalValuations::new(to.variables()) {
        if !crate::minimality::is_minimal_valuation_cached(to, &v_prime, &mut cache) {
            continue;
        }
        let target = v_prime.required_facts(to);
        if target.len() <= 1 {
            continue;
        }
        if crate::conditions::find_minimal_covering_valuation_cached(from, &target, &mut cache)
            .is_none()
        {
            return TransferReport {
                transfers: false,
                method: "C2'",
                violation: Some(TransferViolation {
                    valuation: v_prime,
                    required_facts: target,
                }),
                cache: cache.stats(),
            };
        }
    }
    TransferReport {
        transfers: true,
        method: "C2'",
        violation: None,
        cache: cache.stats(),
    }
}

/// Memoizes [`check_transfer`] verdicts per `(from, to)` query pair — the
/// runtime face of the transfer decider.
///
/// The multi-query engine (`distribution::MultiRoundEngine::
/// evaluate_queries`) consults transferability at every query boundary
/// where shards are resident; a workload cycling through a handful of
/// queries would otherwise re-run the ΠP3-hard (C2) decision procedure for
/// the same pair over and over. The cache is keyed by the queries'
/// canonical printed form (equal queries print equally), stores only the
/// boolean verdict, and adapts directly to the engine's
/// `TransferOracle` signature:
///
/// ```ignore
/// let mut cache = TransferCache::new();
/// engine.evaluate_queries(&queries, &instance, &mut |p, q| cache.transfers(p, q));
/// ```
#[derive(Debug, Default)]
pub struct TransferCache {
    verdicts: BTreeMap<(String, String), bool>,
    hits: usize,
    misses: usize,
}

impl TransferCache {
    /// An empty cache.
    pub fn new() -> TransferCache {
        TransferCache::default()
    }

    /// Whether parallel-correctness transfers from `from` to `to`,
    /// deciding via [`check_transfer`] on the first ask and replaying the
    /// memoized verdict afterwards.
    pub fn transfers(&mut self, from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> bool {
        let key = (from.to_string(), to.to_string());
        if let Some(&verdict) = self.verdicts.get(&key) {
            self.hits += 1;
            return verdict;
        }
        self.misses += 1;
        let verdict = check_transfer(from, to).transfers();
        self.verdicts.insert(key, verdict);
        verdict
    }

    /// How many asks were answered from the memo.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// How many asks actually ran the decision procedure.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

/// Brute-force cross-check used in tests: verifies the *only-if* direction of
/// transferability on the concrete separating policy built by Lemma 4.2's
/// proof. Given a transfer violation for `(from, to)`, returns `true` when
/// the constructed policy indeed witnesses non-transferability (i.e. `from`
/// is parallel-correct under it while `to` is not).
pub fn violation_separates(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    violation: &TransferViolation,
) -> bool {
    use distribution::ExplicitPolicy;

    let facts: Vec<_> = violation.required_facts.facts().cloned().collect();
    if facts.is_empty() {
        return false;
    }
    let policy = if facts.len() == 1 {
        ExplicitPolicy::skip_one(&violation.required_facts, &facts[0])
    } else {
        ExplicitPolicy::all_but_one(&facts)
    };
    // `from` must stay parallel-correct on every instance over the facts of
    // the violation, while `to` must fail on the violation instance itself.
    let from_ok = violation
        .required_facts
        .subsets()
        .iter()
        .all(|i| crate::pc::check_parallel_correctness_on_instance(from, &policy, i).correct);
    let to_fails =
        !crate::pc::check_parallel_correctness_on_instance(to, &policy, &violation.required_facts)
            .correct;
    from_ok && to_fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn no_skip_transfer_is_implied_by_general_transfer() {
        // (C2) implies (C2'): whenever transfer holds for arbitrary policies
        // it holds for non-skipping ones; the converse can fail exactly on
        // single-fact requirements (Remark C.3).
        let pairs = [
            (
                "T(x, z) :- R(x, y), R(y, z), R(y, y).",
                "U(x, z) :- R(x, y), R(y, z).",
            ),
            ("T(x, y) :- R(x, y).", "U(x) :- R(x, x)."),
            (
                "T(x, z) :- R(x, y), R(y, z).",
                "U(x, z) :- R(x, y), R(y, z), R(y, y).",
            ),
            ("T(x, y) :- R(x, y).", "U(x) :- S(x, x)."),
        ];
        for (from_text, to_text) in pairs {
            let from = q(from_text);
            let to = q(to_text);
            let general = check_transfer(&from, &to).transfers();
            let no_skip = check_transfer_no_skip(&from, &to).transfers();
            assert!(!general || no_skip, "{from_text} => {to_text}");
        }
    }

    #[test]
    fn no_skip_transfer_differs_exactly_on_single_fact_requirements() {
        // Q' = U(x) :- S(x, x) requires a single S-fact; Q never touches S.
        // With skipping policies transfer fails (the policy can drop the
        // S-fact); with non-skipping policies it holds (Remark C.3).
        let from = q("T(x, y) :- R(x, y).");
        let to = q("U(x) :- S(x, x).");
        assert!(!check_transfer(&from, &to).transfers());
        assert!(check_transfer_no_skip(&from, &to).transfers());

        // A two-fact requirement over a foreign relation still fails in both
        // settings.
        let to2 = q("U(x, y) :- S(x, y), S(y, x).");
        assert!(!check_transfer(&from, &to2).transfers());
        let report = check_transfer_no_skip(&from, &to2);
        assert!(!report.transfers());
        assert_eq!(report.method, "C2'");
        assert!(report.violation.unwrap().required_facts.len() >= 2);
    }

    #[test]
    fn shared_cache_transfer_reports_are_byte_identical_to_scratch() {
        // The long-lived cache threaded through the C2 search must not
        // change the verdict, the witness valuation, or its required facts
        // relative to a per-candidate scratch enumeration.
        let pairs = [
            (
                "T(x, z) :- R(x, y), R(y, z).",
                "T(x, z) :- R(x, y), R(y, z).",
            ),
            (
                "T(x, z) :- R(x, y), R(y, z).",
                "T(x, z) :- R(x, y), R(y, z), R(y, y).",
            ),
            (
                "T(x, z) :- R(x, y), R(y, z), R(y, y).",
                "T(x, z) :- R(x, y), R(y, z).",
            ),
            ("T(x, y) :- R(x, y).", "U(x) :- R(x, y), S(y, x)."),
            (
                "T(x, z) :- R(x, y), R(y, z), R(x, x).",
                "T(x, z) :- R(x, y), R(y, z).",
            ),
        ];
        for (from_text, to_text) in pairs {
            let from = q(from_text);
            let to = q(to_text);
            // Scratch reference: the same canonical enumeration with a fresh
            // cache for every candidate (i.e. no sharing across candidates).
            let mut scratch = None;
            for v_prime in cq::CanonicalValuations::new(to.variables()) {
                if !crate::minimality::is_minimal_valuation(&to, &v_prime) {
                    continue;
                }
                let target = v_prime.required_facts(&to);
                if crate::conditions::find_minimal_covering_valuation(&from, &target).is_none() {
                    scratch = Some(v_prime);
                    break;
                }
            }
            let report = check_transfer(&from, &to);
            assert_eq!(
                report.transfers(),
                scratch.is_none(),
                "{from_text} => {to_text}"
            );
            match (report.violation, scratch) {
                (None, None) => {}
                (Some(violation), Some(expected)) => {
                    assert_eq!(violation.valuation, expected, "{from_text} => {to_text}");
                    assert_eq!(
                        violation.required_facts,
                        expected.required_facts(&to),
                        "{from_text} => {to_text}"
                    );
                }
                (got, want) => {
                    panic!("witness mismatch for {from_text} => {to_text}: {got:?} vs {want:?}")
                }
            }
        }
    }

    #[test]
    fn transfer_cache_memoizes_verdicts() {
        let q_loop = q("T(x, z) :- R(x, y), R(y, z), R(y, y).");
        let q_path = q("T(x, z) :- R(x, y), R(y, z).");
        let mut cache = TransferCache::new();
        // First asks decide; repeats replay.
        assert!(cache.transfers(&q_loop, &q_path));
        assert!(!cache.transfers(&q_path, &q_loop));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.transfers(&q_loop, &q_path));
        assert!(!cache.transfers(&q_path, &q_loop));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        // Direction matters in the key; verdicts agree with the decider.
        for (from, to) in [(&q_loop, &q_path), (&q_path, &q_loop)] {
            assert_eq!(
                cache.transfers(from, to),
                check_transfer(from, to).transfers()
            );
        }
    }

    #[test]
    fn transfer_is_reflexive() {
        let queries = [
            q("T(x, z) :- R(x, y), R(y, z)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T() :- R(x, y), R(y, x)."),
        ];
        for query in &queries {
            assert!(check_transfer(query, query).transfers(), "{query}");
        }
    }

    #[test]
    fn transfer_from_more_demanding_to_less_demanding_query() {
        // Q requires a path plus a self-loop on the middle; Q' only the path.
        // Every minimal valuation of Q' is covered by a minimal valuation of Q.
        let q_loop = q("T(x, z) :- R(x, y), R(y, z), R(y, y).");
        let q_path = q("T(x, z) :- R(x, y), R(y, z).");
        assert!(check_transfer(&q_loop, &q_path).transfers());
        // The converse fails.
        let report = check_transfer(&q_path, &q_loop);
        assert!(!report.transfers());
        let violation = report.violation.unwrap();
        // Lemma 4.2's proof: the violation yields a concrete separating policy.
        assert!(violation_separates(&q_path, &q_loop, &violation));
    }

    #[test]
    fn strongly_minimal_path_queries_c3_agrees_with_c2() {
        // Both queries are full/self-join-free (strongly minimal), so the
        // C3-based NP procedure must agree with the general C2 procedure.
        let pairs = [
            (
                q("T(x, y, z) :- R(x, y), S(y, z)."),
                q("T(x, y, z) :- R(x, y), S(y, z)."),
            ),
            (
                q("T(x, y, z) :- R(x, y), S(y, z)."),
                q("U(x, y) :- R(x, y)."),
            ),
            (
                q("U(x, y) :- R(x, y)."),
                q("T(x, y, z) :- R(x, y), S(y, z)."),
            ),
            (
                q("T(x, y) :- R(x, y), S(y, x)."),
                q("U(x) :- R(x, x), S(x, x)."),
            ),
        ];
        for (from, to) in &pairs {
            assert!(is_strongly_minimal(from));
            let general = check_transfer(from, to).transfers();
            let fast = check_transfer_strongly_minimal(from, to).transfers();
            assert_eq!(general, fast, "C2 vs C3 disagree for {from} => {to}");
        }
    }

    #[test]
    fn transfer_to_a_query_with_extra_relations_fails() {
        // Q' uses a relation S that Q never binds: its minimal valuations
        // require S-facts that no valuation of Q can provide.
        let from = q("T(x, y) :- R(x, y).");
        let to = q("U(x) :- R(x, y), S(y, x).");
        let report = check_transfer(&from, &to);
        assert!(!report.transfers());
        let violation = report.violation.unwrap();
        assert!(violation
            .required_facts
            .facts()
            .any(|f| f.relation == cq::Symbol::new("S")));
        assert!(violation_separates(&from, &to, &violation));
    }

    #[test]
    fn transfer_between_structurally_different_but_compatible_queries() {
        // Q covers single edges and Q' asks only for self-loops: every
        // minimal valuation of Q' (a self-loop fact) is covered by the
        // minimal valuation of Q mapping both variables to the same value.
        let from = q("T(x, y) :- R(x, y).");
        let to = q("U(x) :- R(x, x).");
        assert!(check_transfer(&from, &to).transfers());
        assert!(check_transfer_strongly_minimal(&from, &to).transfers());
    }

    #[test]
    fn self_join_free_queries_transfer_iff_relations_cover() {
        let from = q("T(x, y, z) :- R(x, y), S(y, z).");
        let to_subset = q("U(x, y) :- R(x, y).");
        let to_superset = q("U(x, y, z, w) :- R(x, y), S(y, z), V(z, w).");
        assert!(check_transfer(&from, &to_subset).transfers());
        assert!(!check_transfer(&from, &to_superset).transfers());
    }

    #[test]
    fn example_3_5_query_transfer_behaviour() {
        // The Example 3.5 query is minimal but not strongly minimal; the
        // general C2 check applies. Transfer to the plain path query fails:
        // the path valuation {x↦a, y↦b, z↦a} is minimal and requires
        // {R(a,b), R(b,a)}, but every valuation of the Example 3.5 query
        // whose required facts contain that pair also requires a self-loop
        // and is then *not* minimal (Example 3.5 itself), so no minimal
        // covering valuation exists.
        let q35 = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let path = q("T(x, z) :- R(x, y), R(y, z).");
        let report = check_transfer(&q35, &path);
        assert!(!report.transfers());
        let violation = report.violation.unwrap();
        assert_eq!(violation.required_facts.len(), 2);
        assert!(violation_separates(&q35, &path, &violation));

        // The converse also fails: minimal Q35-valuations can require three
        // facts, which no path valuation (at most two required facts) covers.
        let back = check_transfer(&path, &q35);
        assert!(!back.transfers());
        let violation = back.violation.unwrap();
        assert!(violation_separates(&path, &q35, &violation));
    }
}
