//! Semi-naive versus full re-evaluation on TC-style feedback workloads.
//!
//! The multi-round engine's incremental mode ships per-round deltas and
//! evaluates one differential pass per node instead of re-joining the
//! accumulated instance every round. This bench measures both modes on
//! transitive-closure-by-squaring workloads (the shapes with the most
//! late-round re-derivation) and, after timing, asserts and prints the
//! late-round *work* reduction: cumulative fact-assignments shipped (the
//! joined-tuple proxy) must shrink in incremental mode while the results
//! stay identical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{ConjunctiveQuery, Fact, Instance, Value};
use distribution::{HypercubePolicy, MultiRoundEngine, RoundSchedule};
use workloads::InstanceParams;

fn square_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
}

/// A chain with optional random chords: pure chains close in log-many
/// rounds; chords thicken the mid-run deltas.
fn closure_instance(vertices: usize, extra: usize) -> Instance {
    let mut out = Instance::new();
    for i in 0..vertices - 1 {
        out.insert(Fact::new(
            "R",
            vec![Value::indexed("v", i), Value::indexed("v", i + 1)],
        ));
    }
    if extra > 0 {
        let mut rng = StdRng::seed_from_u64(7);
        let sample = workloads::random_instance(
            &mut rng,
            &square_query().schema(),
            InstanceParams {
                domain_size: vertices,
                facts_per_relation: extra,
            },
        );
        out.extend(sample.facts().cloned());
    }
    out
}

fn engine(policy: &HypercubePolicy) -> MultiRoundEngine<'_> {
    MultiRoundEngine::new(RoundSchedule::repeat(policy))
        .rounds(16)
        .feedback_into("R")
}

fn bench_seminaive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_seminaive");
    group.sample_size(10);
    let q = square_query();
    let shapes = [("chain48", 48usize, 0usize), ("chords", 32, 200)];
    for (name, vertices, extra) in shapes {
        let instance = closure_instance(vertices, extra);
        let policy = HypercubePolicy::uniform(&q, 2).unwrap();
        group.bench_with_input(BenchmarkId::new("full_reeval", name), &instance, |b, i| {
            b.iter(|| {
                let outcome = engine(&policy).evaluate(&q, i);
                assert!(outcome.converged);
                outcome.result.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", name), &instance, |b, i| {
            b.iter(|| {
                let outcome = engine(&policy).semi_naive(true).evaluate(&q, i);
                assert!(outcome.converged);
                outcome.result.len()
            })
        });
    }
    group.finish();

    // The work proxy, measured outside the timing loops: identical results,
    // strictly less shipped per late round, less shipped overall.
    for (name, vertices, extra) in shapes {
        let instance = closure_instance(vertices, extra);
        let policy = HypercubePolicy::uniform(&q, 2).unwrap();
        let full = engine(&policy).evaluate(&q, &instance);
        let semi = engine(&policy).semi_naive(true).evaluate(&q, &instance);
        assert_eq!(full.result, semi.result, "{name}: modes diverged");
        assert_eq!(full.rounds_run(), semi.rounds_run());
        assert!(
            semi.total_comm_volume() < full.total_comm_volume(),
            "{name}: semi-naive must ship fewer fact-assignments"
        );
        for (round, (s, f)) in semi.rounds.iter().zip(&full.rounds).enumerate().skip(1) {
            assert!(
                s.stats.total_assigned < f.stats.total_assigned,
                "{name} round {round}: delta {} >= full {}",
                s.stats.total_assigned,
                f.stats.total_assigned
            );
        }
        println!(
            "{name}: shipped fact-assignments over {} rounds: full={} semi-naive={} ({:.1}x less)",
            full.rounds_run(),
            full.total_comm_volume(),
            semi.total_comm_volume(),
            full.total_comm_volume() as f64 / semi.total_comm_volume().max(1) as f64
        );
    }
}

criterion_group!(benches, bench_seminaive_closure);
criterion_main!(benches);
