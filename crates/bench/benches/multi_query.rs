//! Multi-query runs: transferability-driven reshuffle elision against the
//! reshuffle-always baseline.
//!
//! Criterion times the in-memory engine on every named query sequence in
//! both modes (the elision saves whole distribute phases, so `elide` must
//! not be slower). After the timing loops the same sequences run over a
//! real `ProcessTransport`, and the bench asserts the headline property:
//! the elided run ships **strictly fewer bytes** on the wire than the
//! reshuffle-always baseline while producing identical answers.
//!
//! Requires the `pcq-analyze` binary next to the bench profile's target
//! directory (`cargo build --release` first) for the comm-bytes gate;
//! skips that part with a note otherwise.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{ConjunctiveQuery, Instance};
use distribution::{MultiRoundEngine, RoundSchedule};
use pc_core::TransferCache;
use wire::ProcessTransport;
use workloads::{
    named_query_sequence, query_sequence_names, total_broadcast_policy, InstanceParams,
};

/// One instance covering every relation any query of the sequence reads:
/// the union of per-query generations under one seed, so shared relations
/// get identical facts.
fn instance_for(queries: &[ConjunctiveQuery]) -> Instance {
    let mut all = Instance::new();
    for query in queries {
        let mut rng = StdRng::seed_from_u64(29);
        all = all.union(&workloads::random_instance(
            &mut rng,
            &query.schema(),
            InstanceParams {
                domain_size: 12,
                facts_per_relation: 120,
            },
        ));
    }
    all
}

/// Locates the freshly built `pcq-analyze` by walking up from the bench
/// executable to the cargo target profile directory.
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .map(|dir| dir.join("pcq-analyze"))
        .find(|candidate| candidate.exists())
}

fn bench_multi_query(c: &mut Criterion) {
    let policy = total_broadcast_policy(4).unwrap();

    let mut group = c.benchmark_group("multi_query");
    group.sample_size(10);
    for name in query_sequence_names() {
        let queries = named_query_sequence(name).unwrap();
        let instance = instance_for(&queries);
        for (label, always) in [("elide", false), ("reshuffle_always", true)] {
            group.bench_with_input(BenchmarkId::new(label, name), &queries, |b, queries| {
                b.iter(|| {
                    let mut cache = TransferCache::new();
                    MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                        .rounds(4)
                        .reshuffle_always(always)
                        .evaluate_queries(queries, &instance, &mut |p, q| cache.transfers(p, q))
                })
            });
        }
    }
    group.finish();

    // Outside the timing loops: on real wire frames the elided run must
    // ship strictly fewer bytes than the baseline, with identical answers.
    let Some(binary) = worker_binary() else {
        eprintln!(
            "multi_query bench: pcq-analyze binary not found; run `cargo build --release` \
             first — skipping the comm-bytes gate"
        );
        return;
    };
    for name in query_sequence_names() {
        let queries = named_query_sequence(name).unwrap();
        let instance = instance_for(&queries);
        let mut transport =
            ProcessTransport::spawn_command(binary.clone(), &["worker".to_string()], 2)
                .expect("cannot spawn workers");
        let mut cache = TransferCache::new();
        let mut run = |always: bool, transport: &mut ProcessTransport| {
            MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                .rounds(4)
                .reshuffle_always(always)
                .evaluate_queries_via(transport, &queries, &instance, &mut |p, q| {
                    cache.transfers(p, q)
                })
                .expect("wire multi-query run failed")
        };
        let baseline = run(true, &mut transport);
        let elided = run(false, &mut transport);
        assert!(
            elided.elided_reshuffles() >= 1,
            "{name}: no reshuffle was elided — the gate compares nothing"
        );
        for (b, e) in baseline.per_query.iter().zip(&elided.per_query) {
            assert_eq!(e.result, b.result, "{name}: elision changed the answers");
        }
        println!(
            "{name}: elide={} bytes, reshuffle-always={} bytes ({:.2}x)",
            elided.total_comm_bytes(),
            baseline.total_comm_bytes(),
            baseline.total_comm_bytes() as f64 / elided.total_comm_bytes().max(1) as f64
        );
        assert!(
            elided.total_comm_bytes() < baseline.total_comm_bytes(),
            "{name}: elided run shipped {} bytes, baseline {}",
            elided.total_comm_bytes(),
            baseline.total_comm_bytes()
        );
    }
}

criterion_group!(benches, bench_multi_query);
criterion_main!(benches);
