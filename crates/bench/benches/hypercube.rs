//! Experiments E6/E8 — Hypercube distributions.
//!
//! * `family_transfer`: deciding parallel-correctness for a Hypercube family
//!   via condition (C3) (Corollary 5.8).
//! * `one_round_eval`: the simulated one-round evaluation of the triangle
//!   query under Hypercube policies of growing cluster size, on uniform and
//!   skewed data, versus the centralized evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::Schema;
use distribution::{HypercubePolicy, OneRoundEngine};
use pc_core::hypercube_parallel_correct;
use workloads::{triangle_query, InstanceParams};

fn bench_family_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_transfer");
    group.sample_size(20);
    let anchor = triangle_query();
    let candidates = [
        ("edge", "U(x, y) :- E(x, y)."),
        ("wedge", "U(x, z) :- E(x, y), E(y, z)."),
        (
            "square",
            "U(x, y, z, w) :- E(x, y), E(y, z), E(z, w), E(w, x).",
        ),
    ];
    for (name, text) in candidates {
        let q_prime = cq::ConjunctiveQuery::parse(text).unwrap();
        group.bench_with_input(BenchmarkId::new("c3", name), &q_prime, |b, q| {
            b.iter(|| hypercube_parallel_correct(&anchor, q).parallel_correct)
        });
    }
    group.finish();
}

fn bench_one_round_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_round_eval");
    group.sample_size(10);
    let query = triangle_query();
    let schema = Schema::from_relations([("E", 2)]);
    let mut rng = StdRng::seed_from_u64(5);
    let params = InstanceParams {
        domain_size: 25,
        facts_per_relation: 300,
    };
    let uniform = workloads::random_instance(&mut rng, &schema, params);
    let skewed = workloads::zipf_instance(&mut rng, &schema, params, 1.2);

    group.bench_function("centralized_uniform", |b| {
        b.iter(|| cq::evaluate(&query, &uniform).len())
    });
    for buckets in [1usize, 2, 3] {
        let policy = HypercubePolicy::uniform(&query, buckets).unwrap();
        group.bench_with_input(
            BenchmarkId::new("hypercube_uniform", buckets),
            &policy,
            |b, p| {
                b.iter(|| {
                    OneRoundEngine::new(p)
                        .evaluate(&query, &uniform)
                        .result
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hypercube_skewed", buckets),
            &policy,
            |b, p| {
                b.iter(|| {
                    OneRoundEngine::new(p)
                        .evaluate(&query, &skewed)
                        .result
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_family_transfer, bench_one_round_eval);
criterion_main!(benches);
