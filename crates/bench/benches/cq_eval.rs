//! Ablation — the conjunctive-query evaluator: cost-aware join ordering
//! versus naive source order, index-backed candidate retrieval versus
//! full-relation scans, and core computation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::ops::ControlFlow;

use cq::{for_each_satisfying, ConjunctiveQuery, EvalOptions, Instance, JoinOrdering, Valuation};
use workloads::{chain_query, star_query, triangle_query, InstanceParams};

/// The four query shapes of the join-ordering ablation. `two_hop` joins a
/// large R against a small S, so source order is a genuinely bad plan.
fn shapes() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        ("triangle", triangle_query()),
        ("chain4", chain_query(4)),
        ("star4", star_query(4)),
        (
            "two_hop",
            ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap(),
        ),
    ]
}

fn instance_for(query: &ConjunctiveQuery, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    workloads::random_instance(
        &mut rng,
        &query.schema(),
        InstanceParams {
            domain_size: 20,
            facts_per_relation: 250,
        },
    )
}

/// Counts satisfying valuations through the streaming API, so the benchmark
/// times the backtracking search rather than valuation materialization.
fn count_valuations(query: &ConjunctiveQuery, instance: &Instance, opts: EvalOptions) -> usize {
    let mut count = 0usize;
    let _ = for_each_satisfying(query, instance, &Valuation::new(), opts, |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    count
}

fn bench_join_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_ordering");
    group.sample_size(10);
    for (name, query) in &shapes() {
        let mut instance = instance_for(query, 7);
        if *name == "two_hop" {
            // shrink S so plan choice matters: a good plan starts at S
            let small = Instance::from_facts(
                instance
                    .facts()
                    .filter(|f| f.relation != cq::Symbol::new("S"))
                    .cloned()
                    .chain(
                        instance
                            .facts_of(cq::Symbol::new("S"))
                            .iter()
                            .take(10)
                            .cloned(),
                    ),
            );
            instance = small;
        }
        group.bench_with_input(BenchmarkId::new("greedy", name), &instance, |b, i| {
            b.iter(|| {
                count_valuations(
                    query,
                    i,
                    EvalOptions {
                        ordering: JoinOrdering::CostAware,
                        ..EvalOptions::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &instance, |b, i| {
            b.iter(|| {
                count_valuations(
                    query,
                    i,
                    EvalOptions {
                        ordering: JoinOrdering::Naive,
                        ..EvalOptions::default()
                    },
                )
            })
        });
    }
    group.finish();
}

/// Index-backed candidate retrieval versus the seed full-relation scan, both
/// under the default cost-aware ordering, on the large workload instances.
fn bench_eval_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_backend");
    group.sample_size(10);
    for (name, query) in &shapes() {
        let instance = instance_for(query, 11);
        group.bench_with_input(BenchmarkId::new("indexed", name), &instance, |b, i| {
            b.iter(|| {
                count_valuations(
                    query,
                    i,
                    EvalOptions {
                        ordering: JoinOrdering::CostAware,
                        ..EvalOptions::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", name), &instance, |b, i| {
            b.iter(|| count_valuations(query, i, EvalOptions::scan_naive()))
        });
    }
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_minimization");
    group.sample_size(20);
    let queries = [
        ("star5", workloads::star_query(5)),
        ("star8", workloads::star_query(8)),
        (
            "redundant_mix",
            ConjunctiveQuery::parse(
                "T(x) :- R(x, y), R(y, y), R(z, z), R(u, u), R(x, w), R(w, w).",
            )
            .unwrap(),
        ),
    ];
    for (name, query) in &queries {
        group.bench_with_input(BenchmarkId::new("minimize", *name), query, |b, q| {
            b.iter(|| cq::minimize(q).core.body_size())
        });
        group.bench_with_input(BenchmarkId::new("is_minimal", *name), query, |b, q| {
            b.iter(|| cq::is_minimal(q))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_ordering,
    bench_eval_backend,
    bench_minimization
);
criterion_main!(benches);
