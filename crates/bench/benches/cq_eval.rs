//! Ablation — the conjunctive-query evaluator: greedy join ordering versus
//! naive source order, and core computation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{satisfying_valuations_with, ConjunctiveQuery, EvalOptions, Valuation};
use workloads::{chain_query, triangle_query, InstanceParams};

fn bench_join_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_ordering");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<(&str, ConjunctiveQuery)> =
        vec![("triangle", triangle_query()), ("chain4", chain_query(4))];
    for (name, query) in &queries {
        let instance = workloads::random_instance(
            &mut rng,
            &query.schema(),
            InstanceParams {
                domain_size: 20,
                facts_per_relation: 250,
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy", name), &instance, |b, i| {
            b.iter(|| {
                satisfying_valuations_with(
                    query,
                    i,
                    &Valuation::new(),
                    EvalOptions {
                        greedy_ordering: true,
                    },
                )
                .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &instance, |b, i| {
            b.iter(|| {
                satisfying_valuations_with(
                    query,
                    i,
                    &Valuation::new(),
                    EvalOptions {
                        greedy_ordering: false,
                    },
                )
                .len()
            })
        });
    }
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_minimization");
    group.sample_size(20);
    let queries = [
        ("star5", workloads::star_query(5)),
        ("star8", workloads::star_query(8)),
        (
            "redundant_mix",
            ConjunctiveQuery::parse(
                "T(x) :- R(x, y), R(y, y), R(z, z), R(u, u), R(x, w), R(w, w).",
            )
            .unwrap(),
        ),
    ];
    for (name, query) in &queries {
        group.bench_with_input(BenchmarkId::new("minimize", *name), query, |b, q| {
            b.iter(|| cq::minimize(q).core.body_size())
        });
        group.bench_with_input(BenchmarkId::new("is_minimal", *name), query, |b, q| {
            b.iter(|| cq::is_minimal(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_ordering, bench_minimization);
criterion_main!(benches);
