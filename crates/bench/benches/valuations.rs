//! Ablation — canonical (partition-based) valuation enumeration versus the
//! full odometer enumeration over an explicit domain, and the cost of the
//! minimal-valuation test that underlies every decision procedure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cq::{all_assignments, partition_assignments, Valuation, Value};
use pc_core::is_minimal_valuation;
use workloads::{chain_query, example_3_5_query};

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("valuation_enumeration");
    group.sample_size(20);
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("canonical_partitions", n), &n, |b, &n| {
            b.iter(|| partition_assignments(n).len())
        });
        group.bench_with_input(BenchmarkId::new("full_odometer", n), &n, |b, &n| {
            b.iter(|| all_assignments(n, n).len())
        });
    }
    group.finish();
}

fn bench_minimality_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("valuation_minimality");
    group.sample_size(20);

    let q35 = example_3_5_query();
    let non_minimal = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
    let minimal = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "c")]);
    group.bench_function("example_3_5_non_minimal", |b| {
        b.iter(|| is_minimal_valuation(&q35, &non_minimal))
    });
    group.bench_function("example_3_5_minimal", |b| {
        b.iter(|| is_minimal_valuation(&q35, &minimal))
    });

    for len in [3usize, 5, 7] {
        let chain = chain_query(len);
        let vars = chain.variables();
        // the "all distinct" valuation: the most expensive minimality check
        let valuation = Valuation::from_pairs(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, Value::indexed("d", i))),
        );
        group.bench_with_input(
            BenchmarkId::new("chain_injective", len),
            &valuation,
            |b, v| b.iter(|| is_minimal_valuation(&chain, v)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_minimality_check);
criterion_main!(benches);
