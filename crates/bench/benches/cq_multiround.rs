//! Multi-round evaluation and the reshuffle-path ablation: materialized
//! versus parallel versus streaming distribute, and the iterated
//! (transitive-closure) engine end to end.
//!
//! Besides timings, the bench prints the `peak_chunks` allocation proxy of
//! the streaming versus materialized engine paths (owned chunks alive at
//! once) and asserts that streaming keeps it bounded by the worker-pool
//! size rather than the network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{ConjunctiveQuery, Fact, Instance, Value};
use distribution::{
    DistributionPolicy, HypercubePolicy, MultiRoundEngine, OneRoundEngine, RoundSchedule,
};
use workloads::InstanceParams;

fn square_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
}

/// A chain with extra random chords: enough structure for several squaring
/// rounds, enough facts for the reshuffle phase to be measurable.
fn closure_instance(vertices: usize, extra: usize) -> Instance {
    let mut out = Instance::new();
    for i in 0..vertices - 1 {
        out.insert(Fact::new(
            "R",
            vec![Value::indexed("v", i), Value::indexed("v", i + 1)],
        ));
    }
    let mut rng = StdRng::seed_from_u64(42);
    let sample = workloads::random_instance(
        &mut rng,
        &square_query().schema(),
        InstanceParams {
            domain_size: vertices,
            facts_per_relation: extra,
        },
    );
    out.extend(sample.facts().cloned());
    out
}

/// How many threads the machine actually has: the parallel-reshuffle bench
/// compares against this pool size, so a single-core CI box degenerates to
/// the sequential path instead of paying for useless thread spawns.
fn machine_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn bench_distribute_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribute");
    group.sample_size(10);
    let q = square_query();
    let instance = closure_instance(40, 1500);
    let workers = machine_workers();
    for buckets in [4usize, 8] {
        let policy = HypercubePolicy::uniform(&q, buckets).unwrap();
        let name = format!("hypercube{buckets}");
        group.bench_with_input(
            BenchmarkId::new("materialized", &name),
            &instance,
            |b, i| b.iter(|| policy.distribute(i).stats(i).total_assigned),
        );
        group.bench_with_input(BenchmarkId::new("parallel", &name), &instance, |b, i| {
            b.iter(|| {
                policy
                    .distribute_parallel(i, workers)
                    .stats(i)
                    .total_assigned
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming", &name), &instance, |b, i| {
            b.iter(|| policy.distribute_stream(i, 1).stats(i).total_assigned)
        });
    }
    group.finish();
}

fn bench_one_round_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_round_path");
    group.sample_size(10);
    let q = square_query();
    let instance = closure_instance(30, 600);
    let policy = HypercubePolicy::uniform(&q, 4).unwrap();
    let workers = machine_workers().max(2);

    group.bench_with_input(
        BenchmarkId::new("materialized", "hypercube4"),
        &instance,
        |b, i| {
            b.iter(|| {
                OneRoundEngine::new(&policy)
                    .workers(workers)
                    .evaluate(&q, i)
                    .result
                    .len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("streaming", "hypercube4"),
        &instance,
        |b, i| {
            b.iter(|| {
                OneRoundEngine::new(&policy)
                    .workers(workers)
                    .streaming(true)
                    .evaluate(&q, i)
                    .result
                    .len()
            })
        },
    );
    group.finish();

    // The allocation proxy: streaming must keep at most one owned chunk per
    // worker alive, materialized holds one per node.
    let materialized = OneRoundEngine::new(&policy)
        .workers(workers)
        .evaluate(&q, &instance);
    let streamed = OneRoundEngine::new(&policy)
        .workers(workers)
        .streaming(true)
        .evaluate(&q, &instance);
    assert_eq!(materialized.result, streamed.result);
    assert!(
        streamed.peak_chunks <= workers,
        "streaming peak {} > workers {}",
        streamed.peak_chunks,
        workers
    );
    assert_eq!(materialized.peak_chunks, materialized.stats.nodes);
    println!(
        "peak_chunks (allocation proxy): materialized={} streaming={} (nodes={}, workers={})",
        materialized.peak_chunks, streamed.peak_chunks, materialized.stats.nodes, workers
    );
}

fn bench_multi_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiround");
    group.sample_size(10);
    let q = square_query();
    let instance = closure_instance(48, 0); // pure chain: log-many rounds
    let policy = HypercubePolicy::uniform(&q, 2).unwrap();
    let workers = machine_workers();

    group.bench_with_input(
        BenchmarkId::new("closure", "hypercube2"),
        &instance,
        |b, i| {
            b.iter(|| {
                let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                    .rounds(12)
                    .feedback_into("R")
                    .evaluate(&q, i);
                assert!(outcome.converged);
                outcome.result.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("closure_streaming", "hypercube2"),
        &instance,
        |b, i| {
            b.iter(|| {
                let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                    .rounds(12)
                    .feedback_into("R")
                    .streaming(true)
                    .workers(workers)
                    .evaluate(&q, i);
                assert!(outcome.converged);
                outcome.result.len()
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_distribute_modes,
    bench_one_round_paths,
    bench_multi_round
);
criterion_main!(benches);
