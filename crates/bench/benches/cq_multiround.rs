//! Multi-round evaluation and the reshuffle-path ablation: materialized
//! versus parallel versus streaming distribute, and the iterated
//! (transitive-closure) engine end to end.
//!
//! Besides timings, the bench prints the `peak_chunks` allocation proxy of
//! the streaming versus materialized engine paths (owned chunks alive at
//! once) and asserts that streaming keeps it bounded by the worker-pool
//! size rather than the network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{ConjunctiveQuery, Fact, Instance, Value};
use distribution::{
    DistributionPolicy, HypercubePolicy, MultiRoundEngine, OneRoundEngine, RoundSchedule,
};
use workloads::InstanceParams;

fn square_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
}

/// A chain with extra random chords: enough structure for several squaring
/// rounds, enough facts for the reshuffle phase to be measurable.
fn closure_instance(vertices: usize, extra: usize) -> Instance {
    let mut out = Instance::new();
    for i in 0..vertices - 1 {
        out.insert(Fact::new(
            "R",
            vec![Value::indexed("v", i), Value::indexed("v", i + 1)],
        ));
    }
    let mut rng = StdRng::seed_from_u64(42);
    let sample = workloads::random_instance(
        &mut rng,
        &square_query().schema(),
        InstanceParams {
            domain_size: vertices,
            facts_per_relation: extra,
        },
    );
    out.extend(sample.facts().cloned());
    out
}

/// How many threads the machine actually has: the parallel-reshuffle bench
/// compares against this pool size, so a single-core CI box degenerates to
/// the sequential path instead of paying for useless thread spawns.
fn machine_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn bench_distribute_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribute");
    group.sample_size(10);
    let q = square_query();
    let instance = closure_instance(40, 1500);
    let workers = machine_workers();
    for buckets in [4usize, 8] {
        let policy = HypercubePolicy::uniform(&q, buckets).unwrap();
        let name = format!("hypercube{buckets}");
        group.bench_with_input(
            BenchmarkId::new("materialized", &name),
            &instance,
            |b, i| b.iter(|| policy.distribute(i).stats(i).total_assigned),
        );
        group.bench_with_input(BenchmarkId::new("parallel", &name), &instance, |b, i| {
            b.iter(|| {
                policy
                    .distribute_parallel(i, workers)
                    .stats(i)
                    .total_assigned
            })
        });
        group.bench_with_input(BenchmarkId::new("streaming", &name), &instance, |b, i| {
            b.iter(|| policy.distribute_stream(i, 1).stats(i).total_assigned)
        });
    }
    group.finish();
}

fn bench_one_round_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_round_path");
    group.sample_size(10);
    let q = square_query();
    let instance = closure_instance(30, 600);
    let policy = HypercubePolicy::uniform(&q, 4).unwrap();
    let workers = machine_workers().max(2);

    group.bench_with_input(
        BenchmarkId::new("materialized", "hypercube4"),
        &instance,
        |b, i| {
            b.iter(|| {
                OneRoundEngine::new(&policy)
                    .workers(workers)
                    .evaluate(&q, i)
                    .result
                    .len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("streaming", "hypercube4"),
        &instance,
        |b, i| {
            b.iter(|| {
                OneRoundEngine::new(&policy)
                    .workers(workers)
                    .streaming(true)
                    .evaluate(&q, i)
                    .result
                    .len()
            })
        },
    );
    group.finish();

    // The allocation proxy: streaming must keep at most one owned chunk per
    // worker alive, materialized holds one per node.
    let materialized = OneRoundEngine::new(&policy)
        .workers(workers)
        .evaluate(&q, &instance);
    let streamed = OneRoundEngine::new(&policy)
        .workers(workers)
        .streaming(true)
        .evaluate(&q, &instance);
    assert_eq!(materialized.result, streamed.result);
    assert!(
        streamed.peak_chunks <= workers,
        "streaming peak {} > workers {}",
        streamed.peak_chunks,
        workers
    );
    assert_eq!(materialized.peak_chunks, materialized.stats.nodes);
    println!(
        "peak_chunks (allocation proxy): materialized={} streaming={} (nodes={}, workers={})",
        materialized.peak_chunks, streamed.peak_chunks, materialized.stats.nodes, workers
    );
}

fn bench_multi_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiround");
    group.sample_size(10);
    let q = square_query();
    let instance = closure_instance(48, 0); // pure chain: log-many rounds
    let policy = HypercubePolicy::uniform(&q, 2).unwrap();
    let workers = machine_workers();

    group.bench_with_input(
        BenchmarkId::new("closure", "hypercube2"),
        &instance,
        |b, i| {
            b.iter(|| {
                let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                    .rounds(12)
                    .feedback_into("R")
                    .evaluate(&q, i);
                assert!(outcome.converged);
                outcome.result.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("closure_streaming", "hypercube2"),
        &instance,
        |b, i| {
            b.iter(|| {
                let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
                    .rounds(12)
                    .feedback_into("R")
                    .streaming(true)
                    .workers(workers)
                    .evaluate(&q, i);
                assert!(outcome.converged);
                outcome.result.len()
            })
        },
    );
    group.finish();
}

/// The <2% disabled-overhead guard for the observability layer. With no
/// active trace every instrumentation site costs one relaxed atomic load
/// (arguments stay unevaluated), so the product
///
/// ```text
/// (cost of one disabled site) × (sites a traced closure run hits)
/// ```
///
/// must stay under 2% of the untraced closure run itself. The site count
/// is not guessed: a traced run records exactly one event per site hit,
/// so its event total *is* the per-run site count.
fn bench_disabled_tracing_overhead(c: &mut Criterion) {
    let q = square_query();
    let instance = closure_instance(48, 0);
    let policy = HypercubePolicy::uniform(&q, 2).unwrap();
    let run = || {
        let outcome = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(12)
            .feedback_into("R")
            .evaluate(&q, &instance);
        assert!(outcome.converged);
        outcome.result.len()
    };

    // Keep the disabled fast path itself on the bench-diff trajectory.
    let mut group = c.benchmark_group("multiround_obs");
    group.sample_size(10);
    group.bench_function("disabled_sites_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                let _ = std::hint::black_box(obs::span!("bench_site", i = i));
            }
        })
    });
    group.finish();

    assert!(
        !obs::enabled(),
        "no trace may be active while the overhead guard measures"
    );

    // Sites hit per run = events a traced run records.
    obs::start_trace();
    std::hint::black_box(run());
    let sites = obs::end_trace().len() as u64;
    assert!(sites > 0, "the closure run hits no instrumentation sites");

    // Per-site disabled cost, amortized over enough calls to resolve
    // (black_box keeps the guard from being optimized away; its own cost
    // only overestimates the overhead, never hides it).
    const CALLS: u64 = 1_000_000;
    let start = std::time::Instant::now();
    for i in 0..CALLS {
        let _ = std::hint::black_box(obs::span!("bench_site", i = i));
    }
    let per_site = start.elapsed().as_secs_f64() / CALLS as f64;

    // The untraced run: best of several to damp scheduler noise.
    let baseline = (0..5)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(run());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::MAX, f64::min);

    let overhead = per_site * sites as f64 / baseline;
    println!(
        "disabled-tracing overhead: {} sites x {:.1}ns = {:.4}% of a {:.2}ms run",
        sites,
        per_site * 1e9,
        overhead * 100.0,
        baseline * 1e3,
    );
    assert!(
        overhead < 0.02,
        "disabled tracing costs {:.3}% of the cq_multiround closure run (limit 2%)",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_distribute_modes,
    bench_one_round_paths,
    bench_multi_round,
    bench_disabled_tracing_overhead
);
criterion_main!(benches);
