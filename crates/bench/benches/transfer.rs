//! Experiment E3/E4 — deciding parallel-correctness transfer.
//!
//! * `transfer_qbf`: the general (C2-based) pc-trans decision on Π₃-QBF
//!   derived pairs (Theorem 4.3).
//! * `c2_vs_c3`: the general procedure versus the C3-based procedure for
//!   strongly minimal sources on chain queries of growing length
//!   (Theorem 4.7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pc_core::{check_transfer, check_transfer_strongly_minimal};
use reductions::pi3_to_transfer;
use workloads::chain_query;

fn bench_transfer_qbf(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_qbf");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for (nx, ny, nz, k) in [(1usize, 1usize, 1usize, 1usize), (1, 1, 1, 2)] {
        let qbf = logic::random_pi3_qbf(&mut rng, nx, ny, nz, k);
        let red = pi3_to_transfer(&qbf);
        let label = format!("x{nx}_y{ny}_z{nz}_t{k}");
        group.bench_with_input(BenchmarkId::new("pc_trans", &label), &red, |b, red| {
            b.iter(|| check_transfer(&red.from, &red.to).transfers())
        });
        group.bench_with_input(BenchmarkId::new("qbf_oracle", &label), &qbf, |b, qbf| {
            b.iter(|| qbf.is_true())
        });
    }
    group.finish();
}

fn full_chain(len: usize) -> cq::ConjunctiveQuery {
    let var = |i: usize| cq::Variable::indexed("x", i);
    let body = (0..len)
        .map(|i| cq::Atom::new("R", vec![var(i), var(i + 1)]))
        .collect();
    let head_vars = (0..=len).map(var).collect();
    cq::ConjunctiveQuery::new(cq::Atom::new("T", head_vars), body)
        .expect("full chains are well-formed")
}

fn bench_c2_vs_c3(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_vs_c3");
    group.sample_size(10);
    for len in [2usize, 3, 4] {
        // full chains are strongly minimal, so both procedures apply
        let from = full_chain(len + 1);
        let to = chain_query(len);
        group.bench_with_input(BenchmarkId::new("c2_general", len), &(), |b, _| {
            b.iter(|| check_transfer(&from, &to).transfers())
        });
        group.bench_with_input(BenchmarkId::new("c3_strongly_minimal", len), &(), |b, _| {
            b.iter(|| check_transfer_strongly_minimal(&from, &to).transfers())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transfer_qbf, bench_c2_vs_c3);
criterion_main!(benches);
