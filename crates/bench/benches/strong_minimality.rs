//! Experiment E5 — deciding strong minimality (Lemmas 4.8 and 4.10).
//!
//! * `sat_reduction`: the complete decision on 3-SAT-derived queries of
//!   growing size (Lemma C.9).
//! * `lemma_4_8_fast_path`: the syntactic sufficient condition versus the
//!   complete canonical-valuation search on query families where both apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pc_core::{is_strongly_minimal, satisfies_lemma_4_8};
use reductions::sat_to_strong_minimality;
use workloads::{chain_query, cycle_query};

fn bench_sat_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_minimality_sat");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    for (vars, clauses) in [(1usize, 2usize), (2, 2), (2, 3)] {
        let cnf = logic::random_3cnf(&mut rng, vars, clauses);
        let query = sat_to_strong_minimality(&cnf);
        let label = format!("v{vars}_c{clauses}");
        group.bench_with_input(BenchmarkId::new("decide", &label), &query, |b, q| {
            b.iter(|| is_strongly_minimal(q))
        });
        group.bench_with_input(BenchmarkId::new("sat_oracle", &label), &cnf, |b, cnf| {
            b.iter(|| logic::dpll_satisfiable(cnf))
        });
    }
    group.finish();
}

fn bench_lemma_4_8_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_minimality_fast_path");
    group.sample_size(20);
    for len in [3usize, 4, 5] {
        // cycle queries are full, so both the fast path and the complete
        // search answer "strongly minimal".
        let query = cycle_query(len);
        group.bench_with_input(BenchmarkId::new("lemma_4_8_only", len), &query, |b, q| {
            b.iter(|| satisfies_lemma_4_8(q))
        });
        group.bench_with_input(
            BenchmarkId::new("complete_decision", len),
            &query,
            |b, q| b.iter(|| is_strongly_minimal(q)),
        );
        // chains of the same length exercise the canonical-valuation search
        // (they fail Lemma 4.8 because of the shared existential variables).
        let chain = chain_query(len);
        group.bench_with_input(BenchmarkId::new("chain_complete", len), &chain, |b, q| {
            b.iter(|| is_strongly_minimal(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sat_reduction, bench_lemma_4_8_fast_path);
criterion_main!(benches);
