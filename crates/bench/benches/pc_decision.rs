//! Experiment E1/E2 — deciding parallel-correctness.
//!
//! * `c0_vs_c1`: cost of the sufficient condition (C0) versus the exact
//!   characterization (C1) on random explicit policies (Lemma 3.4).
//! * `pci_qbf` / `pc_qbf`: cost of PCI and PC(Pfin) on Π₂-QBF-derived hard
//!   instances of growing size (Theorem 3.8).
//! * `minimal_valuation_pruning`: ablation — enumerating minimal valuations
//!   versus all satisfying valuations for the (C1) check.
//! * `pc_incremental`: the brute-force `PC(Pfin)` reference decision, from
//!   scratch versus the incremental subset-lattice walk that re-evaluates
//!   only the delta between consecutive candidates (asserts, after timing,
//!   that incremental wins and both agree).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use distribution::{ExplicitPolicy, Network};
use pc_core::{
    check_parallel_correctness, check_parallel_correctness_naive,
    check_parallel_correctness_naive_incremental, check_parallel_correctness_on_instance,
};
use reductions::pi2_to_pci;
use workloads::{example_3_5_query, PolicyParams};

fn bench_c0_vs_c1(c: &mut Criterion) {
    let mut group = c.benchmark_group("c0_vs_c1");
    group.sample_size(20);
    let universe = workloads::complete_binary_relation("R", &["a", "b", "c"]);
    let query = example_3_5_query();
    let mut rng = StdRng::seed_from_u64(1);
    let policies: Vec<_> = (0..8)
        .map(|i| {
            workloads::random_explicit_policy(
                &mut rng,
                &universe,
                PolicyParams {
                    nodes: 3,
                    replication: 1 + i % 3,
                    skip_probability: 0.0,
                },
            )
        })
        .collect();
    group.bench_function("c0", |b| {
        b.iter(|| {
            policies
                .iter()
                .filter(|p| pc_core::holds_c0(&query, *p, &universe))
                .count()
        })
    });
    group.bench_function("c1", |b| {
        b.iter(|| {
            policies
                .iter()
                .filter(|p| pc_core::holds_c1(&query, *p, &universe))
                .count()
        })
    });
    group.finish();
}

fn bench_qbf_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("pc_qbf");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    for (nx, ny, k) in [(1usize, 1usize, 2usize), (2, 2, 3), (3, 2, 4)] {
        let qbf = logic::random_pi2_qbf(&mut rng, nx, ny, k);
        let red = pi2_to_pci(&qbf);
        let label = format!("x{nx}_y{ny}_c{k}");
        group.bench_with_input(BenchmarkId::new("pci", &label), &red, |b, red| {
            b.iter(|| {
                check_parallel_correctness_on_instance(&red.query, &red.policy, &red.instance)
                    .is_correct()
            })
        });
        group.bench_with_input(BenchmarkId::new("pc", &label), &red, |b, red| {
            b.iter(|| check_parallel_correctness(&red.query, &red.policy).is_correct())
        });
        group.bench_with_input(BenchmarkId::new("qbf_oracle", &label), &qbf, |b, qbf| {
            b.iter(|| qbf.is_true())
        });
    }
    group.finish();
}

fn bench_minimal_valuation_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimal_valuation_enumeration");
    group.sample_size(20);
    let query = example_3_5_query();
    let universe = workloads::complete_binary_relation("R", &["a", "b", "c"]);
    group.bench_function("all_satisfying", |b| {
        b.iter(|| cq::satisfying_valuations(&query, &universe).len())
    });
    group.bench_function("minimal_only", |b| {
        b.iter(|| pc_core::minimal_valuations_over(&query, &universe).len())
    });
    group.finish();
}

fn bench_incremental_naive(c: &mut Criterion) {
    let query = example_3_5_query();
    // 9 facts → a full 2^9-subset lattice; broadcast is parallel-correct,
    // so neither search can early-exit and both walk every candidate.
    let universe = workloads::complete_binary_relation("R", &["a", "b", "c"]);
    let network = Network::with_size(3);
    let policy = ExplicitPolicy::broadcast(&network, &universe);

    let mut group = c.benchmark_group("pc_incremental");
    group.sample_size(10);
    group.bench_function("scratch", |b| {
        b.iter(|| check_parallel_correctness_naive(&query, &policy))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| check_parallel_correctness_naive_incremental(&query, &policy).is_correct())
    });
    group.finish();

    // Outside the timers: the searches must agree — on the broadcast and on
    // a spread of random policies with and without counterexamples.
    let incremental = check_parallel_correctness_naive_incremental(&query, &policy);
    assert!(incremental.is_correct(), "broadcast is parallel-correct");
    assert_eq!(
        incremental.stats.subsets_checked,
        1 << universe.len(),
        "a correct policy must be verified on the whole lattice"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..4 {
        let p = workloads::random_explicit_policy(
            &mut rng,
            &universe,
            PolicyParams {
                nodes: 2,
                replication: 1 + trial % 2,
                skip_probability: 0.0,
            },
        );
        assert_eq!(
            check_parallel_correctness_naive(&query, &p),
            check_parallel_correctness_naive_incremental(&query, &p).is_correct(),
            "trial {trial}: searches disagree"
        );
    }

    // The delta walk re-evaluates one single-fact step per lattice edge
    // instead of every candidate at every node from scratch — it must win.
    const ROUNDS: usize = 3;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        check_parallel_correctness_naive(&query, &policy);
    }
    let scratch_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        check_parallel_correctness_naive_incremental(&query, &policy);
    }
    let incremental_time = start.elapsed();
    println!(
        "pc_naive x{ROUNDS}: scratch={}µs incremental={}µs ({:.2}x) cache={:?}",
        scratch_time.as_micros(),
        incremental_time.as_micros(),
        scratch_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-9),
        incremental.stats.cache
    );
    assert!(
        incremental_time < scratch_time,
        "the incremental lattice walk must beat from-scratch re-evaluation: {}µs vs {}µs",
        incremental_time.as_micros(),
        scratch_time.as_micros()
    );
}

criterion_group!(
    benches,
    bench_c0_vs_c1,
    bench_qbf_reductions,
    bench_minimal_valuation_pruning,
    bench_incremental_naive
);
criterion_main!(benches);
