//! Binary versus worst-case-optimal multiway joins on cyclic queries.
//!
//! The instances are "tripartite traps": `p` sources fan out densely onto
//! `k` middle vertices, the middles fan out densely onto `p` sinks, and a
//! single back edge closes the cycle. The binary (atom-at-a-time) join
//! enumerates every dense 2-path before discovering that almost none of
//! them close — `Θ(p²k)` work — while the leapfrog-style multiway join
//! intersects posting lists variable-at-a-time and touches only the `Θ(k)`
//! bindings that can still complete a cycle. All three query shapes
//! (triangle, chordal 4-cycle, 4-clique) are cyclic, so `Auto` routes them
//! to the multiway matcher.
//!
//! After the timed groups, the bench asserts that both strategies agree on
//! the result and that multiway actually beats binary on the triangle and
//! chordal shapes — the worst-case-optimality claim this PR's evaluator
//! rests on, pinned in CI.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cq::{evaluate_with, ConjunctiveQuery, EvalOptions, Fact, Instance, JoinStrategy};
use workloads::{chordal4_query, clique4_query, triangle_query};

/// The trap graph: sources `s*` → middles `m*` (dense), middles → sinks
/// `w*` (dense), plus the single closing edge `w0 → s0`. Every edge is in
/// relation `E`, so cardinality-based atom ordering cannot help the binary
/// join — all atoms look alike.
fn trap_instance(p: usize, k: usize) -> Instance {
    let mut instance = Instance::new();
    for a in 0..p {
        for i in 0..k {
            instance.insert(Fact::from_names("E", &[&format!("s{a}"), &format!("m{i}")]));
        }
    }
    for i in 0..k {
        for b in 0..p {
            instance.insert(Fact::from_names("E", &[&format!("m{i}"), &format!("w{b}")]));
        }
    }
    instance.insert(Fact::from_names("E", &["w0", "s0"]));
    instance
}

fn options(strategy: JoinStrategy) -> EvalOptions {
    EvalOptions {
        join_strategy: strategy,
        ..EvalOptions::default()
    }
}

fn shapes() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        ("triangle", triangle_query()),
        ("chordal4", chordal4_query()),
        ("clique4", clique4_query()),
    ]
}

fn bench_multiway_vs_binary(c: &mut Criterion) {
    let instance = trap_instance(24, 24);
    let mut group = c.benchmark_group("cq_multiway");
    group.sample_size(10);
    for (name, query) in shapes() {
        // Sanity inside the loop, outside the timers: the planner must
        // actually route these cyclic shapes to the multiway matcher.
        assert_eq!(
            options(JoinStrategy::Auto).resolved_strategy(&query),
            JoinStrategy::Multiway,
            "{name} must resolve Auto to multiway"
        );
        group.bench_with_input(BenchmarkId::new("binary", name), &query, |b, q| {
            b.iter(|| evaluate_with(q, &instance, options(JoinStrategy::Binary)).len())
        });
        group.bench_with_input(BenchmarkId::new("multiway", name), &query, |b, q| {
            b.iter(|| evaluate_with(q, &instance, options(JoinStrategy::Multiway)).len())
        });
    }
    group.finish();

    // Outside the timing loops: identical answers, and the worst-case-
    // optimal join must win on the shapes the trap is built for.
    const ROUNDS: usize = 5;
    for (name, query) in shapes() {
        let binary = evaluate_with(&query, &instance, options(JoinStrategy::Binary));
        let multiway = evaluate_with(&query, &instance, options(JoinStrategy::Multiway));
        assert_eq!(binary, multiway, "{name}: strategies disagree");

        let start = Instant::now();
        for _ in 0..ROUNDS {
            evaluate_with(&query, &instance, options(JoinStrategy::Binary));
        }
        let binary_time = start.elapsed();
        let start = Instant::now();
        for _ in 0..ROUNDS {
            evaluate_with(&query, &instance, options(JoinStrategy::Multiway));
        }
        let multiway_time = start.elapsed();
        println!(
            "{name} x{ROUNDS}: binary={}µs multiway={}µs ({:.2}x)",
            binary_time.as_micros(),
            multiway_time.as_micros(),
            binary_time.as_secs_f64() / multiway_time.as_secs_f64().max(1e-9)
        );
        if matches!(name, "triangle" | "chordal4") {
            assert!(
                multiway_time < binary_time,
                "{name}: multiway must beat binary on the trap instance: {}µs vs {}µs",
                multiway_time.as_micros(),
                binary_time.as_micros()
            );
        }
    }
}

criterion_group!(benches, bench_multiway_vs_binary);
criterion_main!(benches);
