//! Throughput of the wire codec on the evaluator-benchmark instance
//! shapes: binary encode, binary decode, and the full framed round-trip
//! for instances and chunk-shipping messages, plus the textual scenario
//! parse/print pair. Appends to the `BENCH_results.json` trajectory like
//! every other bench group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{ConjunctiveQuery, Instance};
use distribution::Node;
use wire::{ChunkBatch, Message, Scenario};
use workloads::{chain_query, star_query, triangle_query, InstanceParams};

/// The `cq_eval` query shapes with their bench instances (domain 20, 250
/// facts per relation — the same sizing as the evaluator ablation).
fn shapes() -> Vec<(&'static str, ConjunctiveQuery, Instance)> {
    [
        ("triangle", triangle_query()),
        ("chain4", chain_query(4)),
        ("star4", star_query(4)),
    ]
    .into_iter()
    .map(|(name, query)| {
        let mut rng = StdRng::seed_from_u64(7);
        let instance = workloads::random_instance(
            &mut rng,
            &query.schema(),
            InstanceParams {
                domain_size: 20,
                facts_per_relation: 250,
            },
        );
        (name, query, instance)
    })
    .collect()
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(10);
    for (name, query, instance) in &shapes() {
        group.bench_with_input(BenchmarkId::new("encode", name), instance, |b, i| {
            b.iter(|| wire::encode_body(i));
        });
        let body = wire::encode_body(instance);
        group.bench_with_input(BenchmarkId::new("decode", name), &body, |b, body| {
            b.iter(|| wire::decode_body::<Instance>(body).unwrap());
        });
        let message = Message::EvalChunk {
            query: query.clone(),
            options: cq::EvalOptions::default(),
            trace: wire::TraceContext::default(),
            batch: ChunkBatch {
                round: 0,
                node: Node::numbered(0),
                chunk: instance.clone(),
            },
        };
        group.bench_with_input(
            BenchmarkId::new("frame_roundtrip", name),
            &message,
            |b, message| {
                b.iter(|| {
                    let frame = wire::encode_frame(message);
                    wire::decode_frame::<Message>(&frame).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_scenario_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(10);
    let (_, query, instance) = shapes().remove(1); // chain4: the largest schema
    let scenario = Scenario {
        queries: vec![query],
        instance,
        policy: None,
        schedule: vec![
            wire::PolicySpec::Hash { buckets: 4 },
            wire::PolicySpec::Hypercube { buckets: vec![2] },
        ],
        rounds: 8,
        feedback: None,
    };
    let text = scenario.to_string();
    group.bench_function("scenario_print", |b| b.iter(|| scenario.to_string()));
    group.bench_function("scenario_parse", |b| {
        b.iter(|| Scenario::parse(&text).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encode_decode, bench_scenario_text);
criterion_main!(benches);
