//! Experiment E7 — deciding condition (C3) on 3-colorability instances
//! (Propositions 5.4, D.1 and D.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pc_core::holds_c3;
use reductions::{three_col_to_c3_acyclic_q, three_col_to_c3_acyclic_q_prime, Graph};

fn bench_d1(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_colorability_d1");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    for n in [4usize, 6, 8] {
        let graph = Graph::random(&mut rng, n, 0.5);
        let red = three_col_to_c3_acyclic_q(&graph);
        group.bench_with_input(BenchmarkId::new("c3", n), &red, |b, red| {
            b.iter(|| holds_c3(&red.from, &red.to))
        });
        group.bench_with_input(BenchmarkId::new("coloring_oracle", n), &graph, |b, g| {
            b.iter(|| g.is_three_colorable())
        });
    }
    // The hard direction: K4 is not 3-colorable.
    let k4 = Graph::complete(4);
    let red = three_col_to_c3_acyclic_q(&k4);
    group.bench_function("c3_k4_negative", |b| {
        b.iter(|| holds_c3(&red.from, &red.to))
    });
    group.finish();
}

fn bench_d2(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_colorability_d2");
    group.sample_size(10);
    for edges in [2usize, 3] {
        // a path with `edges` edges (always 3-colorable)
        let pairs: Vec<(usize, usize)> = (0..edges).map(|i| (i, i + 1)).collect();
        let graph = Graph::from_edges(edges + 1, &pairs);
        let red = three_col_to_c3_acyclic_q_prime(&graph);
        group.bench_with_input(
            BenchmarkId::new("c3_acyclic_q_prime", edges),
            &red,
            |b, red| b.iter(|| holds_c3(&red.from, &red.to)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_d1, bench_d2);
criterion_main!(benches);
