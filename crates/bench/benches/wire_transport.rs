//! Pipelined versus lock-step wire-transport rounds.
//!
//! The shared driver behind `ProcessTransport`/`SocketTransport` keeps a
//! bounded window of chunk jobs in flight per worker; window 1 reproduces
//! the historic write-one-read-one lock step. This bench drives the
//! transport seam directly (begin_round → send_chunk* → barrier → recv*)
//! on two shapes — many tiny chunks (latency-bound, where pipelining pays
//! most) and fewer fat chunks (bandwidth-bound) — on a 4-worker pool, and
//! asserts after timing that the pipelined fan-out round is faster than
//! lock step.
//!
//! Requires the `pcq-analyze` binary next to the bench profile's target
//! directory (`cargo build --release` first); skips with a note otherwise.

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cq::{ConjunctiveQuery, Instance};
use distribution::{Node, Transport};
use wire::ProcessTransport;
use workloads::InstanceParams;

/// Locates the freshly built `pcq-analyze` by walking up from the bench
/// executable to the cargo target profile directory.
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .map(|dir| dir.join("pcq-analyze"))
        .find(|candidate| candidate.exists())
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
}

/// One distinct chunk per node (distinct seeds keep the workers from
/// seeing identical bytes, like a real reshuffle).
fn chunks(nodes: usize, facts_per_chunk: usize) -> Vec<(Node, Instance)> {
    let q = query();
    (0..nodes)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(1000 + i as u64);
            let chunk = workloads::random_instance(
                &mut rng,
                &q.schema(),
                InstanceParams {
                    domain_size: 12,
                    facts_per_relation: facts_per_chunk,
                },
            );
            (Node::numbered(i), chunk)
        })
        .collect()
}

/// One full transport round over pre-built chunks; returns the total
/// result size so the work cannot be optimized away.
fn drive_round(
    transport: &mut ProcessTransport,
    q: &ConjunctiveQuery,
    chunks: &[(Node, Instance)],
) -> usize {
    transport
        .begin_round(0, q, cq::EvalOptions::default())
        .unwrap();
    for (node, chunk) in chunks {
        transport.send_chunk(*node, chunk.clone()).unwrap();
    }
    transport.barrier().unwrap();
    let mut total = 0;
    for (node, _) in chunks {
        total += transport.recv_chunk(*node).unwrap().output.len();
    }
    let _ = transport.take_bytes_shipped();
    total
}

fn bench_wire_transport(c: &mut Criterion) {
    let Some(binary) = worker_binary() else {
        eprintln!("wire_transport bench: pcq-analyze binary not found; run `cargo build --release` first — skipping");
        return;
    };
    let spawn = |window: usize| {
        ProcessTransport::spawn_command(binary.clone(), &["worker".to_string()], 4)
            .expect("cannot spawn workers")
            .pipeline_window(window)
    };
    let q = query();
    // fanout64: 64 tiny chunks — 16 sequential round-trips per worker in
    // lock step, one streamed burst pipelined. broadcast16: 16 chunks of
    // ~200 facts — bandwidth-bound, pipelining matters less.
    let shapes = [("fanout64", 64usize, 4usize), ("broadcast16", 16, 200)];

    let mut group = c.benchmark_group("wire_transport");
    group.sample_size(10);
    for (name, nodes, facts) in shapes {
        let work = chunks(nodes, facts);
        let mut lockstep = spawn(1);
        group.bench_with_input(BenchmarkId::new("lockstep", name), &work, |b, work| {
            b.iter(|| drive_round(&mut lockstep, &q, work))
        });
        let mut pipelined = spawn(8);
        group.bench_with_input(BenchmarkId::new("pipelined", name), &work, |b, work| {
            b.iter(|| drive_round(&mut pipelined, &q, work))
        });
    }
    group.finish();

    // Outside the timing loops: the two drivers must agree on the answer,
    // and on the latency-bound shape the pipelined rounds must be faster.
    let work = chunks(64, 4);
    let mut lockstep = spawn(1);
    let mut pipelined = spawn(8);
    assert_eq!(
        drive_round(&mut lockstep, &q, &work),
        drive_round(&mut pipelined, &q, &work),
        "window size changed the round's result"
    );
    const ROUNDS: usize = 6;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        drive_round(&mut lockstep, &q, &work);
    }
    let lockstep_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        drive_round(&mut pipelined, &q, &work);
    }
    let pipelined_time = start.elapsed();
    println!(
        "fanout64 x{ROUNDS}: lockstep={}µs pipelined={}µs ({:.2}x)",
        lockstep_time.as_micros(),
        pipelined_time.as_micros(),
        lockstep_time.as_secs_f64() / pipelined_time.as_secs_f64().max(1e-9)
    );
    assert!(
        pipelined_time < lockstep_time,
        "pipelining must beat lock step on 64 tiny chunks: {}µs vs {}µs",
        pipelined_time.as_micros(),
        lockstep_time.as_micros()
    );
}

criterion_group!(benches, bench_wire_transport);
criterion_main!(benches);
