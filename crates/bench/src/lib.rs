//! # pcq-bench — experiment harness for the reproduction
//!
//! The paper is a theory paper without measured tables or figures; its
//! "results" are characterizations and completeness theorems. This crate
//! regenerates the experiment tables defined in `DESIGN.md` (T1–T9), each of
//! which exercises one of the paper's results end-to-end and reports
//! agreement with an independent oracle together with wall-clock timings.
//!
//! * `cargo run -p pcq-bench --bin experiments --release` prints every table
//!   (the contents of `EXPERIMENTS.md`).
//! * `cargo bench -p pcq-bench` runs the matching Criterion micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cq::{ConjunctiveQuery, Instance, Schema};
use distribution::{
    DistributionPolicy, HypercubePolicy, MultiRoundEngine, OneRoundEngine, RoundSchedule,
};
use pc_core::{
    check_parallel_correctness, check_parallel_correctness_on_instance, check_transfer,
    check_transfer_strongly_minimal, holds_c0, holds_c1, holds_c3, is_strongly_minimal,
    validate_hypercube_family,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reductions::{
    pi2_to_pci, pi3_to_transfer, sat_to_strong_minimality, three_col_to_c3_acyclic_q, Graph,
};
use workloads::{
    chain_query, example_3_5_query, triangle_query, InstanceParams, PolicyParams, QueryParams,
};

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

/// T1 — condition (C0) versus condition (C1) on random explicit policies
/// (Lemma 3.4, Example 3.5): how often is the sufficient condition strictly
/// stronger than the exact characterization?
pub fn table_t1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## T1 — (C0) vs (C1) on random policies (Lemma 3.4)\n");
    let _ = writeln!(
        out,
        "| query | policies | C0 holds | PC holds | PC but not C0 |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(101);
    let universe = workloads::complete_binary_relation("R", &["a", "b"]);
    let queries = [
        ("example 3.5", example_3_5_query()),
        ("2-chain", chain_query(2)),
        ("loop", ConjunctiveQuery::parse("T(x) :- R(x, x).").unwrap()),
        (
            "2-cycle",
            ConjunctiveQuery::parse("T() :- R(x, y), R(y, x).").unwrap(),
        ),
    ];
    let trials = 200;
    for (name, query) in &queries {
        let mut c0_count = 0;
        let mut pc_count = 0;
        let mut gap = 0;
        for t in 0..trials {
            let policy = workloads::random_explicit_policy(
                &mut rng,
                &universe,
                PolicyParams {
                    nodes: 2 + t % 2,
                    replication: 1 + t % 3,
                    skip_probability: 0.0,
                },
            );
            let c0 = holds_c0(query, &policy, &universe);
            let pc = holds_c1(query, &policy, &universe);
            assert!(!c0 || pc, "C0 must imply C1");
            if c0 {
                c0_count += 1;
            }
            if pc {
                pc_count += 1;
            }
            if pc && !c0 {
                gap += 1;
            }
        }
        let _ = writeln!(
            out,
            "| {name} | {trials} | {c0_count} | {pc_count} | {gap} |"
        );
    }
    out
}

/// T2 — deciding PCI / PC(Pfin) on Π₂-QBF-derived instances
/// (Theorem 3.8, Propositions B.7/B.8): agreement with the QBF oracle and
/// wall-clock time as the formula grows.
pub fn table_t2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## T2 — PC / PCI vs the Π₂-QBF oracle (Theorem 3.8)\n");
    let _ = writeln!(
        out,
        "| |x| | |y| | clauses | formulas | agree (PCI) | agree (PC) | avg QBF ms | avg PCI ms | avg PC ms |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(102);
    for &(nx, ny, k) in &[(1usize, 1usize, 2usize), (2, 2, 3), (3, 2, 4), (3, 3, 5)] {
        let formulas = 6;
        let mut agree_pci = 0;
        let mut agree_pc = 0;
        let mut qbf_time = Duration::ZERO;
        let mut pci_time = Duration::ZERO;
        let mut pc_time = Duration::ZERO;
        for _ in 0..formulas {
            let qbf = logic::random_pi2_qbf(&mut rng, nx, ny, k);
            let (expected, t0) = time(|| qbf.is_true());
            qbf_time += t0;
            let red = pi2_to_pci(&qbf);
            let (pci, t1) = time(|| {
                check_parallel_correctness_on_instance(&red.query, &red.policy, &red.instance)
                    .is_correct()
            });
            pci_time += t1;
            let (pc, t2) =
                time(|| check_parallel_correctness(&red.query, &red.policy).is_correct());
            pc_time += t2;
            if pci == expected {
                agree_pci += 1;
            }
            if pc == expected {
                agree_pc += 1;
            }
        }
        let _ = writeln!(
            out,
            "| {nx} | {ny} | {k} | {formulas} | {agree_pci}/{formulas} | {agree_pc}/{formulas} | {} | {} | {} |",
            ms(qbf_time / formulas as u32),
            ms(pci_time / formulas as u32),
            ms(pc_time / formulas as u32)
        );
    }
    out
}

/// T3 — deciding pc-trans on Π₃-QBF-derived query pairs (Theorem 4.3,
/// Proposition C.6).
pub fn table_t3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## T3 — pc-trans vs the Π₃-QBF oracle (Theorem 4.3)\n");
    let _ = writeln!(
        out,
        "| |x| | |y| | |z| | terms | formulas | agree | avg QBF ms | avg pc-trans ms | |body Q| | |body Q'| |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(103);
    for &(nx, ny, nz, k) in &[(1usize, 1usize, 1usize, 1usize), (1, 1, 1, 2), (2, 1, 1, 2)] {
        let formulas = 4;
        let mut agree = 0;
        let mut qbf_time = Duration::ZERO;
        let mut trans_time = Duration::ZERO;
        let mut body_q = 0;
        let mut body_qp = 0;
        for _ in 0..formulas {
            let qbf = logic::random_pi3_qbf(&mut rng, nx, ny, nz, k);
            let (expected, t0) = time(|| qbf.is_true());
            qbf_time += t0;
            let red = pi3_to_transfer(&qbf);
            body_q = red.from.body_size();
            body_qp = red.to.body_size();
            let (transfers, t1) = time(|| check_transfer(&red.from, &red.to).transfers());
            trans_time += t1;
            if transfers == expected {
                agree += 1;
            }
        }
        let _ = writeln!(
            out,
            "| {nx} | {ny} | {nz} | {k} | {formulas} | {agree}/{formulas} | {} | {} | {body_q} | {body_qp} |",
            ms(qbf_time / formulas as u32),
            ms(trans_time / formulas as u32)
        );
    }
    out
}

/// T4 — the general C2 procedure versus the C3 procedure for strongly
/// minimal sources (Theorem 4.7): agreement and speed on chain/star/cycle
/// query families.
pub fn table_t4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## T4 — C2 (general) vs C3 (strongly minimal) transfer (Theorem 4.7)\n"
    );
    let _ = writeln!(out, "| from | to | transfers | C2 ms | C3 ms | speedup |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    // Sources must be strongly minimal for the C3 procedure to apply
    // (Theorem 4.7); full chains and cycles are (Lemma 4.8).
    let pairs: Vec<(&str, ConjunctiveQuery, ConjunctiveQuery)> = vec![
        ("full 3-chain → 2-chain", full_chain(3), chain_query(2)),
        ("full 4-chain → 2-chain", full_chain(4), chain_query(2)),
        ("full 4-chain → 3-chain", full_chain(4), chain_query(3)),
        (
            "triangle → 2-chain",
            triangle_query_over_r(),
            chain_query(2),
        ),
        (
            "4-cycle → 2-chain",
            workloads::cycle_query(4),
            chain_query(2),
        ),
        (
            "full 4-chain → 4-cycle",
            full_chain(4),
            workloads::cycle_query(4),
        ),
    ];
    for (name, from, to) in pairs {
        assert!(
            is_strongly_minimal(&from),
            "{name}: source must be strongly minimal"
        );
        let (general, c2_t) = time(|| check_transfer(&from, &to).transfers());
        let (fast, c3_t) = time(|| check_transfer_strongly_minimal(&from, &to).transfers());
        assert_eq!(general, fast, "{name}: C2 and C3 disagree");
        let speedup = c2_t.as_secs_f64() / c3_t.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {} | {:.1}x |",
            to_short(&to),
            general,
            ms(c2_t),
            ms(c3_t),
            speedup
        );
    }
    out
}

fn to_short(q: &ConjunctiveQuery) -> String {
    format!("{} atoms", q.body_size())
}

fn triangle_query_over_r() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("T(x, y, z) :- R(x, y), R(y, z), R(z, x).").unwrap()
}

/// The *full* chain query of length `len`: like [`chain_query`] but with every
/// variable in the head, which makes it strongly minimal (Lemma 4.8).
fn full_chain(len: usize) -> ConjunctiveQuery {
    let var = |i: usize| cq::Variable::indexed("x", i);
    let body = (0..len)
        .map(|i| cq::Atom::new("R", vec![var(i), var(i + 1)]))
        .collect();
    let head_vars = (0..=len).map(var).collect();
    ConjunctiveQuery::new(cq::Atom::new("T", head_vars), body).expect("full chains are well-formed")
}

/// T5 — strong minimality: agreement with the 3-SAT oracle (Lemma C.9),
/// the precision of the Lemma 4.8 sufficient condition, and the fraction of
/// random CQs that are strongly minimal.
pub fn table_t5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## T5 — strong minimality (Lemmas 4.8, 4.10, C.9)\n");
    let mut rng = StdRng::seed_from_u64(105);

    // Part A: SAT-reduction agreement.
    let _ = writeln!(
        out,
        "| formulas (2 vars, 3 clauses) | agree with SAT oracle | avg decision ms |"
    );
    let _ = writeln!(out, "|---|---|---|");
    let formulas = 6;
    let mut agree = 0;
    let mut total = Duration::ZERO;
    for _ in 0..formulas {
        let cnf = logic::random_3cnf(&mut rng, 2, 3);
        let sat = logic::dpll_satisfiable(&cnf);
        let query = sat_to_strong_minimality(&cnf);
        let (sm, t) = time(|| is_strongly_minimal(&query));
        total += t;
        if sm != sat {
            agree += 1;
        }
    }
    let _ = writeln!(
        out,
        "| {formulas} | {agree}/{formulas} | {} |",
        ms(total / formulas as u32)
    );

    // Part B: random CQs — how many are strongly minimal, and how precise is
    // the Lemma 4.8 sufficient condition?
    let _ = writeln!(
        out,
        "\n| random CQs | strongly minimal | satisfy Lemma 4.8 | strongly minimal but fail Lemma 4.8 |"
    );
    let _ = writeln!(out, "|---|---|---|---|");
    let samples = 200;
    let mut strongly = 0;
    let mut lemma = 0;
    let mut false_neg = 0;
    for _ in 0..samples {
        let q = workloads::random_query(
            &mut rng,
            QueryParams {
                relations: 2,
                arity: 2,
                atoms: 3,
                variables: 4,
                head_variables: 2,
                allow_self_joins: true,
            },
        );
        let sm = is_strongly_minimal(&q);
        let l48 = pc_core::satisfies_lemma_4_8(&q);
        assert!(!l48 || sm, "Lemma 4.8 must be sufficient");
        if sm {
            strongly += 1;
        }
        if l48 {
            lemma += 1;
        }
        if sm && !l48 {
            false_neg += 1;
        }
    }
    let _ = writeln!(out, "| {samples} | {strongly} | {lemma} | {false_neg} |");
    out
}

/// T6 — the Hypercube family (Lemma 5.7, Corollary 5.8): structural
/// validation of generosity/scatteredness and family-level
/// parallel-correctness answers for related queries.
pub fn table_t6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## T6 — Hypercube families (Lemma 5.7, Corollary 5.8)\n"
    );
    let _ = writeln!(
        out,
        "| query | generous | scattered | self parallel-correct | members |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(106);
    let queries = [
        (
            "2-chain (R,S)",
            ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap(),
        ),
        ("triangle", triangle_query()),
        ("example 3.5", example_3_5_query()),
        ("3-chain", chain_query(3)),
    ];
    for (name, query) in &queries {
        let instance = workloads::random_instance(
            &mut rng,
            &query.schema(),
            InstanceParams {
                domain_size: 5,
                facts_per_relation: 15,
            },
        );
        let v = validate_hypercube_family(query, &instance, 3);
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {} |",
            v.generous, v.scattered, v.self_parallel_correct, v.members_checked
        );
    }

    let _ = writeln!(
        out,
        "\n| family of | candidate Q' | parallel-correct for the family (C3) |"
    );
    let _ = writeln!(out, "|---|---|---|");
    let anchor = triangle_query();
    let candidates = [
        ("edge projection", "U(x, y) :- E(x, y)."),
        ("wedge", "U(x, z) :- E(x, y), E(y, z)."),
        ("self-loop", "U(x) :- E(x, x)."),
        (
            "4-cycle",
            "U(x, y, z, w) :- E(x, y), E(y, z), E(z, w), E(w, x).",
        ),
    ];
    for (name, text) in candidates {
        let q_prime = ConjunctiveQuery::parse(text).unwrap();
        let ok = holds_c3(&anchor, &q_prime);
        let _ = writeln!(out, "| triangle | {name} | {ok} |");
    }
    out
}

/// T7 — deciding condition (C3) on 3-colorability-derived instances
/// (Propositions 5.4 / D.1): agreement with the coloring oracle and timing
/// as the graph grows.
pub fn table_t7() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## T7 — condition (C3) vs graph 3-colorability (Prop. 5.4 / D.1)\n"
    );
    let _ = writeln!(
        out,
        "| vertices | edge prob. | graphs | agree | avg coloring ms | avg C3 ms |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(107);
    for &(n, p) in &[(4usize, 0.5), (5, 0.5), (6, 0.5), (7, 0.4), (8, 0.4)] {
        let graphs = 5;
        let mut agree = 0;
        let mut color_time = Duration::ZERO;
        let mut c3_time = Duration::ZERO;
        for _ in 0..graphs {
            let graph = Graph::random(&mut rng, n, p);
            let (colorable, t0) = time(|| graph.is_three_colorable());
            color_time += t0;
            let red = three_col_to_c3_acyclic_q(&graph);
            let (c3, t1) = time(|| holds_c3(&red.from, &red.to));
            c3_time += t1;
            if c3 == colorable {
                agree += 1;
            }
        }
        let _ = writeln!(
            out,
            "| {n} | {p} | {graphs} | {agree}/{graphs} | {} | {} |",
            ms(color_time / graphs as u32),
            ms(c3_time / graphs as u32)
        );
    }
    out
}

/// T8 — one-round Hypercube evaluation of the triangle and chain joins on
/// uniform and skewed data: communication volume, maximum node load,
/// replication and correctness as the cluster grows (the MPC cost picture
/// the paper builds on).
pub fn table_t8() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## T8 — one-round Hypercube evaluation (Sections 1 and 5.2)\n"
    );
    let _ = writeln!(
        out,
        "| query | data | buckets | nodes | comm (facts) | max load | replication | answers | correct | eval ms |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(108);
    let edge_schema = Schema::from_relations([("E", 2)]);
    let chain_schema = Schema::from_relations([("R", 2)]);
    let workloads_list: Vec<(&str, ConjunctiveQuery, &str, Instance)> = vec![
        (
            "triangle",
            triangle_query(),
            "uniform",
            workloads::random_instance(
                &mut rng,
                &edge_schema,
                InstanceParams {
                    domain_size: 30,
                    facts_per_relation: 400,
                },
            ),
        ),
        (
            "triangle",
            triangle_query(),
            "zipf(1.2)",
            workloads::zipf_instance(
                &mut rng,
                &edge_schema,
                InstanceParams {
                    domain_size: 30,
                    facts_per_relation: 400,
                },
                1.2,
            ),
        ),
        (
            "3-chain",
            chain_query(3),
            "uniform",
            workloads::random_instance(
                &mut rng,
                &chain_schema,
                InstanceParams {
                    domain_size: 30,
                    facts_per_relation: 400,
                },
            ),
        ),
        (
            "3-chain",
            chain_query(3),
            "zipf(1.2)",
            workloads::zipf_instance(
                &mut rng,
                &chain_schema,
                InstanceParams {
                    domain_size: 30,
                    facts_per_relation: 400,
                },
                1.2,
            ),
        ),
    ];
    for (qname, query, dname, instance) in &workloads_list {
        let expected = cq::evaluate(query, instance);
        for buckets in [1usize, 2, 3, 4] {
            let policy = HypercubePolicy::uniform(query, buckets).expect("policy");
            let engine = OneRoundEngine::new(&policy);
            let (outcome, t) = time(|| engine.evaluate(query, instance));
            let _ = writeln!(
                out,
                "| {qname} | {dname} | {buckets} | {} | {} | {} | {:.2} | {} | {} | {} |",
                policy.network().len(),
                outcome.stats.total_assigned,
                outcome.stats.max_load,
                outcome.stats.replication_factor,
                expected.len(),
                outcome.result == expected,
                ms(t)
            );
        }
    }
    out
}

/// Span names that mark a round's extent on the coordinator timeline.
const ROUND_SPANS: [&str; 2] = ["eval_round", "resident_round"];
/// Span names attributed to communication: the reshuffle of the instance
/// (or delta) under the round's distribution policy.
const COMM_SPANS: [&str; 1] = ["distribute"];
/// Span names attributed to local compute — chunk/delta/resident
/// evaluation, in-process or shipped back from a wire worker.
const COMPUTE_SPANS: [&str; 6] = [
    "eval_chunk",
    "eval_delta",
    "eval_resident",
    "worker_eval_chunk",
    "worker_eval_delta",
    "worker_eval_resident",
];

/// Where one round's wall clock went, derived purely from trace spans
/// (see [`attribute_rounds`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundAttribution {
    /// Round number (from the span's `round` argument, else its ordinal).
    pub round: usize,
    /// The round span's wall-clock duration in microseconds.
    pub wall_us: u64,
    /// Total time inside `distribute` spans contained in the round.
    pub comm_us: u64,
    /// Total time inside evaluation spans contained in the round. With
    /// parallel workers this is aggregate busy time and may exceed the
    /// wall clock.
    pub compute_us: u64,
    /// `wall - comm - compute`, floored at zero: coordination, barrier
    /// waits, result assembly — everything the named phases don't cover.
    pub wait_us: u64,
}

/// Derives a per-round comm/compute/wait breakdown from raw trace events:
/// each `eval_round`/`resident_round` span defines a round interval, and
/// every span temporally contained in it is attributed by name —
/// `distribute` to communication, the evaluation spans to compute, and
/// the remainder of the wall clock to wait. Works on any event source
/// with the engine's span vocabulary (live [`obs::end_trace`] output or a
/// re-parsed trace file).
pub fn attribute_rounds(events: &[obs::TraceEvent]) -> Vec<RoundAttribution> {
    let spans: Vec<&obs::TraceEvent> = events
        .iter()
        .filter(|e| e.kind == obs::EventKind::Span)
        .collect();
    let mut rounds: Vec<(usize, u64, u64)> = Vec::new();
    for e in &spans {
        if ROUND_SPANS.contains(&e.name.as_str()) {
            let round = e
                .args
                .iter()
                .find(|(k, _)| k == "round")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(rounds.len());
            rounds.push((round, e.ts_us, e.ts_us + e.dur_us));
        }
    }
    rounds.sort_by_key(|&(_, start, _)| start);
    rounds
        .into_iter()
        .map(|(round, start, end)| {
            let mut comm_us = 0;
            let mut compute_us = 0;
            for e in spans
                .iter()
                .filter(|e| e.ts_us >= start && e.ts_us + e.dur_us <= end)
            {
                if COMM_SPANS.contains(&e.name.as_str()) {
                    comm_us += e.dur_us;
                } else if COMPUTE_SPANS.contains(&e.name.as_str()) {
                    compute_us += e.dur_us;
                }
            }
            let wall_us = end - start;
            RoundAttribution {
                round,
                wall_us,
                comm_us,
                compute_us,
                wait_us: wall_us.saturating_sub(comm_us + compute_us),
            }
        })
        .collect()
}

fn share(part_us: u64, wall_us: u64) -> String {
    match (part_us * 100).checked_div(wall_us) {
        Some(pct) => format!("{pct}%"),
        None => "-".to_string(),
    }
}

/// T9 — span-derived per-round attribution: runs named multi-round
/// workloads under an in-process trace and breaks every round's wall
/// clock into communication (reshuffle), local compute and wait, straight
/// from the span timeline — the observability pipeline auditing the
/// engine it instruments.
pub fn table_t9() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## T9 — span-derived per-round attribution (comm / compute / wait)\n"
    );
    let _ = writeln!(
        out,
        "Derived from an in-process trace of each run: `distribute` spans \
         count as communication, evaluation spans as compute (aggregate \
         busy time — parallel workers can push it past 100%), and the \
         unattributed remainder of each round's wall clock as wait.\n"
    );
    let _ = writeln!(
        out,
        "| workload | round | wall ms | comm ms | compute ms | wait ms | comm | compute | wait |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(109);
    let edge_schema = Schema::from_relations([("E", 2)]);
    let chain_schema = Schema::from_relations([("R", 2)]);
    let params = InstanceParams {
        domain_size: 24,
        facts_per_relation: 240,
    };
    let triangle_instance = workloads::random_instance(&mut rng, &edge_schema, params);
    let chain_instance = workloads::random_instance(&mut rng, &chain_schema, params);
    let triangle = triangle_query();
    let chain = chain_query(2);
    let runs: Vec<(&str, &ConjunctiveQuery, &Instance, bool)> = vec![
        ("triangle", &triangle, &triangle_instance, false),
        ("2-chain + feedback", &chain, &chain_instance, false),
        (
            "2-chain + feedback, semi-naive",
            &chain,
            &chain_instance,
            true,
        ),
    ];
    for (name, query, instance, semi_naive) in runs {
        let policy = HypercubePolicy::uniform(query, 2).expect("policy");
        let mut engine = MultiRoundEngine::new(RoundSchedule::repeat(&policy))
            .rounds(8)
            .workers(2)
            .semi_naive(semi_naive);
        if name.contains("feedback") {
            engine = engine.feedback_into("R");
        }
        obs::start_trace();
        let _outcome = engine.evaluate(query, instance);
        let events = obs::end_trace();
        for row in attribute_rounds(&events) {
            let _ = writeln!(
                out,
                "| {name} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} | {} |",
                row.round,
                row.wall_us as f64 / 1000.0,
                row.comm_us as f64 / 1000.0,
                row.compute_us as f64 / 1000.0,
                row.wait_us as f64 / 1000.0,
                share(row.comm_us, row.wall_us),
                share(row.compute_us, row.wall_us),
                share(row.wait_us, row.wall_us),
            );
        }
    }
    out
}

/// All experiment tables in order, as one markdown document body.
pub fn all_tables() -> String {
    let mut out = String::new();
    for table in [
        table_t1(),
        table_t2(),
        table_t3(),
        table_t4(),
        table_t5(),
        table_t6(),
        table_t7(),
        table_t8(),
        table_t9(),
    ] {
        out.push_str(&table);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_and_t4_tables_render() {
        let t1 = table_t1();
        assert!(t1.contains("example 3.5"));
        let t4 = table_t4();
        assert!(t4.contains("3-chain"));
    }

    #[test]
    fn t6_table_confirms_family_properties() {
        let t6 = table_t6();
        assert!(t6.contains("| triangle | edge projection | true |"));
        assert!(t6.contains("| triangle | true | true | true |"));
    }

    fn span(name: &str, ts_us: u64, dur_us: u64, args: &[(&str, &str)]) -> obs::TraceEvent {
        obs::TraceEvent {
            name: name.to_string(),
            kind: obs::EventKind::Span,
            ts_us,
            dur_us,
            pid: 0,
            tid: 1,
            id: ts_us + 1,
            parent: 0,
            args: args
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn attribution_splits_rounds_into_comm_compute_and_wait() {
        // Round 0: 100µs wall — 30µs distribute, two 20µs evals (parallel
        // workers overlapping in time), 30µs unaccounted.
        // Round 1: 50µs wall, all wait (an elided-reshuffle resident round).
        let events = vec![
            span("eval_round", 0, 100, &[("round", "0")]),
            span("distribute", 5, 30, &[]),
            span("eval_chunk", 40, 20, &[]),
            span("worker_eval_chunk", 45, 20, &[]),
            span("resident_round", 200, 50, &[]),
            // Outside every round: must not be attributed anywhere.
            span("distribute", 500, 40, &[]),
        ];
        let rows = attribute_rounds(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            RoundAttribution {
                round: 0,
                wall_us: 100,
                comm_us: 30,
                compute_us: 40,
                wait_us: 30,
            }
        );
        // The resident round has no `round` argument: it takes its ordinal.
        assert_eq!(rows[1].round, 1);
        assert_eq!(rows[1].wall_us, 50);
        assert_eq!(rows[1].comm_us, 0);
        assert_eq!(rows[1].wait_us, 50);
    }

    #[test]
    fn attribution_wait_floors_at_zero_when_compute_overlaps() {
        // Three 80µs evals inside a 100µs round: aggregate busy time
        // exceeds the wall clock, so wait saturates instead of wrapping.
        let events = vec![
            span("eval_round", 0, 100, &[("round", "0")]),
            span("eval_chunk", 10, 80, &[]),
            span("eval_chunk", 12, 80, &[]),
            span("eval_chunk", 14, 80, &[]),
        ];
        let rows = attribute_rounds(&events);
        assert_eq!(rows[0].compute_us, 240);
        assert_eq!(rows[0].wait_us, 0);
    }
}
