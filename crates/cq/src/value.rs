//! Data values from the infinite domain **dom**.

use std::fmt;

use crate::intern::Symbol;

/// A data value from the domain **dom** of the paper.
///
/// The paper assumes an infinite domain of values representable as strings.
/// Values are interned [`Symbol`]s, so they are `Copy` and cheap to hash and
/// compare. Synthetic values (used when the decision procedures need "fresh"
/// values that cannot clash with user data) are created with
/// [`Value::synthetic`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(Symbol);

impl Value {
    /// Interns `name` as a data value.
    pub fn new(name: &str) -> Value {
        Value(Symbol::new(name))
    }

    /// A synthetic value distinct from any value created through
    /// [`Value::new`] with a typical identifier (the name contains `'$'`,
    /// which the parser rejects in user input).
    pub fn synthetic(index: usize) -> Value {
        Value(Symbol::new(&format!("$v{index}")))
    }

    /// A numbered value with a custom prefix, e.g. `Value::indexed("n", 3)`
    /// is the value `n3`.
    pub fn indexed(prefix: &str, index: usize) -> Value {
        Value(Symbol::new(&format!("{prefix}{index}")))
    }

    /// The string representation of the value.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying interned symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }

    /// Whether this value was produced by [`Value::synthetic`].
    pub fn is_synthetic(self) -> bool {
        self.as_str().starts_with("$v")
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({})", self.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::new(value)
    }
}

impl From<u64> for Value {
    fn from(value: u64) -> Self {
        Value::new(&value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Value::new("a"), Value::from("a"));
        assert_ne!(Value::new("a"), Value::new("b"));
    }

    #[test]
    fn synthetic_values_do_not_clash_with_user_values() {
        let user = Value::new("v0");
        let synth = Value::synthetic(0);
        assert_ne!(user, synth);
        assert!(synth.is_synthetic());
        assert!(!user.is_synthetic());
    }

    #[test]
    fn numeric_values_display_as_digits() {
        let v: Value = 42u64.into();
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn indexed_builds_prefixed_names() {
        assert_eq!(Value::indexed("node", 7).as_str(), "node7");
    }
}
