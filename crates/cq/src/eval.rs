//! Evaluation of conjunctive queries over instances.
//!
//! The evaluator enumerates *satisfying valuations* by backtracking over the
//! body atoms. Atoms are ordered greedily (most already-bound variables
//! first, ties broken by smaller relations), which keeps the intermediate
//! candidate sets small; the naive source order can be selected through
//! [`EvalOptions`] for the ablation benchmark.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::atom::{Atom, Variable};
use crate::fact::Fact;
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::valuation::Valuation;

/// Options controlling the evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Use the greedy most-bound-variables-first atom ordering (default).
    /// When `false`, atoms are matched in source order — this is the
    /// baseline for the join-ordering ablation.
    pub greedy_ordering: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            greedy_ordering: true,
        }
    }
}

/// Computes the atom processing order.
fn atom_order(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
) -> Vec<usize> {
    let n = query.body_size();
    if !opts.greedy_ordering {
        return (0..n).collect();
    }
    let mut bound: BTreeSet<Variable> = fixed.bindings().map(|(v, _)| v).collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| {
                let atom = &query.body()[i];
                let bound_args = atom.args.iter().filter(|v| bound.contains(v)).count();
                let size = instance.facts_of(atom.relation).len();
                // more bound args is better; smaller relation is better
                (bound_args as isize, -(size as isize))
            })
            .expect("remaining is non-empty");
        order.push(best);
        for &v in &query.body()[best].args {
            bound.insert(v);
        }
        remaining.remove(pos);
    }
    order
}

/// Tries to extend `binding` so that `atom` maps onto `fact`.
///
/// Returns the list of variables newly bound (for undo) or `None` if the
/// fact does not match.
fn try_match(atom: &Atom, fact: &Fact, binding: &mut Valuation) -> Option<Vec<Variable>> {
    if atom.relation != fact.relation || atom.arity() != fact.arity() {
        return None;
    }
    let mut newly_bound = Vec::new();
    for (&var, &value) in atom.args.iter().zip(fact.values.iter()) {
        match binding.get(var) {
            Some(existing) if existing == value => {}
            Some(_) => {
                for v in newly_bound {
                    binding.unbind(v);
                }
                return None;
            }
            None => {
                binding.bind(var, value);
                newly_bound.push(var);
            }
        }
    }
    Some(newly_bound)
}

fn search<F>(
    query: &ConjunctiveQuery,
    instance: &Instance,
    order: &[usize],
    depth: usize,
    binding: &mut Valuation,
    callback: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    if depth == order.len() {
        return callback(binding);
    }
    let atom = &query.body()[order[depth]];
    // Collect candidate facts for the atom's relation and try each.
    for fact in instance.facts_of(atom.relation) {
        if let Some(newly_bound) = try_match(atom, fact, binding) {
            let flow = search(query, instance, order, depth + 1, binding, callback);
            for v in newly_bound {
                binding.unbind(v);
            }
            flow?;
        }
    }
    ControlFlow::Continue(())
}

/// Enumerates the satisfying valuations of `query` on `instance` that extend
/// the partial valuation `fixed`, invoking `callback` for each.
///
/// The callback receives a *total* valuation on the query variables and can
/// stop the enumeration early by returning [`ControlFlow::Break`]. The
/// function returns `Break(())` when the enumeration was stopped early.
pub fn for_each_satisfying<F>(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
    mut callback: F,
) -> ControlFlow<()>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    // Fixed bindings for variables that do not occur in the query are
    // harmless; restrict to query variables so totality checks stay exact.
    let vars = query.variables();
    let mut binding = fixed.restrict(&vars);
    let order = atom_order(query, instance, &binding, opts);
    search(query, instance, &order, 0, &mut binding, &mut callback)
}

/// All satisfying valuations of `query` on `instance`.
pub fn satisfying_valuations(query: &ConjunctiveQuery, instance: &Instance) -> Vec<Valuation> {
    satisfying_valuations_with(query, instance, &Valuation::new(), EvalOptions::default())
}

/// All satisfying valuations extending the partial valuation `fixed`.
pub fn satisfying_valuations_with(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let _ = for_each_satisfying(query, instance, fixed, opts, |v| {
        if seen.insert(v.clone()) {
            out.push(v.clone());
        }
        ControlFlow::Continue(())
    });
    out
}

/// Evaluates `query` on `instance`: the set of facts derived by satisfying
/// valuations (`Q(I)` in the paper).
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> Instance {
    let mut out = Instance::new();
    let _ = for_each_satisfying(
        query,
        instance,
        &Valuation::new(),
        EvalOptions::default(),
        |v| {
            out.insert(v.derived_fact(query));
            ControlFlow::Continue(())
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_instance;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn path_query_over_a_chain() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let i = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let result = evaluate(&query, &i);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&Fact::from_names("T", &["a", "c"])));
        assert!(result.contains(&Fact::from_names("T", &["b", "d"])));
    }

    #[test]
    fn triangle_query() {
        let query = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let i = parse_instance("E(a, b). E(b, c). E(c, a). E(a, d).").unwrap();
        let result = evaluate(&query, &i);
        // the triangle a-b-c in all three rotations
        assert_eq!(result.len(), 3);
        assert!(result.contains(&Fact::from_names("T", &["a", "b", "c"])));
        assert!(result.contains(&Fact::from_names("T", &["b", "c", "a"])));
        assert!(result.contains(&Fact::from_names("T", &["c", "a", "b"])));
    }

    #[test]
    fn boolean_query_produces_nullary_fact() {
        let query = q("T() :- R(x, x).");
        let yes = parse_instance("R(a, a). R(a, b).").unwrap();
        let no = parse_instance("R(a, b). R(b, a).").unwrap();
        assert_eq!(evaluate(&query, &yes).len(), 1);
        assert!(evaluate(&query, &no).is_empty());
    }

    #[test]
    fn self_join_with_repeated_variable() {
        // Example 3.5 query.
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let i = parse_instance("R(a, b). R(b, a). R(a, a).").unwrap();
        let result = evaluate(&query, &i);
        assert!(result.contains(&Fact::from_names("T", &["a", "a"])));
        assert!(result.contains(&Fact::from_names("T", &["a", "b"])));
        // b has no self-loop, so nothing starts at b
        assert!(!result
            .facts()
            .any(|f| f.values[0] == crate::Value::new("b")));
    }

    #[test]
    fn empty_instance_yields_empty_result() {
        let query = q("T(x) :- R(x, y).");
        assert!(evaluate(&query, &Instance::new()).is_empty());
    }

    #[test]
    fn monotonicity_on_random_like_data() {
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let small = parse_instance("R(a, b). S(b, c).").unwrap();
        let big = parse_instance("R(a, b). S(b, c). R(b, b). S(c, a). R(c, a).").unwrap();
        let small_res = evaluate(&query, &small);
        let big_res = evaluate(&query, &big);
        assert!(big_res.contains_all(&small_res));
    }

    #[test]
    fn fixed_bindings_constrain_the_search() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let i = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let fixed = Valuation::from_names([("x", "a")]);
        let vals = satisfying_valuations_with(&query, &i, &fixed, EvalOptions::default());
        assert_eq!(vals.len(), 1);
        assert_eq!(
            vals[0].get(Variable::new("z")),
            Some(crate::Value::new("c"))
        );
    }

    #[test]
    fn greedy_and_naive_orderings_agree() {
        let query = q("T(x, w) :- R(x, y), S(y, z), R(z, w).");
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, a). S(b, c). S(c, d). S(d, b). S(a, a).",
        )
        .unwrap();
        let greedy = satisfying_valuations_with(
            &query,
            &i,
            &Valuation::new(),
            EvalOptions {
                greedy_ordering: true,
            },
        );
        let naive = satisfying_valuations_with(
            &query,
            &i,
            &Valuation::new(),
            EvalOptions {
                greedy_ordering: false,
            },
        );
        let g: BTreeSet<_> = greedy.into_iter().collect();
        let n: BTreeSet<_> = naive.into_iter().collect();
        assert_eq!(g, n);
        assert!(!g.is_empty());
    }

    #[test]
    fn early_termination_stops_the_search() {
        let query = q("T(x) :- R(x, y).");
        let i = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let mut count = 0;
        let flow = for_each_satisfying(
            &query,
            &i,
            &Valuation::new(),
            EvalOptions::default(),
            |_| {
                count += 1;
                ControlFlow::Break(())
            },
        );
        assert_eq!(count, 1);
        assert_eq!(flow, ControlFlow::Break(()));
    }

    #[test]
    fn satisfying_valuations_are_total_and_satisfying() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let i = parse_instance("R(a, b). R(b, a). R(a, a). R(b, b).").unwrap();
        let vals = satisfying_valuations(&query, &i);
        assert!(!vals.is_empty());
        for v in &vals {
            assert!(v.is_total_for(&query));
            assert!(v.satisfies(&query, &i));
        }
    }
}
