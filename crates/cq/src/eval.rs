//! Evaluation of conjunctive queries over instances.
//!
//! The evaluator enumerates *satisfying valuations* by backtracking over the
//! body atoms. Two orthogonal strategy axes are exposed through
//! [`EvalOptions`]:
//!
//! * **Candidate retrieval** — by default each atom with at least one bound
//!   argument retrieves its candidate facts through the instance's secondary
//!   hash indexes ([`Instance::posting`]), intersecting the per-position
//!   posting lists when several arguments are bound. `use_indexes: false`
//!   falls back to scanning the whole relation (the seed behavior, kept as
//!   the ablation baseline and as the ground truth for property tests).
//! * **Join ordering** — by default atoms are ordered by a cost model that
//!   estimates each atom's candidate-set size from the index statistics
//!   (exact posting-list lengths for variables pre-bound to known values,
//!   average selectivity `|R| / distinct(position)` for variables bound by
//!   earlier atoms). [`JoinOrdering::Naive`] keeps source order for the
//!   join-ordering ablation benchmark. With `use_indexes: false` the cost
//!   model switches to an index-free estimate (relation size discounted per
//!   bound argument), so the scan configuration never builds indexes at all.
//! * **Join strategy** — under [`JoinStrategy::Auto`] (the default) acyclic
//!   queries run the classic atom-at-a-time binary join, while queries
//!   whose join graph is cyclic (GYO reduction, [`crate::is_acyclic`])
//!   switch to a leapfrog-style *worst-case-optimal multiway join*: one
//!   variable is bound at a time and every atom containing it narrows its
//!   candidate rows by posting-list intersection, which avoids the
//!   intermediate-result blowup binary plans pay on triangles and other
//!   cycles. The multiway join *is* a posting-list intersection, so it
//!   needs `use_indexes: true`; without indexes the evaluator always falls
//!   back to the binary scan join.
//! * **Adaptive reordering** — with a nonzero `adaptive_factor`, the binary
//!   matcher compares each depth's observed candidate count against the
//!   planner's estimate and re-ranks the remaining atoms mid-search (using
//!   the now-concrete bindings as known values, i.e. exact posting counts)
//!   when observation exceeds the estimate by more than the factor, so one
//!   bad early estimate stops poisoning the rest of the search.
//!
//! All strategies enumerate exactly the same valuations; only the order and
//! shape of the backtracking search differ.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::atom::{Atom, Variable};
use crate::fact::Fact;
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::valuation::Valuation;
use crate::value::Value;

/// How the evaluator orders the body atoms before the backtracking search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinOrdering {
    /// Source order — the baseline for the join-ordering ablation.
    Naive,
    /// Cheapest-estimated-candidate-set-first, using index statistics.
    #[default]
    CostAware,
}

/// Which join algorithm the evaluator runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinStrategy {
    /// The classic atom-at-a-time backtracking join.
    Binary,
    /// The leapfrog-style variable-at-a-time multiway join over the sorted
    /// posting lists. Requires `use_indexes: true`; falls back to binary
    /// otherwise.
    Multiway,
    /// Plan per query: multiway when the join graph is cyclic (GYO
    /// reduction), binary otherwise.
    #[default]
    Auto,
}

impl JoinStrategy {
    /// Parses a CLI-style strategy name.
    pub fn parse(name: &str) -> Option<JoinStrategy> {
        match name {
            "binary" => Some(JoinStrategy::Binary),
            "multiway" => Some(JoinStrategy::Multiway),
            "auto" => Some(JoinStrategy::Auto),
            _ => None,
        }
    }

    /// The CLI-style name of the strategy.
    pub fn label(&self) -> &'static str {
        match self {
            JoinStrategy::Binary => "binary",
            JoinStrategy::Multiway => "multiway",
            JoinStrategy::Auto => "auto",
        }
    }
}

/// Options controlling the evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Join-order selection strategy (default: cost-aware).
    pub ordering: JoinOrdering,
    /// Retrieve candidate facts through the secondary hash indexes
    /// (default). When `false`, every atom scans its whole relation.
    pub use_indexes: bool,
    /// Join algorithm selection (default: [`JoinStrategy::Auto`] — multiway
    /// on cyclic queries, binary otherwise).
    pub join_strategy: JoinStrategy,
    /// Adaptive mid-search reordering threshold for the binary join: when
    /// an atom's observed candidate count exceeds `adaptive_factor ×` its
    /// planned estimate, the remaining atoms are re-ranked with the current
    /// concrete bindings. `0` disables; only applies under
    /// [`JoinOrdering::CostAware`].
    pub adaptive_factor: u32,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            ordering: JoinOrdering::CostAware,
            use_indexes: true,
            join_strategy: JoinStrategy::Auto,
            adaptive_factor: 4,
        }
    }
}

impl EvalOptions {
    /// The seed evaluator: full-relation scans in source order.
    pub fn scan_naive() -> EvalOptions {
        EvalOptions {
            ordering: JoinOrdering::Naive,
            use_indexes: false,
            join_strategy: JoinStrategy::Binary,
            adaptive_factor: 0,
        }
    }

    /// Returns the options with the given join strategy.
    pub fn with_join_strategy(mut self, strategy: JoinStrategy) -> EvalOptions {
        self.join_strategy = strategy;
        self
    }

    /// The join algorithm these options select for `query`: the multiway
    /// matcher on an explicit [`JoinStrategy::Multiway`] or on
    /// [`JoinStrategy::Auto`] with a cyclic join graph — and only when the
    /// secondary indexes are enabled, because the multiway join *is* a
    /// posting-list intersection.
    pub fn resolved_strategy(&self, query: &ConjunctiveQuery) -> JoinStrategy {
        if !self.use_indexes {
            return JoinStrategy::Binary;
        }
        match self.join_strategy {
            JoinStrategy::Binary => JoinStrategy::Binary,
            JoinStrategy::Multiway => JoinStrategy::Multiway,
            JoinStrategy::Auto => {
                if crate::acyclic::is_acyclic(query) {
                    JoinStrategy::Binary
                } else {
                    JoinStrategy::Multiway
                }
            }
        }
    }
}

/// Estimated number of candidate facts for `atom`, given the variables with
/// statically known values (`known`) and the variables bound by earlier atoms
/// to values unknown at planning time (`bound`).
///
/// Starts from the relation size and multiplies in one selectivity factor
/// per bound argument position: the exact posting-list fraction when the
/// value is known, the average `1 / distinct(position)` otherwise.
fn estimate_candidates(
    atom: &Atom,
    instance: &Instance,
    known: &Valuation,
    bound: &BTreeSet<Variable>,
) -> f64 {
    let relation_size = instance.facts_of(atom.relation).len();
    if relation_size == 0 {
        return 0.0;
    }
    let n = relation_size as f64;
    let mut estimate = n;
    for (position, &var) in atom.args.iter().enumerate() {
        if let Some(value) = known.get(var) {
            estimate *= instance.count_matching(atom.relation, position, value) as f64 / n;
        } else if bound.contains(&var) {
            let distinct = instance.distinct_values_at(atom.relation, position);
            if distinct > 0 {
                estimate /= distinct as f64;
            }
        }
    }
    estimate
}

/// Index-free candidate estimate used when `use_indexes: false`: the
/// relation size discounted by a fixed factor per bound argument. Keeping
/// this path off the secondary indexes makes `use_indexes: false` a genuine
/// "no indexes anywhere" mode (ordering included), so the ablation measures
/// what it claims to.
fn estimate_candidates_index_free(
    atom: &Atom,
    instance: &Instance,
    known: &Valuation,
    bound: &BTreeSet<Variable>,
) -> f64 {
    let n = instance.facts_of(atom.relation).len() as f64;
    let bound_args = atom
        .args
        .iter()
        .filter(|v| known.binds(**v) || bound.contains(v))
        .count() as u32;
    // assume each bound argument keeps ~1/4 of the candidates
    n / 4f64.powi(bound_args as i32)
}

/// Greedily ranks `remaining` atoms cheapest-estimated-candidate-set-first
/// (ties resolved in source order, so plans are deterministic), starting
/// from the given already-bound variable set. Returns `(atom, estimate)`
/// pairs in processing order — the shared cost-model core of the upfront
/// planner ([`atom_order`], [`atom_order_with_first`]) and the adaptive
/// mid-search re-ranking.
fn rank_remaining(
    query: &ConjunctiveQuery,
    instance: &Instance,
    known: &Valuation,
    mut bound: BTreeSet<Variable>,
    opts: EvalOptions,
    mut remaining: Vec<usize>,
) -> Vec<(usize, f64)> {
    let mut ranked = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut best_pos = 0;
        let mut best_cost = f64::INFINITY;
        for (pos, &i) in remaining.iter().enumerate() {
            let atom = &query.body()[i];
            let cost = if opts.use_indexes {
                estimate_candidates(atom, instance, known, &bound)
            } else {
                estimate_candidates_index_free(atom, instance, known, &bound)
            };
            if cost < best_cost {
                best_cost = cost;
                best_pos = pos;
            }
        }
        let best = remaining.remove(best_pos);
        ranked.push((best, best_cost));
        bound.extend(query.body()[best].args.iter().copied());
    }
    ranked
}

/// Computes the atom processing order and the planner's per-depth candidate
/// estimates (infinite under [`JoinOrdering::Naive`], which never
/// estimates — the adaptive reorderer then never fires).
fn plan(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
) -> (Vec<usize>, Vec<f64>) {
    let n = query.body_size();
    if opts.ordering == JoinOrdering::Naive {
        return ((0..n).collect(), vec![f64::INFINITY; n]);
    }
    let bound: BTreeSet<Variable> = fixed.bindings().map(|(v, _)| v).collect();
    rank_remaining(query, instance, fixed, bound, opts, (0..n).collect())
        .into_iter()
        .unzip()
}

/// Computes the atom processing order.
///
/// Cost-aware ordering greedily picks the atom with the smallest estimated
/// candidate set next (ties resolved in source order, so plans are
/// deterministic and degrade to the naive order when the model has no
/// information to distinguish atoms).
#[cfg(test)]
fn atom_order(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
) -> Vec<usize> {
    plan(query, instance, fixed, opts).0
}

/// Tries to extend `binding` so that `atom` maps onto `fact`.
///
/// Returns the list of variables newly bound (for undo) or `None` if the
/// fact does not match.
fn try_match(atom: &Atom, fact: &Fact, binding: &mut Valuation) -> Option<Vec<Variable>> {
    if atom.relation != fact.relation || atom.arity() != fact.arity() {
        return None;
    }
    let mut newly_bound = Vec::new();
    for (&var, &value) in atom.args.iter().zip(fact.values.iter()) {
        match binding.get(var) {
            Some(existing) if existing == value => {}
            Some(_) => {
                for v in newly_bound {
                    binding.unbind(v);
                }
                return None;
            }
            None => {
                binding.bind(var, value);
                newly_bound.push(var);
            }
        }
    }
    Some(newly_bound)
}

/// The backtracking matcher: query, plan and per-depth scratch space.
///
/// `instances[d]` is the instance atom `order[d]` draws its candidate facts
/// from. The plain evaluator uses the same instance at every depth; the
/// semi-naive differential pass pins its pivot atom to the delta instance
/// and every other atom to the full instance.
struct Matcher<'a, F> {
    query: &'a ConjunctiveQuery,
    instances: Vec<&'a Instance>,
    order: Vec<usize>,
    opts: EvalOptions,
    callback: F,
    /// One reusable constraint buffer per search depth, so the hot path does
    /// not allocate per visited search-tree node.
    constraints: Vec<Vec<(usize, Value)>>,
    /// The planner's per-depth candidate estimates (parallel to `order`);
    /// the adaptive reorderer compares them against observed counts.
    estimates: Vec<f64>,
    /// Whether mid-search re-ranking is enabled: uniform-instance searches
    /// under cost-aware ordering with a nonzero `adaptive_factor`. Off in
    /// semi-naive passes, whose per-depth instances must stay aligned with
    /// the pivot plan.
    adaptive: bool,
}

impl<F> Matcher<'_, F>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    fn search(&mut self, depth: usize, binding: &mut Valuation) -> ControlFlow<()> {
        if depth == self.order.len() {
            return (self.callback)(binding);
        }
        let query = self.query;
        let atom = &query.body()[self.order[depth]];

        // Collect the (position, value) constraints the current binding
        // imposes on the atom.
        let mut constraints = std::mem::take(&mut self.constraints[depth]);
        constraints.clear();
        if self.opts.use_indexes {
            for (position, &var) in atom.args.iter().enumerate() {
                if let Some(value) = binding.get(var) {
                    constraints.push((position, value));
                }
            }
        }

        if self.adaptive && depth + 2 < self.order.len() {
            self.maybe_rerank_tail(depth, &constraints, binding);
        }

        let flow = if constraints.is_empty() {
            // Unconstrained (or index-free) atom: scan the whole relation.
            self.try_facts_scan(atom, depth, binding)
        } else {
            self.try_facts_indexed(atom, &constraints, depth, binding)
        };
        self.constraints[depth] = constraints;
        flow
    }

    /// The adaptive reorderer: when the candidate count observed at `depth`
    /// exceeds `adaptive_factor ×` the planner's estimate, the remaining
    /// atoms are re-ranked through the same cost model — but with the
    /// concrete bindings accumulated so far as known values, so the model
    /// now works from exact posting counts instead of planning-time
    /// averages. Re-ranking only permutes the tail of `order`; every
    /// subtree still covers all atoms, so the enumerated valuations are
    /// unchanged.
    fn maybe_rerank_tail(
        &mut self,
        depth: usize,
        constraints: &[(usize, Value)],
        binding: &Valuation,
    ) {
        let atom = &self.query.body()[self.order[depth]];
        let instance = self.instances[depth];
        let observed = if constraints.is_empty() {
            instance.facts_of(atom.relation).len()
        } else {
            constraints
                .iter()
                .map(|&(p, v)| instance.posting(atom.relation, p, v).len())
                .min()
                .unwrap_or(0)
        };
        let factor = f64::from(self.opts.adaptive_factor);
        if (observed as f64) <= factor * self.estimates[depth].max(1.0) {
            return;
        }
        obs::instant!(
            "adaptive_reorder",
            depth = depth,
            observed = observed,
            estimate = self.estimates[depth]
        );
        // Remember the surprise so sibling subtrees with similar observed
        // counts do not replan over and over.
        self.estimates[depth] = observed as f64;
        let mut bound: BTreeSet<Variable> = BTreeSet::new();
        for d in 0..=depth {
            bound.extend(self.query.body()[self.order[d]].args.iter().copied());
        }
        let remaining: Vec<usize> = self.order[depth + 1..].to_vec();
        let ranked = rank_remaining(self.query, instance, binding, bound, self.opts, remaining);
        for (offset, (atom_idx, estimate)) in ranked.into_iter().enumerate() {
            self.order[depth + 1 + offset] = atom_idx;
            self.estimates[depth + 1 + offset] = estimate;
        }
    }

    fn try_facts_scan(
        &mut self,
        atom: &Atom,
        depth: usize,
        binding: &mut Valuation,
    ) -> ControlFlow<()> {
        let instance = self.instances[depth];
        for fact in instance.facts_of(atom.relation) {
            if let Some(newly_bound) = try_match(atom, fact, binding) {
                let flow = self.search(depth + 1, binding);
                for v in newly_bound {
                    binding.unbind(v);
                }
                flow?;
            }
        }
        ControlFlow::Continue(())
    }

    /// Iterates the shortest posting list and skips rows absent from the
    /// other bound positions' lists (sorted-list intersection), so only
    /// facts agreeing with every bound argument reach `try_match`.
    fn try_facts_indexed(
        &mut self,
        atom: &Atom,
        constraints: &[(usize, Value)],
        depth: usize,
        binding: &mut Valuation,
    ) -> ControlFlow<()> {
        let instance = self.instances[depth];
        let facts = instance.facts_of(atom.relation);
        let (&(pos0, val0), rest) = constraints.split_first().expect("non-empty constraints");
        let mut shortest = instance.posting(atom.relation, pos0, val0);
        let mut others: Vec<&[u32]> = Vec::with_capacity(rest.len());
        for &(pos, val) in rest {
            let posting = instance.posting(atom.relation, pos, val);
            if posting.len() < shortest.len() {
                others.push(shortest);
                shortest = posting;
            } else {
                others.push(posting);
            }
        }
        for &row in shortest {
            if !others.iter().all(|p| p.binary_search(&row).is_ok()) {
                continue;
            }
            let fact = &facts[row as usize];
            if let Some(newly_bound) = try_match(atom, fact, binding) {
                let flow = self.search(depth + 1, binding);
                for v in newly_bound {
                    binding.unbind(v);
                }
                flow?;
            }
        }
        ControlFlow::Continue(())
    }
}

/// Intersection of two sorted, duplicate-free row-id lists: iterates the
/// shorter and binary-searches the longer.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .copied()
        .filter(|row| large.binary_search(row).is_ok())
        .collect()
}

/// The worst-case-optimal multiway matcher: binds one *variable* at a time
/// instead of matching one atom at a time.
///
/// Every atom keeps a sorted set of candidate row ids into its relation's
/// fact vector. Binding a variable to a value intersects, for every
/// position of every atom the variable occurs in, the atom's candidate
/// rows with the posting list of that value — so all atoms narrow
/// together, leapfrog-style, and a binary join's intermediate results
/// (pairs that can never close a cycle) are never materialized. Once all
/// variables are bound, every surviving row set is non-empty and agrees
/// with the binding at every position, so the binding satisfies the query.
struct MultiwayMatcher<'a, F> {
    query: &'a ConjunctiveQuery,
    instance: &'a Instance,
    /// Variable binding order: most-constrained (most occurrences) first.
    var_order: Vec<Variable>,
    /// `occurrences[d]` = the `(atom, position)` pairs where `var_order[d]`
    /// occurs in the body.
    occurrences: Vec<Vec<(usize, usize)>>,
    /// Per-atom sorted candidate row ids (into [`Instance::facts_of`]).
    rows: Vec<Vec<u32>>,
    callback: F,
}

impl<F> MultiwayMatcher<'_, F>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    fn search(&mut self, depth: usize, binding: &mut Valuation) -> ControlFlow<()> {
        if depth == self.var_order.len() {
            return (self.callback)(binding);
        }
        let var = self.var_order[depth];
        let instance = self.instance;
        // Take the frame's occurrence list out of `self` so narrowing can
        // borrow the matcher mutably; restored before returning.
        let occs = std::mem::take(&mut self.occurrences[depth]);
        // The atom with the fewest candidate rows bounds the value set.
        let (src_atom, src_pos) = occs
            .iter()
            .copied()
            .min_by_key(|&(atom, _)| self.rows[atom].len())
            .expect("ordered variables occur in at least one atom");
        let src_facts = instance.facts_of(self.query.body()[src_atom].relation);
        let mut candidates: BTreeSet<Value> = BTreeSet::new();
        'rows: for &row in &self.rows[src_atom] {
            let fact = &src_facts[row as usize];
            let value = fact.values[src_pos];
            // A variable repeated inside the source atom must agree across
            // its positions for the row to propose a value at all.
            for &(atom, position) in occs.iter() {
                if atom == src_atom && fact.values[position] != value {
                    continue 'rows;
                }
            }
            candidates.insert(value);
        }
        let mut result = ControlFlow::Continue(());
        for value in candidates {
            // Narrow every occurrence to the rows carrying `value` at that
            // position; an empty intersection prunes the whole branch.
            let mut trail: Vec<(usize, Vec<u32>)> = Vec::with_capacity(occs.len());
            let mut alive = true;
            for &(atom, position) in occs.iter() {
                let relation = self.query.body()[atom].relation;
                let posting = instance.posting(relation, position, value);
                let narrowed = intersect_sorted(&self.rows[atom], posting);
                alive = !narrowed.is_empty();
                trail.push((atom, std::mem::replace(&mut self.rows[atom], narrowed)));
                if !alive {
                    break;
                }
            }
            let flow = if alive {
                binding.bind(var, value);
                let flow = self.search(depth + 1, binding);
                binding.unbind(var);
                flow
            } else {
                ControlFlow::Continue(())
            };
            for (atom, saved) in trail.into_iter().rev() {
                self.rows[atom] = saved;
            }
            if flow.is_break() {
                result = ControlFlow::Break(());
                break;
            }
        }
        self.occurrences[depth] = occs;
        result
    }
}

/// Runs the multiway join: seeds each atom's candidate rows from the
/// pre-bound variables' posting lists, orders the unbound variables
/// most-occurrences-first, and searches variable by variable.
fn for_each_satisfying_multiway<F>(
    query: &ConjunctiveQuery,
    instance: &Instance,
    binding: &mut Valuation,
    callback: F,
) -> ControlFlow<()>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    let body = query.body();
    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(body.len());
    for atom in body {
        let fact_count = instance.facts_of(atom.relation).len();
        let fact_count = u32::try_from(fact_count).expect("relation larger than u32::MAX facts");
        let mut candidate_rows: Vec<u32> = (0..fact_count).collect();
        for (position, &var) in atom.args.iter().enumerate() {
            if let Some(value) = binding.get(var) {
                let posting = instance.posting(atom.relation, position, value);
                candidate_rows = intersect_sorted(&candidate_rows, posting);
            }
        }
        if candidate_rows.is_empty() {
            // Some atom cannot match at all (empty relation, or a
            // pre-bound value that occurs nowhere): no valuations.
            return ControlFlow::Continue(());
        }
        rows.push(candidate_rows);
    }
    // Distinct unbound body variables in first-occurrence order, then
    // stably sorted most-occurrences-first (ties keep source order).
    let mut var_order: Vec<Variable> = Vec::new();
    for atom in body {
        for &var in &atom.args {
            if !binding.binds(var) && !var_order.contains(&var) {
                var_order.push(var);
            }
        }
    }
    let occurrence_count = |v: Variable| {
        body.iter()
            .flat_map(|a| a.args.iter())
            .filter(|&&w| w == v)
            .count()
    };
    var_order.sort_by_key(|&v| std::cmp::Reverse(occurrence_count(v)));
    let occurrences: Vec<Vec<(usize, usize)>> = var_order
        .iter()
        .map(|&v| {
            body.iter()
                .enumerate()
                .flat_map(|(atom, a)| {
                    a.args
                        .iter()
                        .enumerate()
                        .filter(move |&(_, &w)| w == v)
                        .map(move |(position, _)| (atom, position))
                })
                .collect()
        })
        .collect();
    let mut matcher = MultiwayMatcher {
        query,
        instance,
        var_order,
        occurrences,
        rows,
        callback,
    };
    matcher.search(0, binding)
}

/// Enumerates the satisfying valuations of `query` on `instance` that extend
/// the partial valuation `fixed`, invoking `callback` for each.
///
/// The callback receives a *total* valuation on the query variables and can
/// stop the enumeration early by returning [`ControlFlow::Break`]. The
/// function returns `Break(())` when the enumeration was stopped early.
pub fn for_each_satisfying<F>(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
    callback: F,
) -> ControlFlow<()>
where
    F: FnMut(&Valuation) -> ControlFlow<()>,
{
    // Fixed bindings for variables that do not occur in the query are
    // harmless; restrict to query variables so totality checks stay exact.
    let vars = query.variables();
    let mut binding = fixed.restrict(&vars);
    if opts.resolved_strategy(query) == JoinStrategy::Multiway {
        return for_each_satisfying_multiway(query, instance, &mut binding, callback);
    }
    let (order, estimates) = plan(query, instance, &binding, opts);
    let depth_count = order.len();
    let mut matcher = Matcher {
        query,
        instances: vec![instance; depth_count],
        order,
        opts,
        callback,
        constraints: vec![Vec::new(); depth_count],
        estimates,
        adaptive: opts.adaptive_factor > 0 && opts.ordering == JoinOrdering::CostAware,
    };
    matcher.search(0, &mut binding)
}

/// Computes the atom processing order with atom `first` forced to the
/// front; the remaining atoms follow the cost-aware greedy order (or source
/// order under [`JoinOrdering::Naive`]) with `first`'s variables counted as
/// already bound. This is the plan shape of a semi-naive differential pass:
/// the pivot atom matches the (small) delta first, everything else joins
/// against the full instance.
fn atom_order_with_first(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
    first: usize,
) -> Vec<usize> {
    let n = query.body_size();
    let mut order = Vec::with_capacity(n);
    order.push(first);
    if opts.ordering == JoinOrdering::Naive {
        order.extend((0..n).filter(|&i| i != first));
        return order;
    }
    let mut bound: BTreeSet<Variable> = fixed.bindings().map(|(v, _)| v).collect();
    bound.extend(query.body()[first].args.iter().copied());
    let remaining: Vec<usize> = (0..n).filter(|&i| i != first).collect();
    order.extend(
        rank_remaining(query, instance, fixed, bound, opts, remaining)
            .into_iter()
            .map(|(i, _)| i),
    );
    order
}

/// One semi-naive differential step: the facts `query` derives on `full`
/// through at least one valuation that uses a `delta` fact — evaluated
/// without re-joining the old instance against itself.
///
/// The contract (`full` must contain `delta`, i.e. `full = old ∪ delta`):
///
/// ```text
/// evaluate(Q, full)  =  evaluate(Q, old)  ∪  evaluate_seminaive_step(Q, full, delta)
/// ```
///
/// For each body atom in turn (the *pivot*), one differential pass
/// enumerates the valuations whose pivot atom matches inside `delta` while
/// every other atom matches the full instance. Any valuation using at
/// least one delta fact is found by the pass pivoted on that fact's atom,
/// so the union over passes covers every new derivation; valuations using
/// no delta fact are exactly the old ones. Passes whose pivot relation has
/// no delta facts are skipped entirely, which is what makes late rounds of
/// an iterated evaluation cheap: the work is proportional to the delta,
/// not to the accumulated instance.
///
/// Duplicate derivations across passes collapse by the output's set
/// semantics. Facts already derivable from `old` can reappear (a *new*
/// valuation may re-derive an *old* fact); callers tracking a derived-set
/// difference filter against their previous output.
pub fn evaluate_seminaive_step_with(
    query: &ConjunctiveQuery,
    full: &Instance,
    delta: &Instance,
    opts: EvalOptions,
) -> Instance {
    let _span = obs::span!(
        "seminaive_step",
        strategy = opts.resolved_strategy(query).label(),
        delta_facts = delta.len()
    );
    let mut out = Instance::new();
    let vars = query.variables();
    for pivot in 0..query.body_size() {
        let atom = &query.body()[pivot];
        if delta.facts_of(atom.relation).is_empty() {
            continue;
        }
        let mut binding = Valuation::new().restrict(&vars);
        let order = atom_order_with_first(query, full, &binding, opts, pivot);
        let instances: Vec<&Instance> = order
            .iter()
            .map(|&i| if i == pivot { delta } else { full })
            .collect();
        let depth_count = order.len();
        let mut matcher = Matcher {
            query,
            instances,
            order,
            opts,
            callback: |v: &Valuation| {
                out.insert(v.derived_fact(query));
                ControlFlow::Continue(())
            },
            constraints: vec![Vec::new(); depth_count],
            // Differential passes pin per-depth instances to the pivot
            // plan, so mid-search re-ranking (which permutes the tail)
            // stays off here.
            estimates: vec![f64::INFINITY; depth_count],
            adaptive: false,
        };
        let _ = matcher.search(0, &mut binding);
    }
    out
}

/// [`evaluate_seminaive_step_with`] under the default [`EvalOptions`].
pub fn evaluate_seminaive_step(
    query: &ConjunctiveQuery,
    full: &Instance,
    delta: &Instance,
) -> Instance {
    evaluate_seminaive_step_with(query, full, delta, EvalOptions::default())
}

/// All satisfying valuations of `query` on `instance`.
pub fn satisfying_valuations(query: &ConjunctiveQuery, instance: &Instance) -> Vec<Valuation> {
    satisfying_valuations_with(query, instance, &Valuation::new(), EvalOptions::default())
}

/// All satisfying valuations extending the partial valuation `fixed`.
pub fn satisfying_valuations_with(
    query: &ConjunctiveQuery,
    instance: &Instance,
    fixed: &Valuation,
    opts: EvalOptions,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let _ = for_each_satisfying(query, instance, fixed, opts, |v| {
        if seen.insert(v.clone()) {
            out.push(v.clone());
        }
        ControlFlow::Continue(())
    });
    out
}

/// Evaluates `query` on `instance`: the set of facts derived by satisfying
/// valuations (`Q(I)` in the paper).
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> Instance {
    evaluate_with(query, instance, EvalOptions::default())
}

/// Evaluates `query` on `instance` under explicit evaluation options.
pub fn evaluate_with(query: &ConjunctiveQuery, instance: &Instance, opts: EvalOptions) -> Instance {
    let _span = obs::span!(
        "evaluate",
        strategy = opts.resolved_strategy(query).label(),
        facts = instance.len()
    );
    let mut out = Instance::new();
    let _ = for_each_satisfying(query, instance, &Valuation::new(), opts, |v| {
        out.insert(v.derived_fact(query));
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_instance;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    /// The four strategy combinations the ablation axes span.
    fn all_options() -> [EvalOptions; 4] {
        [
            EvalOptions {
                ordering: JoinOrdering::CostAware,
                use_indexes: true,
                ..EvalOptions::default()
            },
            EvalOptions {
                ordering: JoinOrdering::CostAware,
                use_indexes: false,
                ..EvalOptions::default()
            },
            EvalOptions {
                ordering: JoinOrdering::Naive,
                use_indexes: true,
                ..EvalOptions::default()
            },
            EvalOptions::scan_naive(),
        ]
    }

    #[test]
    fn path_query_over_a_chain() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let i = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let result = evaluate(&query, &i);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&Fact::from_names("T", &["a", "c"])));
        assert!(result.contains(&Fact::from_names("T", &["b", "d"])));
    }

    #[test]
    fn triangle_query() {
        let query = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let i = parse_instance("E(a, b). E(b, c). E(c, a). E(a, d).").unwrap();
        let result = evaluate(&query, &i);
        // the triangle a-b-c in all three rotations
        assert_eq!(result.len(), 3);
        assert!(result.contains(&Fact::from_names("T", &["a", "b", "c"])));
        assert!(result.contains(&Fact::from_names("T", &["b", "c", "a"])));
        assert!(result.contains(&Fact::from_names("T", &["c", "a", "b"])));
    }

    #[test]
    fn boolean_query_produces_nullary_fact() {
        let query = q("T() :- R(x, x).");
        let yes = parse_instance("R(a, a). R(a, b).").unwrap();
        let no = parse_instance("R(a, b). R(b, a).").unwrap();
        assert_eq!(evaluate(&query, &yes).len(), 1);
        assert!(evaluate(&query, &no).is_empty());
    }

    #[test]
    fn self_join_with_repeated_variable() {
        // Example 3.5 query.
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let i = parse_instance("R(a, b). R(b, a). R(a, a).").unwrap();
        let result = evaluate(&query, &i);
        assert!(result.contains(&Fact::from_names("T", &["a", "a"])));
        assert!(result.contains(&Fact::from_names("T", &["a", "b"])));
        // b has no self-loop, so nothing starts at b
        assert!(!result
            .facts()
            .any(|f| f.values[0] == crate::Value::new("b")));
    }

    #[test]
    fn empty_instance_yields_empty_result() {
        let query = q("T(x) :- R(x, y).");
        assert!(evaluate(&query, &Instance::new()).is_empty());
    }

    #[test]
    fn monotonicity_on_random_like_data() {
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let small = parse_instance("R(a, b). S(b, c).").unwrap();
        let big = parse_instance("R(a, b). S(b, c). R(b, b). S(c, a). R(c, a).").unwrap();
        let small_res = evaluate(&query, &small);
        let big_res = evaluate(&query, &big);
        assert!(big_res.contains_all(&small_res));
    }

    #[test]
    fn fixed_bindings_constrain_the_search() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let i = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let fixed = Valuation::from_names([("x", "a")]);
        for opts in all_options() {
            let vals = satisfying_valuations_with(&query, &i, &fixed, opts);
            assert_eq!(vals.len(), 1);
            assert_eq!(
                vals[0].get(Variable::new("z")),
                Some(crate::Value::new("c"))
            );
        }
    }

    #[test]
    fn all_strategies_enumerate_the_same_valuations() {
        let queries = [
            q("T(x, w) :- R(x, y), S(y, z), R(z, w)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T() :- R(x, y), S(y, x)."),
        ];
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, a). R(a, a). S(b, c). S(c, d). S(d, b). S(a, a).",
        )
        .unwrap();
        for query in &queries {
            let reference: BTreeSet<_> =
                satisfying_valuations_with(query, &i, &Valuation::new(), EvalOptions::scan_naive())
                    .into_iter()
                    .collect();
            assert!(!reference.is_empty() || query.body_size() > 1);
            for opts in all_options() {
                let got: BTreeSet<_> =
                    satisfying_valuations_with(query, &i, &Valuation::new(), opts)
                        .into_iter()
                        .collect();
                assert_eq!(got, reference, "options {opts:?} disagree with scan/naive");
            }
        }
    }

    #[test]
    fn scan_mode_never_builds_the_secondary_indexes() {
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let i = parse_instance("R(a, b). R(b, c). S(b, c). S(c, d).").unwrap();
        for ordering in [JoinOrdering::Naive, JoinOrdering::CostAware] {
            // even an explicit Multiway request must fall back to the scan
            // join rather than build the indexes it was told not to use
            for join_strategy in [
                JoinStrategy::Binary,
                JoinStrategy::Multiway,
                JoinStrategy::Auto,
            ] {
                let opts = EvalOptions {
                    ordering,
                    use_indexes: false,
                    join_strategy,
                    ..EvalOptions::default()
                };
                let vals = satisfying_valuations_with(&query, &i, &Valuation::new(), opts);
                assert!(!vals.is_empty());
                assert!(
                    !i.indexes_built(),
                    "{ordering:?}/{join_strategy:?} with use_indexes: false must not touch the indexes"
                );
            }
        }
    }

    #[test]
    fn auto_strategy_resolves_by_cyclicity() {
        let triangle = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let chain = q("T(x, z) :- R(x, y), R(y, z).");
        let opts = EvalOptions::default();
        assert_eq!(opts.resolved_strategy(&triangle), JoinStrategy::Multiway);
        assert_eq!(opts.resolved_strategy(&chain), JoinStrategy::Binary);
        let forced = opts.with_join_strategy(JoinStrategy::Multiway);
        assert_eq!(forced.resolved_strategy(&chain), JoinStrategy::Multiway);
        let scan = EvalOptions::scan_naive().with_join_strategy(JoinStrategy::Multiway);
        assert_eq!(
            scan.resolved_strategy(&triangle),
            JoinStrategy::Binary,
            "multiway needs the secondary indexes"
        );
    }

    #[test]
    fn multiway_agrees_with_binary_on_cyclic_and_acyclic_queries() {
        let queries = [
            q("T(x, y, z) :- E(x, y), E(y, z), E(z, x)."), // cyclic
            q("T(x) :- E(x, y), E(y, z), E(z, w), E(w, x), E(x, z)."), // chordal 4-cycle
            q("T(x, w) :- R(x, y), S(y, z), R(z, w)."),    // acyclic chain
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),    // self-join
            q("T() :- R(x, y), S(y, x)."),                 // boolean
        ];
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, a). R(a, a). S(b, c). S(c, d). S(d, b). S(a, a). \
             E(a, b). E(b, c). E(c, a). E(a, d). E(d, c). E(c, c). E(b, a).",
        )
        .unwrap();
        for query in &queries {
            let reference: BTreeSet<_> =
                satisfying_valuations_with(query, &i, &Valuation::new(), EvalOptions::scan_naive())
                    .into_iter()
                    .collect();
            for base in all_options() {
                for strategy in [
                    JoinStrategy::Binary,
                    JoinStrategy::Multiway,
                    JoinStrategy::Auto,
                ] {
                    let opts = base.with_join_strategy(strategy);
                    let got: BTreeSet<_> =
                        satisfying_valuations_with(query, &i, &Valuation::new(), opts)
                            .into_iter()
                            .collect();
                    assert_eq!(
                        got, reference,
                        "{query}: {opts:?} disagrees with scan/naive"
                    );
                }
            }
        }
    }

    #[test]
    fn multiway_respects_fixed_bindings() {
        let query = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let i = parse_instance("E(a, b). E(b, c). E(c, a). E(a, d).").unwrap();
        let opts = EvalOptions::default().with_join_strategy(JoinStrategy::Multiway);
        let fixed = Valuation::from_names([("x", "a")]);
        let vals = satisfying_valuations_with(&query, &i, &fixed, opts);
        assert_eq!(vals.len(), 1);
        assert_eq!(
            vals[0].get(Variable::new("y")),
            Some(crate::Value::new("b"))
        );
        // a pre-bound value absent from the instance prunes everything
        let absent = Valuation::from_names([("x", "zzz")]);
        assert!(satisfying_valuations_with(&query, &i, &absent, opts).is_empty());
    }

    #[test]
    fn multiway_early_termination_stops_the_search() {
        let query = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let i = parse_instance("E(a, b). E(b, c). E(c, a).").unwrap();
        let opts = EvalOptions::default().with_join_strategy(JoinStrategy::Multiway);
        let mut count = 0;
        let flow = for_each_satisfying(&query, &i, &Valuation::new(), opts, |_| {
            count += 1;
            ControlFlow::Break(())
        });
        assert_eq!(count, 1);
        assert_eq!(flow, ControlFlow::Break(()));
    }

    #[test]
    fn adaptive_reordering_matches_static_order_results() {
        let queries = [
            q("T(x, w) :- R(x, y), S(y, z), R(z, w)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
            q("T(x, y, z) :- E(x, y), E(y, z), E(z, x)."),
        ];
        let i = parse_instance(
            "R(a, b). R(b, c). R(c, d). R(d, a). R(a, a). S(b, c). S(c, d). S(d, b). S(a, a). \
             E(a, b). E(b, c). E(c, a). E(a, d).",
        )
        .unwrap();
        for query in &queries {
            for use_indexes in [true, false] {
                let bare = EvalOptions {
                    use_indexes,
                    adaptive_factor: 0,
                    join_strategy: JoinStrategy::Binary,
                    ..EvalOptions::default()
                };
                // factor 1 re-ranks on any divergence — the most aggressive
                // setting, and still only a permutation of the search
                let eager = EvalOptions {
                    adaptive_factor: 1,
                    ..bare
                };
                let static_vals: BTreeSet<_> =
                    satisfying_valuations_with(query, &i, &Valuation::new(), bare)
                        .into_iter()
                        .collect();
                let adaptive_vals: BTreeSet<_> =
                    satisfying_valuations_with(query, &i, &Valuation::new(), eager)
                        .into_iter()
                        .collect();
                assert_eq!(adaptive_vals, static_vals, "{query}: adaptive diverged");
            }
        }
    }

    #[test]
    fn cost_aware_order_prefers_selective_atoms() {
        // S is tiny compared to R, so the cost model must start at S.
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let mut text = String::new();
        for i in 0..50 {
            text.push_str(&format!("R(a{i}, b{i}). "));
        }
        text.push_str("S(b0, c0).");
        let i = parse_instance(&text).unwrap();
        let order = super::atom_order(&query, &i, &Valuation::new(), EvalOptions::default());
        assert_eq!(order[0], 1, "the selective S atom must be matched first");
    }

    #[test]
    fn cost_aware_order_ties_break_to_source_order() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let i = parse_instance("R(a, b). R(b, c).").unwrap();
        let order = super::atom_order(&query, &i, &Valuation::new(), EvalOptions::default());
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn known_fixed_values_use_exact_posting_counts() {
        // With x pre-bound to a value that occurs once in R but S unbound,
        // the R atom becomes cheapest even though R is larger.
        let query = q("T(x, z) :- S(y, z), R(x, y).");
        let i = parse_instance(
            "R(a, b). R(c, d). R(e, f). S(b, u). S(d, u). S(f, u). S(g, u). S(h, u).",
        )
        .unwrap();
        let fixed = Valuation::from_names([("x", "a")]);
        let order = super::atom_order(&query, &i, &fixed, EvalOptions::default());
        assert_eq!(order[0], 1, "the pre-bound R atom must be matched first");
    }

    #[test]
    fn early_termination_stops_the_search() {
        let query = q("T(x) :- R(x, y).");
        let i = parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
        let mut count = 0;
        let flow = for_each_satisfying(
            &query,
            &i,
            &Valuation::new(),
            EvalOptions::default(),
            |_| {
                count += 1;
                ControlFlow::Break(())
            },
        );
        assert_eq!(count, 1);
        assert_eq!(flow, ControlFlow::Break(()));
    }

    /// Splits `facts` into (old, delta, full) instances at `split`.
    fn split_instance(text: &str, split: usize) -> (Instance, Instance, Instance) {
        let full = parse_instance(text).unwrap();
        let facts: Vec<_> = full.facts().cloned().collect();
        let old = Instance::from_facts(facts[..split].iter().cloned());
        let delta = Instance::from_facts(facts[split..].iter().cloned());
        (old, delta, full)
    }

    #[test]
    fn seminaive_step_completes_the_old_evaluation() {
        let queries = [
            q("T(x, z) :- R(x, y), R(y, z)."),
            q("T(x, w) :- R(x, y), S(y, z), R(z, w)."),
            q("T() :- R(x, y), S(y, x)."),
            q("T(x, z) :- R(x, y), R(y, z), R(x, x)."),
        ];
        let text =
            "R(a, b). R(b, c). R(c, d). R(d, a). R(a, a). S(b, c). S(c, d). S(d, b). S(a, a).";
        let full_count = parse_instance(text).unwrap().len();
        for query in &queries {
            for split in 0..=full_count {
                let (old, delta, full) = split_instance(text, split);
                for opts in all_options() {
                    let step = evaluate_seminaive_step_with(query, &full, &delta, opts);
                    let combined = evaluate(query, &old).union(&step);
                    assert_eq!(
                        combined,
                        evaluate(query, &full),
                        "query {query}, split {split}, options {opts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn seminaive_step_with_empty_delta_is_empty() {
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let full = parse_instance("R(a, b). R(b, c).").unwrap();
        let step = evaluate_seminaive_step(&query, &full, &Instance::new());
        assert!(step.is_empty());
    }

    #[test]
    fn seminaive_step_with_full_delta_is_full_evaluation() {
        let query = q("T(x, y, z) :- E(x, y), E(y, z), E(z, x).");
        let full = parse_instance("E(a, b). E(b, c). E(c, a). E(a, d).").unwrap();
        let step = evaluate_seminaive_step(&query, &full, &full);
        assert_eq!(step, evaluate(&query, &full));
    }

    #[test]
    fn seminaive_step_skips_pivots_without_delta_facts() {
        // The delta touches only S; derivations must still appear (via the
        // S pivot) while R pivots are skipped — observable through a delta
        // that, were R pivoted over it, would contribute nothing anyway.
        let query = q("T(x, z) :- R(x, y), S(y, z).");
        let full = parse_instance("R(a, b). R(c, b). S(b, d).").unwrap();
        let delta = parse_instance("S(b, d).").unwrap();
        let step = evaluate_seminaive_step(&query, &full, &delta);
        assert_eq!(step.len(), 2);
        assert!(step.contains(&Fact::from_names("T", &["a", "d"])));
        assert!(step.contains(&Fact::from_names("T", &["c", "d"])));
    }

    #[test]
    fn seminaive_step_finds_cross_derivations() {
        // The new derivation joins one old fact with one delta fact in both
        // orders — each direction is covered by a different pivot pass.
        let query = q("T(x, z) :- R(x, y), R(y, z).");
        let old = parse_instance("R(a, b). R(e, a).").unwrap();
        let delta = parse_instance("R(b, c). R(c, e).").unwrap();
        let full = old.union(&delta);
        let step = evaluate_seminaive_step(&query, &full, &delta);
        assert!(step.contains(&Fact::from_names("T", &["a", "c"]))); // old ⋈ delta
        assert!(step.contains(&Fact::from_names("T", &["c", "a"]))); // delta ⋈ old
        assert!(step.contains(&Fact::from_names("T", &["b", "e"]))); // delta ⋈ delta
                                                                     // old ⋈ old derivations use no delta fact and must not reappear
        assert!(!step.contains(&Fact::from_names("T", &["e", "b"])));
    }

    #[test]
    fn forced_first_atom_order_is_a_permutation() {
        let query = q("T(x, w) :- R(x, y), S(y, z), R(z, w).");
        let i = parse_instance("R(a, b). S(b, c). R(c, d).").unwrap();
        for opts in all_options() {
            for first in 0..query.body_size() {
                let order =
                    super::atom_order_with_first(&query, &i, &Valuation::new(), opts, first);
                assert_eq!(order[0], first);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2], "{order:?} is not a permutation");
            }
        }
    }

    #[test]
    fn satisfying_valuations_are_total_and_satisfying() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let i = parse_instance("R(a, b). R(b, a). R(a, a). R(b, b).").unwrap();
        let vals = satisfying_valuations(&query, &i);
        assert!(!vals.is_empty());
        for v in &vals {
            assert!(v.is_total_for(&query));
            assert!(v.satisfies(&query, &i));
        }
    }
}
