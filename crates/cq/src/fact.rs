//! Facts: relation names applied to tuples of data values.

use std::fmt;

use crate::intern::Symbol;
use crate::value::Value;

/// A fact `R(d₁, …, d_k)` over a database schema.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The relation name.
    pub relation: Symbol,
    /// The tuple of data values.
    pub values: Vec<Value>,
}

impl Fact {
    /// Builds a fact from a relation name and values.
    pub fn new(relation: impl Into<Symbol>, values: Vec<Value>) -> Fact {
        Fact {
            relation: relation.into(),
            values,
        }
    }

    /// Convenience constructor taking value names as strings.
    pub fn from_names(relation: &str, values: &[&str]) -> Fact {
        Fact {
            relation: Symbol::new(relation),
            values: values.iter().map(|v| Value::new(v)).collect(),
        }
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at argument position `position`, or `None` when the fact is
    /// shorter. Used by the secondary indexes of
    /// [`crate::Instance`], which must tolerate mixed-arity relations.
    pub fn value_at(&self, position: usize) -> Option<Value> {
        self.values.get(position).copied()
    }

    /// The distinct data values occurring in the fact (its active domain).
    pub fn adom(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for &v in &self.values {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_equality_is_structural() {
        let a = Fact::from_names("R", &["a", "b"]);
        let b = Fact::new("R", vec![Value::new("a"), Value::new("b")]);
        assert_eq!(a, b);
    }

    #[test]
    fn facts_with_same_values_but_different_relation_differ() {
        let a = Fact::from_names("R", &["a", "b"]);
        let b = Fact::from_names("S", &["a", "b"]);
        assert_ne!(a, b);
    }

    #[test]
    fn adom_deduplicates() {
        let f = Fact::from_names("R", &["a", "b", "a"]);
        assert_eq!(f.adom(), vec![Value::new("a"), Value::new("b")]);
        assert_eq!(f.arity(), 3);
    }

    #[test]
    fn value_at_is_positional_and_bounded() {
        let f = Fact::from_names("R", &["a", "b"]);
        assert_eq!(f.value_at(0), Some(Value::new("a")));
        assert_eq!(f.value_at(1), Some(Value::new("b")));
        assert_eq!(f.value_at(2), None);
    }

    #[test]
    fn display_is_readable() {
        let f = Fact::from_names("Edge", &["1", "2"]);
        assert_eq!(f.to_string(), "Edge(1, 2)");
    }
}
