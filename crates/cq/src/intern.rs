//! Global string interner backing [`Symbol`].
//!
//! Relation names, variable names and data values are all short strings that
//! are compared and hashed extremely often by the search procedures in this
//! workspace. Interning turns those comparisons into integer comparisons and
//! makes all core types (`Atom`, `Fact`, `Valuation`, …) cheap to clone.
//!
//! Interned strings are leaked (they live for the duration of the process);
//! the set of distinct names appearing in queries, instances and generated
//! workloads is small and bounded, so this is an intentional trade-off.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned string.
///
/// `Symbol` is a cheap (`Copy`) handle; two symbols are equal if and only if
/// the underlying strings are equal. Ordering is by interning order, which is
/// deterministic within a process run but carries no semantic meaning.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&id) = guard.by_name.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.by_name.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(guard.names.len()).expect("interner overflow");
        guard.names.push(leaked);
        guard.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Numeric identity of the symbol (stable within a process run).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(value: &str) -> Self {
        Symbol::new(value)
    }
}

impl From<String> for Symbol {
    fn from(value: String) -> Self {
        Symbol::new(&value)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("R");
        let b = Symbol::new("R");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "R");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("beta");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(b.as_str(), "beta");
    }

    #[test]
    fn display_matches_source_string() {
        let s = Symbol::new("Edge");
        assert_eq!(s.to_string(), "Edge");
        assert_eq!(format!("{s:?}"), "Symbol(\"Edge\")");
    }

    #[test]
    fn from_impls_intern() {
        let a: Symbol = "xyz".into();
        let b: Symbol = String::from("xyz").into();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip_preserves_name() {
        let s = Symbol::new("Rel42");
        let json = serde_json_like(&s);
        assert_eq!(json, "\"Rel42\"");
    }

    fn serde_json_like(s: &Symbol) -> String {
        // Minimal serializer check without pulling serde_json into this crate:
        // Symbol serializes as a plain string, so we can emulate it.
        format!("{:?}", s.as_str())
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let sym = Symbol::new(&format!("T{}", i % 3));
                    sym.as_str().to_owned()
                })
            })
            .collect();
        for h in handles {
            let name = h.join().unwrap();
            assert!(name.starts_with('T'));
        }
    }
}
