//! Global string interner backing [`Symbol`].
//!
//! Relation names, variable names and data values are all short strings that
//! are compared and hashed extremely often by the search procedures in this
//! workspace. Interning turns those comparisons into integer comparisons and
//! makes all core types (`Atom`, `Fact`, `Valuation`, …) cheap to clone.
//!
//! Interned strings are leaked (they live for the duration of the process);
//! the set of distinct names appearing in queries, instances and generated
//! workloads is small and bounded, so this is an intentional trade-off.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned string.
///
/// `Symbol` is a cheap (`Copy`) handle; two symbols are equal if and only if
/// the underlying strings are equal. Ordering is by interning order, which is
/// deterministic within a process run but carries no semantic meaning.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&id) = guard.by_name.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.by_name.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(guard.names.len()).expect("interner overflow");
        guard.names.push(leaked);
        guard.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Numeric identity of the symbol (stable within a process run).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(value: &str) -> Self {
        Symbol::new(value)
    }
}

impl From<String> for Symbol {
    fn from(value: String) -> Self {
        Symbol::new(&value)
    }
}

/// A fast, deterministic hasher for symbol-backed keys (`Symbol`, `Value`,
/// `Variable` all hash through a single `u32` id).
///
/// The secondary indexes of [`crate::Instance`] key hash maps by data value
/// on the evaluator's hot path; SipHash (the `std` default) is overkill for
/// a 4-byte id, so this hasher applies one round of Fibonacci
/// multiply-and-xor-fold instead. It is *not* DoS-resistant — use it only
/// for keys derived from interned symbols.
#[derive(Clone, Copy, Debug, Default)]
pub struct SymbolHasher(u64);

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        // Spread entropy into the low bits used for bucket selection.
        self.0 ^ (self.0 >> 29)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for composite keys; symbols take the write_u32 path.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u32(&mut self, id: u32) {
        self.0 = (self.0 ^ u64::from(id)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// [`BuildHasher`] producing [`SymbolHasher`]s; plugs into `HashMap`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SymbolHashBuilder;

impl BuildHasher for SymbolHashBuilder {
    type Hasher = SymbolHasher;

    fn build_hasher(&self) -> SymbolHasher {
        SymbolHasher::default()
    }
}

/// A hash map keyed by interned-symbol-backed types, using [`SymbolHasher`].
pub type SymbolMap<K, V> = HashMap<K, V, SymbolHashBuilder>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("R");
        let b = Symbol::new("R");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "R");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("beta");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(b.as_str(), "beta");
    }

    #[test]
    fn display_matches_source_string() {
        let s = Symbol::new("Edge");
        assert_eq!(s.to_string(), "Edge");
        assert_eq!(format!("{s:?}"), "Symbol(\"Edge\")");
    }

    #[test]
    fn from_impls_intern() {
        let a: Symbol = "xyz".into();
        let b: Symbol = String::from("xyz").into();
        assert_eq!(a, b);
    }

    #[test]
    fn symbol_map_behaves_like_a_hash_map() {
        let mut map: SymbolMap<Symbol, usize> = SymbolMap::default();
        for i in 0..100 {
            map.insert(Symbol::new(&format!("k{i}")), i);
        }
        assert_eq!(map.len(), 100);
        for i in 0..100 {
            assert_eq!(map.get(&Symbol::new(&format!("k{i}"))), Some(&i));
        }
        assert_eq!(map.get(&Symbol::new("absent")), None);
    }

    #[test]
    fn symbol_hasher_distinguishes_ids() {
        use std::hash::{BuildHasher, Hash};
        let build = SymbolHashBuilder;
        let a = build.hash_one(Symbol::new("a"));
        let b = build.hash_one(Symbol::new("b"));
        assert_ne!(a, b);
        // hashing is deterministic
        let mut h = SymbolHasher::default();
        Symbol::new("a").hash(&mut h);
        assert_eq!(h.finish(), build.hash_one(Symbol::new("a")));
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let sym = Symbol::new(&format!("T{}", i % 3));
                    sym.as_str().to_owned()
                })
            })
            .collect();
        for h in handles {
            let name = h.join().unwrap();
            assert!(name.starts_with('T'));
        }
    }
}
