//! Homomorphisms between conjunctive queries, containment, equivalence, and
//! the "cover" search used by condition (C3).

use std::ops::ControlFlow;

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::substitution::Substitution;

/// Enumerates substitutions `h` extending `seed` such that every atom of
/// `from_atoms` is mapped by `h` into the set `to_atoms`
/// (`h(from_atoms) ⊆ to_atoms`).
///
/// The callback can stop the enumeration by returning
/// [`ControlFlow::Break`]; the function returns `Break` in that case.
pub fn for_each_atom_mapping<F>(
    from_atoms: &[Atom],
    to_atoms: &[Atom],
    seed: &Substitution,
    callback: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    fn rec<F>(
        from_atoms: &[Atom],
        to_atoms: &[Atom],
        depth: usize,
        current: &mut Substitution,
        callback: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if depth == from_atoms.len() {
            return callback(current);
        }
        let atom = &from_atoms[depth];
        'targets: for target in to_atoms {
            if target.relation != atom.relation || target.arity() != atom.arity() {
                continue;
            }
            // Try to unify atom -> target under the current substitution.
            let mut newly_bound = Vec::new();
            for (&var, &to) in atom.args.iter().zip(target.args.iter()) {
                match current.get(var) {
                    Some(existing) if existing == to => {}
                    Some(_) => {
                        for v in newly_bound {
                            current.unbind(v);
                        }
                        continue 'targets;
                    }
                    None => {
                        current.bind(var, to);
                        newly_bound.push(var);
                    }
                }
            }
            let flow = rec(from_atoms, to_atoms, depth + 1, current, callback);
            for v in newly_bound {
                current.unbind(v);
            }
            flow?;
        }
        ControlFlow::Continue(())
    }

    let mut current = seed.clone();
    rec(from_atoms, to_atoms, 0, &mut current, callback)
}

/// Finds a homomorphism from `from` to `to`: a substitution `h` with
/// `h(head_from) = head_to` and `h(body_from) ⊆ body_to`.
///
/// By the homomorphism theorem, such a homomorphism exists if and only if
/// `to ⊆ from` (the result of `to` is contained in the result of `from` on
/// every instance).
pub fn find_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Substitution> {
    let from_head = from.head();
    let to_head = to.head();
    if from_head.relation != to_head.relation || from_head.arity() != to_head.arity() {
        return None;
    }
    // Seed the substitution with the head mapping; it must be consistent.
    let mut seed = Substitution::identity();
    for (&var, &to_var) in from_head.args.iter().zip(to_head.args.iter()) {
        match seed.get(var) {
            Some(existing) if existing != to_var => return None,
            _ => seed.bind(var, to_var),
        }
    }
    let mut found = None;
    let _ = for_each_atom_mapping(from.body(), to.body(), &seed, &mut |h| {
        found = Some(h.clone());
        ControlFlow::Break(())
    });
    found
}

/// Query containment `q1 ⊆ q2`: on every instance, `q1(I) ⊆ q2(I)`.
///
/// Both queries must have the same output relation; containment holds if and
/// only if there is a homomorphism from `q2` to `q1`.
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// Query equivalence: containment in both directions.
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

/// The "cover" problem used by condition (C3) of the paper:
///
/// given the body of a query `Q` (the *source*) and a set of atoms `B`
/// (the *target*), find a substitution `ρ` on the variables of `Q` such that
/// `B ⊆ ρ(body_Q)`, i.e. every target atom is the ρ-image of some source atom.
#[derive(Clone, Debug)]
pub struct CoverProblem {
    source: Vec<Atom>,
    target: Vec<Atom>,
}

impl CoverProblem {
    /// Creates a cover problem with the given source and target atom sets.
    pub fn new(source: Vec<Atom>, target: Vec<Atom>) -> CoverProblem {
        CoverProblem { source, target }
    }

    /// Convenience constructor: cover the atoms `target` using the body of `query`.
    pub fn for_query(query: &ConjunctiveQuery, target: Vec<Atom>) -> CoverProblem {
        CoverProblem {
            source: query.body().to_vec(),
            target,
        }
    }

    /// Finds a covering substitution, if one exists.
    pub fn solve(&self) -> Option<Substitution> {
        let mut found = None;
        let _ = self.for_each_cover(&mut |s| {
            found = Some(s.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// Enumerates covering substitutions.
    ///
    /// The enumeration backtracks over the *target* atoms: each target atom
    /// must be matched by a source atom whose ρ-image equals it.
    pub fn for_each_cover<F>(&self, callback: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        fn rec<F>(
            source: &[Atom],
            target: &[Atom],
            depth: usize,
            rho: &mut Substitution,
            callback: &mut F,
        ) -> ControlFlow<()>
        where
            F: FnMut(&Substitution) -> ControlFlow<()>,
        {
            if depth == target.len() {
                return callback(rho);
            }
            let goal = &target[depth];
            'sources: for cand in source {
                if cand.relation != goal.relation || cand.arity() != goal.arity() {
                    continue;
                }
                // Unify ρ(cand) = goal: each variable of cand must map to the
                // corresponding variable of goal, consistently with ρ so far.
                let mut newly_bound = Vec::new();
                for (&src_var, &dst_var) in cand.args.iter().zip(goal.args.iter()) {
                    match rho.get(src_var) {
                        Some(existing) if existing == dst_var => {}
                        Some(_) => {
                            for v in newly_bound {
                                rho.unbind(v);
                            }
                            continue 'sources;
                        }
                        None => {
                            rho.bind(src_var, dst_var);
                            newly_bound.push(src_var);
                        }
                    }
                }
                let flow = rec(source, target, depth + 1, rho, callback);
                for v in newly_bound {
                    rho.unbind(v);
                }
                flow?;
            }
            ControlFlow::Continue(())
        }

        let mut rho = Substitution::identity();
        rec(&self.source, &self.target, 0, &mut rho, callback)
    }
}

/// Finds a substitution `ρ` on the variables of `query` such that
/// `target ⊆ ρ(body_query)` (see [`CoverProblem`]).
pub fn find_cover(query: &ConjunctiveQuery, target: &[Atom]) -> Option<Substitution> {
    CoverProblem::for_query(query, target.to_vec()).solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn homomorphism_between_path_queries() {
        // Shorter paths contain longer ones: the 3-path maps onto the 2-path
        // only if variables can collapse; here the classic example.
        let two = q("T(x, z) :- R(x, y), R(y, z).");
        let loopy = q("T(x, x) :- R(x, x).");
        // hom from `two` to `loopy`: x,y,z all map to x.
        let h = find_homomorphism(&two, &loopy).expect("hom should exist");
        assert!(h
            .apply_atoms(two.body())
            .iter()
            .all(|a| loopy.body().contains(a)));
        // but not the other way around: loopy's head T(x,x) cannot match T(x,z)
        // unless x=z is forced, which find_homomorphism rejects only if the
        // head mapping is inconsistent — here it maps both to distinct vars.
        assert!(find_homomorphism(&loopy, &two).is_none());
    }

    #[test]
    fn containment_of_specialization() {
        // q_specific asks for a path through a self-loop; q_general asks for any path.
        let q_general = q("T(x, z) :- R(x, y), R(y, z).");
        let q_specific = q("T(x, z) :- R(x, y), R(y, z), R(y, y).");
        assert!(contained_in(&q_specific, &q_general));
        assert!(!contained_in(&q_general, &q_specific));
        assert!(!equivalent(&q_general, &q_specific));
    }

    #[test]
    fn equivalence_of_redundant_query_and_its_core() {
        let redundant = q("T(x) :- R(x, y), R(x, z).");
        let core = q("T(x) :- R(x, y).");
        assert!(equivalent(&redundant, &core));
    }

    #[test]
    fn containment_requires_same_output_relation() {
        let a = q("T(x) :- R(x, y).");
        let b = q("U(x) :- R(x, y).");
        assert!(!contained_in(&a, &b));
        assert!(!contained_in(&b, &a));
    }

    #[test]
    fn head_arity_mismatch_is_rejected() {
        let a = q("T(x) :- R(x, y).");
        let b = q("T(x, y) :- R(x, y).");
        assert!(find_homomorphism(&a, &b).is_none());
    }

    #[test]
    fn cover_finds_rho_for_subset_bodies() {
        // Q: T() :- E(c, d), E(d, c)    target: E(x, y), E(y, x) — rename c↦x, d↦y.
        let query = q("T() :- E(c, d), E(d, c).");
        let target = vec![
            Atom::from_names("E", &["x", "y"]),
            Atom::from_names("E", &["y", "x"]),
        ];
        let rho = find_cover(&query, &target).expect("cover must exist");
        let image = rho.apply_atoms(query.body());
        for t in &target {
            assert!(image.contains(t));
        }
    }

    #[test]
    fn cover_fails_when_relation_is_missing() {
        let query = q("T() :- E(c, d).");
        let target = vec![Atom::from_names("F", &["x", "y"])];
        assert!(find_cover(&query, &target).is_none());
    }

    #[test]
    fn cover_respects_repeated_variables() {
        // Source atom E(c, c) can only cover target atoms with equal arguments.
        let query = q("T() :- E(c, c).");
        let ok = vec![Atom::from_names("E", &["x", "x"])];
        let bad = vec![Atom::from_names("E", &["x", "y"])];
        assert!(find_cover(&query, &ok).is_some());
        assert!(find_cover(&query, &bad).is_none());
    }

    #[test]
    fn cover_allows_unused_source_atoms() {
        let query = q("T() :- E(c, d), F(d).");
        let target = vec![Atom::from_names("E", &["x", "y"])];
        // F(d) does not need to cover anything.
        assert!(find_cover(&query, &target).is_some());
    }

    #[test]
    fn cover_needs_a_single_consistent_rho() {
        // One source atom cannot cover two incompatible targets.
        let query = q("T() :- E(c, d).");
        let target = vec![
            Atom::from_names("E", &["x", "y"]),
            Atom::from_names("E", &["x", "z"]),
        ];
        assert!(find_cover(&query, &target).is_none());

        // With two source atoms it works.
        let query2 = q("T() :- E(c, d), E(e, f).");
        assert!(find_cover(&query2, &target).is_some());
    }

    #[test]
    fn atom_mapping_enumeration_can_be_exhaustive() {
        let from = vec![Atom::from_names("R", &["a", "b"])];
        let to = vec![
            Atom::from_names("R", &["x", "y"]),
            Atom::from_names("R", &["y", "z"]),
        ];
        let mut count = 0;
        let _ = for_each_atom_mapping(&from, &to, &Substitution::identity(), &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 2);
    }
}
