//! CQ minimality and core computation (Chandra–Merlin minimization).

use std::ops::ControlFlow;

use crate::hom::for_each_atom_mapping;
use crate::query::ConjunctiveQuery;
use crate::substitution::Substitution;

/// The result of minimizing a conjunctive query.
#[derive(Clone, Debug)]
pub struct Minimization {
    /// The minimized (core) query, equivalent to the input.
    pub core: ConjunctiveQuery,
    /// A simplification `θ` of the input query with `θ(Q) = core`
    /// (in particular `θ(head_Q) = head_Q` and `θ(body_Q) = body_core`).
    pub simplification: Substitution,
}

/// Searches for a simplification of `query` whose body image avoids at least
/// one body atom (a "reducing" endomorphism). Returns `None` when the query
/// is minimal.
fn find_reducing_simplification(query: &ConjunctiveQuery) -> Option<Substitution> {
    let body = query.body();
    // Seed: head variables must be fixed.
    let mut seed = Substitution::identity();
    for &v in &query.head().args {
        seed.bind(v, v);
    }
    for skip in 0..body.len() {
        // Targets: all atoms except the one we try to avoid.
        let targets: Vec<_> = body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, a)| a.clone())
            .collect();
        let mut found = None;
        let _ = for_each_atom_mapping(body, &targets, &seed, &mut |h| {
            found = Some(h.clone());
            ControlFlow::Break(())
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Whether `query` is a *minimal* conjunctive query: no equivalent CQ has
/// strictly fewer body atoms.
pub fn is_minimal(query: &ConjunctiveQuery) -> bool {
    find_reducing_simplification(query).is_none()
}

/// Computes the core of `query` together with the simplification mapping the
/// query onto its core.
///
/// The core is the unique (up to variable renaming) minimal query equivalent
/// to the input; the returned simplification is a witness that the core is an
/// image of the original query (used by the (C2) ⇒ (C3) direction of
/// Lemma 4.6 in the paper).
pub fn minimize(query: &ConjunctiveQuery) -> Minimization {
    let mut current = query.clone();
    let mut total = Substitution::identity();
    loop {
        match find_reducing_simplification(&current) {
            Some(step) => {
                total = step.compose(&total);
                current = step.apply_query(&current);
            }
            None => {
                return Minimization {
                    core: current,
                    simplification: total,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::equivalent;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn redundant_atoms_are_removed() {
        let query = q("T(x) :- R(x, y), R(x, z).");
        let min = minimize(&query);
        assert_eq!(min.core.body_size(), 1);
        assert!(equivalent(&query, &min.core));
        assert!(min.simplification.is_simplification_of(&query));
    }

    #[test]
    fn example_2_2_second_query_minimizes_to_two_atoms() {
        // T(x) :- R(x,y), R(y,y), R(z,z), R(u,u): z,u collapse onto y.
        let query = q("T(x) :- R(x, y), R(y, y), R(z, z), R(u, u).");
        let min = minimize(&query);
        assert_eq!(min.core.body_size(), 2);
        assert!(equivalent(&query, &min.core));
        assert!(is_minimal(&min.core));
    }

    #[test]
    fn path_query_is_minimal() {
        let query = q("T(x) :- R(x, y), R(y, z).");
        assert!(is_minimal(&query));
        let min = minimize(&query);
        assert_eq!(min.core, query);
        assert!(min.simplification.is_identity());
    }

    #[test]
    fn example_3_5_query_is_minimal_but_not_strongly_minimal_later() {
        // The query of Example 3.5 is minimal (strong minimality is handled
        // in the pc-core crate).
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        assert!(is_minimal(&query));
    }

    #[test]
    fn full_queries_are_minimal() {
        let query = q("T(x1, x2, x3, x4) :- R(x1, x2), R(x2, x3), R(x3, x4).");
        assert!(is_minimal(&query));
    }

    #[test]
    fn boolean_cycle_collapses_to_self_loop_only_with_even_odd_structure() {
        // A boolean 2-cycle R(x,y), R(y,x) is minimal (it is its own core):
        // collapsing x and y would require the loop R(x,x) to be in the body.
        let query = q("T() :- R(x, y), R(y, x).");
        assert!(is_minimal(&query));

        // Adding the self-loop makes the 2-cycle redundant.
        let with_loop = q("T() :- R(x, y), R(y, x), R(w, w).");
        let min = minimize(&with_loop);
        assert_eq!(min.core.body_size(), 1);
        assert!(equivalent(&with_loop, &min.core));
    }

    #[test]
    fn head_variables_prevent_collapse() {
        // Same shape as above but the head exposes x and y: no collapse allowed.
        let query = q("T(x, y) :- R(x, y), R(y, x), R(w, w).");
        let min = minimize(&query);
        assert_eq!(min.core.body_size(), 3);
        assert!(is_minimal(&query));
    }

    #[test]
    fn minimization_simplification_maps_query_onto_core() {
        let query = q("T(x) :- R(x, y), R(y, y), R(z, z), R(u, u).");
        let min = minimize(&query);
        let image = min.simplification.apply_query(&query);
        assert_eq!(image, min.core);
    }

    #[test]
    fn large_star_with_redundancy() {
        // Star with many redundant rays: all rays collapse onto one.
        let query = q("T(c) :- R(c, y1), R(c, y2), R(c, y3), R(c, y4), R(c, y5).");
        let min = minimize(&query);
        assert_eq!(min.core.body_size(), 1);
    }

    #[test]
    fn cores_are_idempotent() {
        let query = q("T(x) :- R(x, y), R(y, y), R(z, z), R(u, u).");
        let once = minimize(&query);
        let twice = minimize(&once.core);
        assert_eq!(once.core, twice.core);
    }
}
