//! A small recursive-descent parser for conjunctive queries, facts and
//! instances.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    := atom (":-" | "<-") atoms "."?
//! atoms    := atom ("," atom)*
//! atom     := IDENT "(" (IDENT ("," IDENT)*)? ")"
//! instance := (fact ("." | ",")?)*
//! fact     := IDENT "(" (IDENT ("," IDENT)*)? ")"
//! IDENT    := [A-Za-z0-9_][A-Za-z0-9_']*
//! ```

use std::fmt;

use crate::atom::{Atom, Variable};
use crate::fact::Fact;
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::value::Value;

/// A parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'%' || c == b'#' {
                // comment to end of line
                while self.pos < self.input.len() && self.input[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("identifier is not valid UTF-8"))
    }

    fn name_list(&mut self) -> Result<Vec<&'a str>, ParseError> {
        self.skip_ws();
        self.expect(b'(')?;
        self.skip_ws();
        let mut names = Vec::new();
        if self.eat(b')') {
            return Ok(names);
        }
        loop {
            names.push(self.ident()?);
            self.skip_ws();
            if self.eat(b')') {
                return Ok(names);
            }
            self.expect(b',')?;
            self.skip_ws();
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let rel = self.ident()?;
        let args = self.name_list()?;
        Ok(Atom::new(
            rel,
            args.into_iter().map(Variable::new).collect(),
        ))
    }

    fn fact(&mut self) -> Result<Fact, ParseError> {
        let rel = self.ident()?;
        let args = self.name_list()?;
        Ok(Fact::new(rel, args.into_iter().map(Value::new).collect()))
    }

    fn query(&mut self) -> Result<ConjunctiveQuery, ParseError> {
        self.skip_ws();
        let head = self.atom()?;
        self.skip_ws();
        // accept ":-" or "<-"
        let ok = (self.eat(b':') || self.eat(b'<')) && self.eat(b'-');
        if !ok {
            return Err(self.error("expected ':-' or '<-' after the head atom"));
        }
        let mut body = Vec::new();
        loop {
            self.skip_ws();
            body.push(self.atom()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            break;
        }
        self.skip_ws();
        self.eat(b'.');
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("unexpected trailing input after the query"));
        }
        ConjunctiveQuery::new(head, body).map_err(|e| ParseError {
            position: 0,
            message: e.to_string(),
        })
    }

    fn instance(&mut self) -> Result<Instance, ParseError> {
        let mut inst = Instance::new();
        loop {
            self.skip_ws();
            if self.pos == self.input.len() {
                return Ok(inst);
            }
            inst.insert(self.fact()?);
            self.skip_ws();
            // optional separators
            while self.eat(b'.') || self.eat(b',') {
                self.skip_ws();
            }
        }
    }
}

/// Parses a conjunctive query, e.g. `"T(x, z) :- R(x, y), R(y, z)."`.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, ParseError> {
    Parser::new(text).query()
}

/// Parses a single fact, e.g. `"R(a, b)"`.
pub fn parse_fact(text: &str) -> Result<Fact, ParseError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let f = p.fact()?;
    p.skip_ws();
    p.eat(b'.');
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("unexpected trailing input after the fact"));
    }
    Ok(f)
}

/// Parses an instance: a whitespace/period/comma separated list of facts,
/// e.g. `"R(a, b). R(b, c). S(a)."`. `%` and `#` start line comments.
pub fn parse_instance(text: &str) -> Result<Instance, ParseError> {
    Parser::new(text).instance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Symbol;

    #[test]
    fn parses_simple_query() {
        let q = parse_query("T(x, z) :- R(x, y), R(y, z).").unwrap();
        assert_eq!(q.head().relation, Symbol::new("T"));
        assert_eq!(q.body_size(), 2);
    }

    #[test]
    fn parses_arrow_syntax_and_no_trailing_dot() {
        let q = parse_query("Answer(x) <- Edge(x, y)").unwrap();
        assert_eq!(q.head().relation, Symbol::new("Answer"));
    }

    #[test]
    fn parses_boolean_head() {
        let q = parse_query("T() :- R(x, y).").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn rejects_missing_body() {
        assert!(parse_query("T(x)").is_err());
        assert!(parse_query("T(x) :-").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_query("T(x) :- R(x, y). extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn rejects_unsafe_queries_with_query_error_message() {
        let err = parse_query("T(x, w) :- R(x, y).").unwrap_err();
        assert!(err.message.contains("does not occur in the body"));
    }

    #[test]
    fn parses_fact_and_instance() {
        let f = parse_fact("R(a, b)").unwrap();
        assert_eq!(f, Fact::from_names("R", &["a", "b"]));

        let i = parse_instance("R(a, b). R(b, c), S(a)\n # comment\n T()").unwrap();
        assert_eq!(i.len(), 4);
        assert!(i.contains(&Fact::from_names("T", &[])));
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let i = parse_instance("% facts for node 1\nR(a, b).\n% more\nR(b, a).").unwrap();
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_instance("R(a, ").unwrap_err();
        assert!(err.position >= 4);
    }

    #[test]
    fn numeric_and_primed_identifiers() {
        let q = parse_query("T(x1) :- R(x1, x1'), S(42, x1).").unwrap();
        assert_eq!(q.variables().len(), 3);
    }
}
