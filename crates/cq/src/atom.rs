//! Variables and atoms.

use std::fmt;

use crate::intern::Symbol;

/// A variable from the universe **var** (disjoint from **dom**).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(Symbol);

impl Variable {
    /// Interns `name` as a variable.
    pub fn new(name: &str) -> Variable {
        Variable(Symbol::new(name))
    }

    /// A numbered variable with a custom prefix, e.g. `Variable::indexed("x", 3)` is `x3`.
    pub fn indexed(prefix: &str, index: usize) -> Variable {
        Variable(Symbol::new(&format!("{prefix}{index}")))
    }

    /// The string representation of the variable.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying interned symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.as_str())
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Variable {
    fn from(value: &str) -> Self {
        Variable::new(value)
    }
}

/// An atom `R(x₁, …, x_k)`: a relation name applied to a tuple of variables.
///
/// As in the paper, conjunctive queries do not use constants, so atom
/// arguments are always variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The relation name.
    pub relation: Symbol,
    /// The argument variables, in order.
    pub args: Vec<Variable>,
}

impl Atom {
    /// Builds an atom from a relation name and argument variables.
    pub fn new(relation: impl Into<Symbol>, args: Vec<Variable>) -> Atom {
        Atom {
            relation: relation.into(),
            args,
        }
    }

    /// Convenience constructor taking variable names as strings.
    pub fn from_names(relation: &str, args: &[&str]) -> Atom {
        Atom {
            relation: Symbol::new(relation),
            args: args.iter().map(|a| Variable::new(a)).collect(),
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the distinct variables of the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = Vec::new();
        for &v in &self.args {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Whether `var` occurs in the atom.
    pub fn contains(&self, var: Variable) -> bool {
        self.args.contains(&var)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display_roundtrips_shape() {
        let a = Atom::from_names("R", &["x", "y", "x"]);
        assert_eq!(a.to_string(), "R(x, y, x)");
        assert_eq!(a.arity(), 3);
    }

    #[test]
    fn variables_are_deduplicated_in_order() {
        let a = Atom::from_names("R", &["x", "y", "x", "z", "y"]);
        let vars = a.variables();
        assert_eq!(
            vars,
            vec![Variable::new("x"), Variable::new("y"), Variable::new("z")]
        );
    }

    #[test]
    fn contains_checks_membership() {
        let a = Atom::from_names("R", &["x", "y"]);
        assert!(a.contains(Variable::new("x")));
        assert!(!a.contains(Variable::new("w")));
    }

    #[test]
    fn zero_arity_atoms_are_allowed() {
        let a = Atom::from_names("True", &[]);
        assert_eq!(a.arity(), 0);
        assert_eq!(a.to_string(), "True()");
    }

    #[test]
    fn atoms_are_set_comparable() {
        let a = Atom::from_names("R", &["x", "y"]);
        let b = Atom::from_names("R", &["x", "y"]);
        let c = Atom::from_names("R", &["y", "x"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
