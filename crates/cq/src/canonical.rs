//! Canonical enumeration of valuations.
//!
//! By genericity of conjunctive queries (Claim C.4 of the paper), properties
//! such as minimality of a valuation or the containment condition (C2) only
//! depend on the *equality pattern* of a valuation, not on the concrete data
//! values. It therefore suffices to enumerate valuations up to isomorphism,
//! which this module does via *restricted growth strings* (canonical set
//! partitions): the i-th variable is assigned a class index that is at most
//! one larger than the maximum class index used so far.

use crate::atom::Variable;
use crate::valuation::Valuation;
use crate::value::Value;

/// All restricted-growth strings of length `n`.
///
/// Each string `a` encodes a set partition of `{0, …, n-1}`: positions with
/// equal entries are in the same class, and `a[0] = 0`,
/// `a[i] ≤ max(a[..i]) + 1`. The number of strings is the Bell number `B_n`.
pub fn partition_assignments(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    fn rec(current: &mut Vec<usize>, pos: usize, max_used: usize, out: &mut Vec<Vec<usize>>) {
        let n = current.len();
        if pos == n {
            out.push(current.clone());
            return;
        }
        for class in 0..=max_used + 1 {
            current[pos] = class;
            let new_max = max_used.max(class);
            rec(current, pos + 1, new_max, out);
        }
    }
    if n == 0 {
        out.push(Vec::new());
        return out;
    }
    current[0] = 0;
    rec(&mut current, 1, 0, &mut out);
    out
}

/// All assignments of length `n` over a domain of size `domain_size`
/// (the full odometer enumeration, `domain_size^n` entries).
pub fn all_assignments(n: usize, domain_size: usize) -> Vec<Vec<usize>> {
    if domain_size == 0 {
        return if n == 0 { vec![Vec::new()] } else { Vec::new() };
    }
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    loop {
        out.push(current.clone());
        let mut pos = 0;
        loop {
            if pos == n {
                return out;
            }
            current[pos] += 1;
            if current[pos] == domain_size {
                current[pos] = 0;
                pos += 1;
            } else {
                break;
            }
        }
    }
}

/// Iterator over canonical valuations of a variable list.
///
/// Each emitted valuation corresponds to one set partition of the variables;
/// variables in the same class are mapped to the same synthetic [`Value`],
/// variables in different classes to different values. Every valuation over
/// the infinite domain **dom** is isomorphic (via a permutation of **dom**)
/// to exactly one canonical valuation.
pub struct CanonicalValuations {
    vars: Vec<Variable>,
    assignments: std::vec::IntoIter<Vec<usize>>,
}

impl CanonicalValuations {
    /// Creates the canonical enumeration for `vars`.
    pub fn new(vars: Vec<Variable>) -> CanonicalValuations {
        let assignments = partition_assignments(vars.len()).into_iter();
        CanonicalValuations { vars, assignments }
    }

    /// Number of canonical valuations (the Bell number of the variable count).
    pub fn count_for(n_vars: usize) -> usize {
        partition_assignments(n_vars).len()
    }
}

impl Iterator for CanonicalValuations {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        let assignment = self.assignments.next()?;
        Some(Valuation::from_pairs(
            self.vars
                .iter()
                .zip(assignment.iter())
                .map(|(&var, &class)| (var, Value::synthetic(class))),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_counts_are_bell_numbers() {
        // Bell numbers: 1, 1, 2, 5, 15, 52, 203
        assert_eq!(partition_assignments(0).len(), 1);
        assert_eq!(partition_assignments(1).len(), 1);
        assert_eq!(partition_assignments(2).len(), 2);
        assert_eq!(partition_assignments(3).len(), 5);
        assert_eq!(partition_assignments(4).len(), 15);
        assert_eq!(partition_assignments(5).len(), 52);
        assert_eq!(partition_assignments(6).len(), 203);
    }

    #[test]
    fn partitions_are_restricted_growth_strings() {
        for a in partition_assignments(5) {
            assert_eq!(a[0], 0);
            let mut max = 0;
            for i in 1..a.len() {
                assert!(a[i] <= max + 1, "not an RGS: {a:?}");
                max = max.max(a[i]);
            }
        }
    }

    #[test]
    fn all_assignments_is_the_full_odometer() {
        assert_eq!(all_assignments(3, 2).len(), 8);
        assert_eq!(all_assignments(0, 5).len(), 1);
        assert_eq!(all_assignments(2, 0).len(), 0);
        let assignments = all_assignments(2, 3);
        assert_eq!(assignments.len(), 9);
        // all distinct
        let set: std::collections::BTreeSet<_> = assignments.iter().cloned().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn canonical_valuations_cover_all_equality_patterns() {
        let vars = vec![Variable::new("x"), Variable::new("y"), Variable::new("z")];
        let vals: Vec<Valuation> = CanonicalValuations::new(vars.clone()).collect();
        assert_eq!(vals.len(), 5);
        // one of them maps all three to the same value
        assert!(vals
            .iter()
            .any(|v| { v.get(vars[0]) == v.get(vars[1]) && v.get(vars[1]) == v.get(vars[2]) }));
        // one of them is injective
        assert!(vals.iter().any(|v| v.is_injective()));
        // all of them are total
        assert!(vals.iter().all(|v| vars.iter().all(|&x| v.binds(x))));
    }

    #[test]
    fn canonical_count_helper_matches_enumeration() {
        assert_eq!(CanonicalValuations::count_for(4), 15);
    }

    #[test]
    fn empty_variable_list_yields_the_empty_valuation() {
        let vals: Vec<Valuation> = CanonicalValuations::new(vec![]).collect();
        assert_eq!(vals.len(), 1);
        assert!(vals[0].is_empty());
    }
}
