//! Hypergraphs of conjunctive queries and the GYO acyclicity test.
//!
//! The paper (Appendix D) uses the classical GYO reduction: a query is
//! acyclic when repeatedly (1) removing vertices that occur in only one
//! hyperedge and (2) removing hyperedges contained in other hyperedges
//! reduces the hypergraph to nothing.

use std::collections::BTreeSet;

use crate::atom::Variable;
use crate::query::ConjunctiveQuery;

/// The hypergraph of a conjunctive query: one vertex per variable, one
/// hyperedge per body atom (the set of variables of the atom).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    edges: Vec<BTreeSet<Variable>>,
}

impl Hypergraph {
    /// Builds the hypergraph of the body of `query`.
    pub fn from_query(query: &ConjunctiveQuery) -> Hypergraph {
        let mut edges: Vec<BTreeSet<Variable>> = Vec::new();
        for atom in query.body() {
            let edge: BTreeSet<Variable> = atom.args.iter().copied().collect();
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }
        Hypergraph { edges }
    }

    /// Builds a hypergraph from explicit edges.
    pub fn from_edges(edges: Vec<BTreeSet<Variable>>) -> Hypergraph {
        Hypergraph { edges }
    }

    /// The current hyperedges.
    pub fn edges(&self) -> &[BTreeSet<Variable>] {
        &self.edges
    }

    /// Runs the GYO reduction and reports whether the hypergraph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        let mut edges = self.edges.clone();
        loop {
            let mut changed = false;

            // (1) Remove vertices that occur in exactly one hyperedge.
            let mut vertex_counts: std::collections::BTreeMap<Variable, usize> =
                std::collections::BTreeMap::new();
            for e in &edges {
                for &v in e {
                    *vertex_counts.entry(v).or_insert(0) += 1;
                }
            }
            for e in &mut edges {
                let before = e.len();
                e.retain(|v| vertex_counts.get(v).copied().unwrap_or(0) > 1);
                if e.len() != before {
                    changed = true;
                }
            }

            // (2) Remove empty hyperedges and hyperedges contained in another.
            let mut keep = vec![true; edges.len()];
            for i in 0..edges.len() {
                if edges[i].is_empty() {
                    keep[i] = false;
                    continue;
                }
                for j in 0..edges.len() {
                    if i != j && keep[j] && edges[i].is_subset(&edges[j]) {
                        // break ties so identical edges don't delete each other
                        if edges[i] != edges[j] || i > j {
                            keep[i] = false;
                            break;
                        }
                    }
                }
            }
            if keep.iter().any(|&k| !k) {
                changed = true;
                edges = edges
                    .into_iter()
                    .zip(keep)
                    .filter_map(|(e, k)| if k { Some(e) } else { None })
                    .collect();
            }

            if edges.is_empty() {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }
}

/// Whether the conjunctive query is acyclic (GYO reduction succeeds).
pub fn is_acyclic(query: &ConjunctiveQuery) -> bool {
    Hypergraph::from_query(query).is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn single_atom_queries_are_acyclic() {
        assert!(is_acyclic(&q("T(x) :- R(x, y, z).")));
        assert!(is_acyclic(&q("T() :- R(x).")));
    }

    #[test]
    fn chain_queries_are_acyclic() {
        assert!(is_acyclic(&q("T(x, w) :- R(x, y), R(y, z), R(z, w).")));
    }

    #[test]
    fn star_queries_are_acyclic() {
        assert!(is_acyclic(&q("T(c) :- R(c, x), R(c, y), R(c, z).")));
    }

    #[test]
    fn triangle_query_is_cyclic() {
        assert!(!is_acyclic(&q("T() :- E(x, y), E(y, z), E(z, x).")));
    }

    #[test]
    fn square_cycle_is_cyclic() {
        assert!(!is_acyclic(&q(
            "T() :- E(x, y), E(y, z), E(z, w), E(w, x)."
        )));
    }

    #[test]
    fn cycle_with_covering_atom_is_acyclic() {
        // A single wide atom covering all variables makes any query acyclic
        // (Remark D.3 of the paper uses exactly this trick).
        assert!(is_acyclic(&q(
            "T() :- E(x, y), E(y, z), E(z, x), All(x, y, z)."
        )));
    }

    #[test]
    fn prop_d1_style_query_is_acyclic() {
        // Q from Proposition D.1: color atoms E(c,d) for all distinct pairs
        // plus Fix(r,g,b) — the Fix atom contains all variables.
        assert!(is_acyclic(&q(
            "T() :- E(r, g), E(g, r), E(r, b), E(b, r), E(g, b), E(b, g), Fix(r, g, b)."
        )));
    }

    #[test]
    fn duplicate_edges_do_not_break_gyo() {
        let g = Hypergraph::from_edges(vec![
            [Variable::new("x"), Variable::new("y")]
                .into_iter()
                .collect(),
            [Variable::new("x"), Variable::new("y")]
                .into_iter()
                .collect(),
        ]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn disconnected_acyclic_components() {
        assert!(is_acyclic(&q("T() :- R(x, y), S(u, v).")));
    }
}
