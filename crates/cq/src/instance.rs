//! Database instances: finite sets of facts with per-relation indexes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::fact::Fact;
use crate::intern::Symbol;
use crate::schema::Schema;
use crate::value::Value;

/// A database instance: a finite set of facts.
///
/// Facts are kept both in a global ordered set (for deterministic iteration
/// and set semantics) and in a per-relation vector used by the evaluation
/// engine.
#[derive(Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Instance {
    facts: BTreeSet<Fact>,
    #[serde(skip)]
    by_relation: BTreeMap<Symbol, Vec<Fact>>,
}

// Equality is on the fact set only; the per-relation index is a cache whose
// internal ordering depends on insertion order.
impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.facts == other.facts
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.facts.cmp(&other.facts)
    }
}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.facts.hash(state);
    }
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from an iterator of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// The complete instance over `schema` with values drawn from `values`:
    /// every relation contains every possible tuple.
    ///
    /// This is the finite fact universe used when checking
    /// parallel-correctness of black-box policies over a bounded domain (the
    /// `Pⁿ` restriction of Section 3 of the paper). The size is
    /// `Σ_R |values|^{ar(R)}`, so keep `values` small.
    pub fn complete_over(schema: &Schema, values: &[Value]) -> Instance {
        let mut inst = Instance::new();
        for rel in schema.relations() {
            if values.is_empty() && rel.arity > 0 {
                continue;
            }
            let mut idx = vec![0usize; rel.arity];
            loop {
                inst.insert(Fact::new(
                    rel.name,
                    idx.iter().map(|&i| values[i]).collect(),
                ));
                // advance the odometer; stop after wrapping around
                let mut pos = 0;
                loop {
                    if pos == rel.arity {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] == values.len() {
                        idx[pos] = 0;
                        pos += 1;
                    } else {
                        break;
                    }
                }
                if pos == rel.arity {
                    break;
                }
            }
        }
        inst
    }

    /// Inserts a fact. Returns `true` if the fact was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        if self.facts.insert(fact.clone()) {
            self.by_relation
                .entry(fact.relation)
                .or_default()
                .push(fact);
            true
        } else {
            false
        }
    }

    /// Removes a fact. Returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        if self.facts.remove(fact) {
            if let Some(v) = self.by_relation.get_mut(&fact.relation) {
                v.retain(|f| f != fact);
            }
            true
        } else {
            false
        }
    }

    /// Whether the instance contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    /// Whether `other` is a subset of this instance.
    pub fn contains_all(&self, other: &Instance) -> bool {
        other.facts.is_subset(&self.facts)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over all facts in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> + '_ {
        self.facts.iter()
    }

    /// The facts of relation `relation` (empty slice if none).
    pub fn facts_of(&self, relation: Symbol) -> &[Fact] {
        self.by_relation
            .get(&relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The active domain: all data values occurring in the instance.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.facts
            .iter()
            .flat_map(|f| f.values.iter().copied())
            .collect()
    }

    /// The schema induced by the instance (each relation with the arity of
    /// its facts). Mixed arities for the same relation keep the first arity
    /// seen; [`Instance::is_well_formed`] reports such anomalies.
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for f in &self.facts {
            if schema.arity(f.relation).is_none() {
                schema.add(f.relation, f.arity());
            }
        }
        schema
    }

    /// Checks that every relation is used with a single arity.
    pub fn is_well_formed(&self) -> bool {
        let schema = self.schema();
        self.facts.iter().all(|f| schema.admits(f))
    }

    /// Set union.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for f in other.facts() {
            out.insert(f.clone());
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Instance) -> Instance {
        Instance::from_facts(self.facts.intersection(&other.facts).cloned())
    }

    /// Facts of `self` not in `other`.
    pub fn difference(&self, other: &Instance) -> Instance {
        Instance::from_facts(self.facts.difference(&other.facts).cloned())
    }

    /// All subsets of this instance (used by brute-force cross-checks in
    /// tests; exponential, only call on tiny instances).
    pub fn subsets(&self) -> Vec<Instance> {
        let facts: Vec<&Fact> = self.facts.iter().collect();
        assert!(
            facts.len() <= 20,
            "subsets() is exponential; instance too large ({} facts)",
            facts.len()
        );
        let mut out = Vec::with_capacity(1 << facts.len());
        for mask in 0..(1usize << facts.len()) {
            let mut inst = Instance::new();
            for (i, f) in facts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    inst.insert((*f).clone());
                }
            }
            out.push(inst);
        }
        out
    }

    /// Converts to a plain ordered set of facts.
    pub fn to_set(&self) -> BTreeSet<Fact> {
        self.facts.clone()
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

impl Extend<Fact> for Instance {
    fn extend<T: IntoIterator<Item = Fact>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

// Deserialization drops the index, so rebuild it.
impl Instance {
    /// Rebuilds the per-relation index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.by_relation.clear();
        for f in self.facts.clone() {
            self.by_relation.entry(f.relation).or_default().push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["b", "c"]),
            Fact::from_names("S", &["a"]),
        ])
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut i = sample();
        assert_eq!(i.len(), 3);
        assert!(!i.insert(Fact::from_names("R", &["a", "b"])));
        assert_eq!(i.len(), 3);
        assert!(i.insert(Fact::from_names("R", &["c", "d"])));
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn remove_updates_index() {
        let mut i = sample();
        let f = Fact::from_names("R", &["a", "b"]);
        assert!(i.remove(&f));
        assert!(!i.contains(&f));
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 1);
        assert!(!i.remove(&f));
    }

    #[test]
    fn facts_of_partitions_by_relation() {
        let i = sample();
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 2);
        assert_eq!(i.facts_of(Symbol::new("S")).len(), 1);
        assert_eq!(i.facts_of(Symbol::new("T")).len(), 0);
    }

    #[test]
    fn adom_collects_all_values() {
        let i = sample();
        let adom = i.adom();
        assert_eq!(adom.len(), 3);
        assert!(adom.contains(&Value::new("a")));
        assert!(adom.contains(&Value::new("c")));
    }

    #[test]
    fn schema_and_well_formedness() {
        let i = sample();
        let schema = i.schema();
        assert_eq!(schema.arity(Symbol::new("R")), Some(2));
        assert_eq!(schema.arity(Symbol::new("S")), Some(1));
        assert!(i.is_well_formed());

        let mut bad = sample();
        bad.insert(Fact::from_names("R", &["x"]));
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn set_operations() {
        let i = sample();
        let j = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("T", &["z"]),
        ]);
        assert_eq!(i.union(&j).len(), 4);
        assert_eq!(i.intersection(&j).len(), 1);
        assert_eq!(i.difference(&j).len(), 2);
        assert!(i.union(&j).contains_all(&i));
    }

    #[test]
    fn subsets_enumerates_the_powerset() {
        let i = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("S", &["a"]),
        ]);
        let subs = i.subsets();
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().any(|s| s.is_empty()));
        assert!(subs.iter().any(|s| s == &i));
    }

    #[test]
    fn complete_over_enumerates_all_tuples() {
        let schema = crate::Schema::from_relations([("R", 2), ("S", 1), ("B", 0)]);
        let values = [Value::new("a"), Value::new("b"), Value::new("c")];
        let inst = Instance::complete_over(&schema, &values);
        // 3^2 + 3 + 1 tuples
        assert_eq!(inst.len(), 9 + 3 + 1);
        assert!(inst.contains(&Fact::from_names("R", &["c", "a"])));
        assert!(inst.contains(&Fact::from_names("S", &["b"])));
        assert!(inst.contains(&Fact::from_names("B", &[])));
        assert!(inst.is_well_formed());
    }

    #[test]
    fn complete_over_with_empty_domain() {
        let schema = crate::Schema::from_relations([("R", 2), ("B", 0)]);
        let inst = Instance::complete_over(&schema, &[]);
        // only the nullary fact exists
        assert_eq!(inst.len(), 1);
        assert!(inst.contains(&Fact::from_names("B", &[])));
    }

    #[test]
    fn reindex_restores_lookup() {
        let mut i = sample();
        i.by_relation.clear();
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 0);
        i.reindex();
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 2);
    }
}
