//! Database instances: finite sets of facts with per-relation indexes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::fact::Fact;
use crate::intern::{Symbol, SymbolMap};
use crate::schema::Schema;
use crate::value::Value;

/// Secondary hash index for one relation: for every argument position, a map
/// from data value to the (sorted, ascending) positions in the relation's
/// fact vector whose tuple carries that value at that position.
///
/// Facts shorter than a position simply do not appear in that position's
/// map, so mixed-arity (ill-formed) relations index safely; the evaluator
/// re-checks arity when matching.
#[derive(Debug, Default)]
struct RelationIndex {
    by_position: Vec<SymbolMap<Value, Vec<u32>>>,
}

impl RelationIndex {
    /// Appends one fact's postings for the row that is about to be pushed at
    /// the end of the relation's fact vector. Because `row` is larger than
    /// every row already indexed, pushing keeps the posting lists sorted —
    /// this is what makes insertion maintain the index instead of
    /// invalidating it.
    fn append(&mut self, row: u32, fact: &Fact) {
        if fact.arity() > self.by_position.len() {
            self.by_position
                .resize_with(fact.arity(), SymbolMap::default);
        }
        for (position, &value) in fact.values.iter().enumerate() {
            self.by_position[position]
                .entry(value)
                .or_default()
                .push(row);
        }
    }

    fn build(facts: &[Fact]) -> RelationIndex {
        let max_arity = facts.iter().map(Fact::arity).max().unwrap_or(0);
        let mut by_position: Vec<SymbolMap<Value, Vec<u32>>> = Vec::with_capacity(max_arity);
        by_position.resize_with(max_arity, SymbolMap::default);
        for (row, fact) in facts.iter().enumerate() {
            let row = u32::try_from(row).expect("relation larger than u32::MAX facts");
            for (position, &value) in fact.values.iter().enumerate() {
                by_position[position].entry(value).or_default().push(row);
            }
        }
        RelationIndex { by_position }
    }

    fn posting(&self, position: usize, value: Value) -> &[u32] {
        self.by_position
            .get(position)
            .and_then(|m| m.get(&value))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn distinct_values_at(&self, position: usize) -> usize {
        self.by_position.get(position).map_or(0, SymbolMap::len)
    }
}

/// A database instance: a finite set of facts.
///
/// Facts are kept in a global ordered set (for deterministic iteration and
/// set semantics), in a per-relation vector used by the evaluation engine,
/// and — built lazily on first use — in per-relation secondary hash indexes
/// keyed by `(argument position, value)` that let the evaluator retrieve
/// only the candidate facts matching a partially bound atom. Insertion
/// maintains built indexes incrementally (appended rows keep the posting
/// lists sorted); `remove` invalidates them, and they are rebuilt in one
/// pass on the next indexed lookup.
#[derive(Default)]
pub struct Instance {
    facts: BTreeSet<Fact>,
    by_relation: BTreeMap<Symbol, Vec<Fact>>,
    indexes: OnceLock<BTreeMap<Symbol, RelationIndex>>,
    /// How many times the secondary indexes were built from scratch over
    /// this instance's lifetime — the regression counter behind
    /// [`Instance::index_builds`]. Atomic because lazily building through
    /// `&self` must stay `Sync`.
    index_builds: AtomicU64,
}

// The secondary indexes are a caching layer: they are never cloned (the
// clone rebuilds lazily if and when it evaluates queries). The build
// counter restarts with the fresh cache.
impl Clone for Instance {
    fn clone(&self) -> Instance {
        Instance {
            facts: self.facts.clone(),
            by_relation: self.by_relation.clone(),
            indexes: OnceLock::new(),
            index_builds: AtomicU64::new(0),
        }
    }
}

// Equality is on the fact set only; the per-relation index is a cache whose
// internal ordering depends on insertion order.
impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.facts == other.facts
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.facts.cmp(&other.facts)
    }
}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.facts.hash(state);
    }
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from an iterator of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// The complete instance over `schema` with values drawn from `values`:
    /// every relation contains every possible tuple.
    ///
    /// This is the finite fact universe used when checking
    /// parallel-correctness of black-box policies over a bounded domain (the
    /// `Pⁿ` restriction of Section 3 of the paper). The size is
    /// `Σ_R |values|^{ar(R)}`, so keep `values` small.
    pub fn complete_over(schema: &Schema, values: &[Value]) -> Instance {
        let mut inst = Instance::new();
        for rel in schema.relations() {
            if values.is_empty() && rel.arity > 0 {
                continue;
            }
            let mut idx = vec![0usize; rel.arity];
            loop {
                inst.insert(Fact::new(
                    rel.name,
                    idx.iter().map(|&i| values[i]).collect(),
                ));
                // advance the odometer; stop after wrapping around
                let mut pos = 0;
                loop {
                    if pos == rel.arity {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] == values.len() {
                        idx[pos] = 0;
                        pos += 1;
                    } else {
                        break;
                    }
                }
                if pos == rel.arity {
                    break;
                }
            }
        }
        inst
    }

    /// Inserts a fact. Returns `true` if the fact was not already present.
    ///
    /// If the secondary indexes are already built, they are **maintained
    /// incrementally**: the new fact is appended to the per-position posting
    /// lists (which stay sorted, because the new row id is the largest), so
    /// growing an instance — the hot path of delta-driven multi-round
    /// evaluation — never throws away index work. Only [`Instance::remove`]
    /// still invalidates.
    pub fn insert(&mut self, fact: Fact) -> bool {
        if self.facts.insert(fact.clone()) {
            let rows = self.by_relation.entry(fact.relation).or_default();
            if let Some(indexes) = self.indexes.get_mut() {
                let row = u32::try_from(rows.len()).expect("relation larger than u32::MAX facts");
                indexes.entry(fact.relation).or_default().append(row, &fact);
            }
            rows.push(fact);
            true
        } else {
            false
        }
    }

    /// Removes a fact. Returns `true` if it was present.
    ///
    /// Invalidates the secondary indexes.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        if self.facts.remove(fact) {
            self.invalidate_indexes();
            if let Some(v) = self.by_relation.get_mut(&fact.relation) {
                v.retain(|f| f != fact);
            }
            true
        } else {
            false
        }
    }

    /// Drops the lazily built secondary indexes; the next indexed lookup
    /// rebuilds them from the current fact set.
    fn invalidate_indexes(&mut self) {
        self.indexes = OnceLock::new();
    }

    /// The secondary indexes, building them on first use.
    fn indexes(&self) -> &BTreeMap<Symbol, RelationIndex> {
        self.indexes.get_or_init(|| {
            self.index_builds.fetch_add(1, Ordering::Relaxed);
            self.by_relation
                .iter()
                .map(|(&rel, facts)| (rel, RelationIndex::build(facts)))
                .collect()
        })
    }

    /// Whether the secondary indexes are currently built (test/diagnostic
    /// hook; lookups build them transparently).
    pub fn indexes_built(&self) -> bool {
        self.indexes.get().is_some()
    }

    /// How many times this instance built its secondary indexes from
    /// scratch (incremental insert maintenance does not count; `remove`
    /// invalidates, so the next lookup counts again). Regression tests pin
    /// this to catch code that rebuilds per candidate instead of reusing a
    /// warm instance; clones restart at 0.
    pub fn index_builds(&self) -> u64 {
        self.index_builds.load(Ordering::Relaxed)
    }

    /// The sorted positions (into [`Instance::facts_of`]) of the facts of
    /// `relation` whose tuple has `value` at argument position `position`.
    ///
    /// Builds the secondary index for the instance on first use. Facts
    /// shorter than `position` never appear in the posting list.
    pub fn posting(&self, relation: Symbol, position: usize, value: Value) -> &[u32] {
        self.indexes()
            .get(&relation)
            .map(|idx| idx.posting(position, value))
            .unwrap_or(&[])
    }

    /// The number of facts of `relation` with `value` at `position`
    /// (posting-list length; exact, not an estimate).
    pub fn count_matching(&self, relation: Symbol, position: usize, value: Value) -> usize {
        self.posting(relation, position, value).len()
    }

    /// The number of distinct values occurring at argument position
    /// `position` of `relation`. Cost estimation uses this as the
    /// denominator of the average selectivity `|R| / distinct`.
    pub fn distinct_values_at(&self, relation: Symbol, position: usize) -> usize {
        self.indexes()
            .get(&relation)
            .map_or(0, |idx| idx.distinct_values_at(position))
    }

    /// Whether the instance contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    /// Whether `other` is a subset of this instance.
    pub fn contains_all(&self, other: &Instance) -> bool {
        other.facts.is_subset(&self.facts)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over all facts in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> + '_ {
        self.facts.iter()
    }

    /// The facts of relation `relation` (empty slice if none).
    pub fn facts_of(&self, relation: Symbol) -> &[Fact] {
        self.by_relation
            .get(&relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The active domain: all data values occurring in the instance.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.facts
            .iter()
            .flat_map(|f| f.values.iter().copied())
            .collect()
    }

    /// The schema induced by the instance (each relation with the arity of
    /// its facts). Mixed arities for the same relation keep the first arity
    /// seen; [`Instance::is_well_formed`] reports such anomalies.
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for f in &self.facts {
            if schema.arity(f.relation).is_none() {
                schema.add(f.relation, f.arity());
            }
        }
        schema
    }

    /// Checks that every relation is used with a single arity.
    pub fn is_well_formed(&self) -> bool {
        let schema = self.schema();
        self.facts.iter().all(|f| schema.admits(f))
    }

    /// Set union.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for f in other.facts() {
            out.insert(f.clone());
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Instance) -> Instance {
        Instance::from_facts(self.facts.intersection(&other.facts).cloned())
    }

    /// Facts of `self` not in `other`.
    pub fn difference(&self, other: &Instance) -> Instance {
        Instance::from_facts(self.facts.difference(&other.facts).cloned())
    }

    /// All subsets of this instance (used by brute-force cross-checks in
    /// tests; exponential, only call on tiny instances).
    pub fn subsets(&self) -> Vec<Instance> {
        let facts: Vec<&Fact> = self.facts.iter().collect();
        assert!(
            facts.len() <= 20,
            "subsets() is exponential; instance too large ({} facts)",
            facts.len()
        );
        let mut out = Vec::with_capacity(1 << facts.len());
        for mask in 0..(1usize << facts.len()) {
            let mut inst = Instance::new();
            for (i, f) in facts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    inst.insert((*f).clone());
                }
            }
            out.push(inst);
        }
        out
    }

    /// Converts to a plain ordered set of facts.
    pub fn to_set(&self) -> BTreeSet<Fact> {
        self.facts.clone()
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

impl Extend<Fact> for Instance {
    fn extend<T: IntoIterator<Item = Fact>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl Instance {
    /// Rebuilds the per-relation fact vectors and drops the secondary
    /// indexes — the repair hook for callers that reconstruct an instance
    /// from its bare fact set (e.g. after wire decoding by-hand).
    pub fn reindex(&mut self) {
        self.invalidate_indexes();
        self.by_relation.clear();
        for f in self.facts.clone() {
            self.by_relation.entry(f.relation).or_default().push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["b", "c"]),
            Fact::from_names("S", &["a"]),
        ])
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut i = sample();
        assert_eq!(i.len(), 3);
        assert!(!i.insert(Fact::from_names("R", &["a", "b"])));
        assert_eq!(i.len(), 3);
        assert!(i.insert(Fact::from_names("R", &["c", "d"])));
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn remove_updates_index() {
        let mut i = sample();
        let f = Fact::from_names("R", &["a", "b"]);
        assert!(i.remove(&f));
        assert!(!i.contains(&f));
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 1);
        assert!(!i.remove(&f));
    }

    #[test]
    fn facts_of_partitions_by_relation() {
        let i = sample();
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 2);
        assert_eq!(i.facts_of(Symbol::new("S")).len(), 1);
        assert_eq!(i.facts_of(Symbol::new("T")).len(), 0);
    }

    #[test]
    fn adom_collects_all_values() {
        let i = sample();
        let adom = i.adom();
        assert_eq!(adom.len(), 3);
        assert!(adom.contains(&Value::new("a")));
        assert!(adom.contains(&Value::new("c")));
    }

    #[test]
    fn schema_and_well_formedness() {
        let i = sample();
        let schema = i.schema();
        assert_eq!(schema.arity(Symbol::new("R")), Some(2));
        assert_eq!(schema.arity(Symbol::new("S")), Some(1));
        assert!(i.is_well_formed());

        let mut bad = sample();
        bad.insert(Fact::from_names("R", &["x"]));
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn set_operations() {
        let i = sample();
        let j = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("T", &["z"]),
        ]);
        assert_eq!(i.union(&j).len(), 4);
        assert_eq!(i.intersection(&j).len(), 1);
        assert_eq!(i.difference(&j).len(), 2);
        assert!(i.union(&j).contains_all(&i));
    }

    #[test]
    fn subsets_enumerates_the_powerset() {
        let i = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("S", &["a"]),
        ]);
        let subs = i.subsets();
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().any(|s| s.is_empty()));
        assert!(subs.iter().any(|s| s == &i));
    }

    #[test]
    fn complete_over_enumerates_all_tuples() {
        let schema = crate::Schema::from_relations([("R", 2), ("S", 1), ("B", 0)]);
        let values = [Value::new("a"), Value::new("b"), Value::new("c")];
        let inst = Instance::complete_over(&schema, &values);
        // 3^2 + 3 + 1 tuples
        assert_eq!(inst.len(), 9 + 3 + 1);
        assert!(inst.contains(&Fact::from_names("R", &["c", "a"])));
        assert!(inst.contains(&Fact::from_names("S", &["b"])));
        assert!(inst.contains(&Fact::from_names("B", &[])));
        assert!(inst.is_well_formed());
    }

    #[test]
    fn complete_over_with_empty_domain() {
        let schema = crate::Schema::from_relations([("R", 2), ("B", 0)]);
        let inst = Instance::complete_over(&schema, &[]);
        // only the nullary fact exists
        assert_eq!(inst.len(), 1);
        assert!(inst.contains(&Fact::from_names("B", &[])));
    }

    #[test]
    fn reindex_restores_lookup() {
        let mut i = sample();
        i.by_relation.clear();
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 0);
        i.reindex();
        assert_eq!(i.facts_of(Symbol::new("R")).len(), 2);
    }

    #[test]
    fn postings_select_matching_rows() {
        let i = sample();
        let r = Symbol::new("R");
        // R = [R(a,b), R(b,c)] in insertion order
        assert_eq!(i.posting(r, 0, Value::new("a")), &[0]);
        assert_eq!(i.posting(r, 0, Value::new("b")), &[1]);
        assert_eq!(i.posting(r, 1, Value::new("b")), &[0]);
        assert!(i.posting(r, 0, Value::new("z")).is_empty());
        assert!(i.posting(r, 7, Value::new("a")).is_empty());
        assert!(i
            .posting(Symbol::new("Missing"), 0, Value::new("a"))
            .is_empty());
        assert_eq!(i.count_matching(r, 0, Value::new("a")), 1);
        assert_eq!(i.distinct_values_at(r, 0), 2);
        assert_eq!(i.distinct_values_at(Symbol::new("S"), 0), 1);
    }

    #[test]
    fn insert_maintains_the_secondary_indexes_incrementally() {
        let mut i = sample();
        let r = Symbol::new("R");
        assert!(!i.indexes_built());
        assert_eq!(i.posting(r, 0, Value::new("a")).len(), 1);
        assert!(i.indexes_built());

        // a second fact with the same leading value must show up after
        // insert — without dropping the already-built index
        assert!(i.insert(Fact::from_names("R", &["a", "z"])));
        assert!(i.indexes_built(), "insert must keep the index warm");
        assert_eq!(i.posting(r, 0, Value::new("a")), &[0, 2]);

        // inserting a duplicate leaves the set — and the index — unchanged
        assert!(!i.insert(Fact::from_names("R", &["a", "z"])));
        assert_eq!(i.posting(r, 0, Value::new("a")).len(), 2);

        // a brand-new relation indexes through the same incremental path
        assert!(i.insert(Fact::from_names("W", &["a"])));
        assert!(i.indexes_built());
        assert_eq!(i.posting(Symbol::new("W"), 0, Value::new("a")), &[0]);
    }

    #[test]
    fn incremental_insert_equals_a_fresh_rebuild() {
        // Growing an indexed instance fact by fact must leave exactly the
        // postings a from-scratch build produces.
        let facts = [
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["a", "c"]),
            Fact::from_names("S", &["b"]),
            Fact::from_names("R", &["b", "b"]),
            Fact::from_names("S", &["a"]),
        ];
        let mut grown = Instance::new();
        let _ = grown.posting(Symbol::new("R"), 0, Value::new("a")); // force-build
        for f in &facts {
            grown.insert(f.clone());
            assert!(grown.indexes_built());
        }
        let fresh = Instance::from_facts(facts.iter().cloned());
        for rel in ["R", "S"] {
            let rel = Symbol::new(rel);
            for position in 0..2 {
                for value in ["a", "b", "c"] {
                    assert_eq!(
                        grown.posting(rel, position, Value::new(value)),
                        fresh.posting(rel, position, Value::new(value)),
                        "postings diverged at {rel}/{position}/{value}"
                    );
                }
                assert_eq!(
                    grown.distinct_values_at(rel, position),
                    fresh.distinct_values_at(rel, position)
                );
            }
        }
    }

    #[test]
    fn remove_invalidates_the_secondary_indexes() {
        let mut i = sample();
        let r = Symbol::new("R");
        assert_eq!(i.posting(r, 0, Value::new("b")).len(), 1);
        assert!(i.remove(&Fact::from_names("R", &["b", "c"])));
        assert!(!i.indexes_built(), "remove must drop the index cache");
        assert!(i.posting(r, 0, Value::new("b")).is_empty());
        assert_eq!(i.posting(r, 0, Value::new("a")), &[0]);
    }

    #[test]
    fn postings_intersect_to_the_matching_rows() {
        let i = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["a", "c"]),
            Fact::from_names("R", &["b", "b"]),
        ]);
        let r = Symbol::new("R");
        // posting lists are sorted, so intersection by binary search works
        let first_a = i.posting(r, 0, Value::new("a"));
        let second_b = i.posting(r, 1, Value::new("b"));
        assert_eq!(first_a, &[0, 1]);
        assert_eq!(second_b, &[0, 2]);
        let both: Vec<u32> = first_a
            .iter()
            .copied()
            .filter(|row| second_b.binary_search(row).is_ok())
            .collect();
        assert_eq!(both, vec![0]);
        assert_eq!(i.facts_of(r)[0], Fact::from_names("R", &["a", "b"]));
    }

    #[test]
    fn index_builds_counts_scratch_builds_only() {
        let mut i = sample();
        assert_eq!(i.index_builds(), 0);
        let _ = i.posting(Symbol::new("R"), 0, Value::new("a"));
        let _ = i.posting(Symbol::new("R"), 1, Value::new("b"));
        assert_eq!(i.index_builds(), 1, "repeated lookups reuse one build");
        // incremental insert maintenance is not a rebuild
        i.insert(Fact::from_names("R", &["x", "y"]));
        let _ = i.posting(Symbol::new("R"), 0, Value::new("x"));
        assert_eq!(i.index_builds(), 1);
        // remove invalidates; the next lookup builds again
        assert!(i.remove(&Fact::from_names("R", &["x", "y"])));
        let _ = i.posting(Symbol::new("R"), 0, Value::new("a"));
        assert_eq!(i.index_builds(), 2);
        // clones start over with a cold cache and a zero counter
        let j = i.clone();
        assert_eq!(j.index_builds(), 0);
    }

    #[test]
    fn clone_rebuilds_indexes_lazily() {
        let i = sample();
        let _ = i.posting(Symbol::new("R"), 0, Value::new("a"));
        let j = i.clone();
        assert!(!j.indexes_built());
        assert_eq!(j.posting(Symbol::new("R"), 0, Value::new("a")), &[0]);
        assert_eq!(i, j);
    }

    #[test]
    fn mixed_arity_relations_index_safely() {
        let mut i = Instance::from_facts([Fact::from_names("R", &["a", "b"])]);
        i.insert(Fact::from_names("R", &["a"]));
        let r = Symbol::new("R");
        // both facts carry "a" at position 0; only the binary one has position 1
        assert_eq!(i.posting(r, 0, Value::new("a")).len(), 2);
        assert_eq!(i.posting(r, 1, Value::new("b")).len(), 1);
    }
}
