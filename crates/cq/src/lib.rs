//! # cq — conjunctive queries over relational instances
//!
//! This crate is the self-contained substrate for the reproduction of
//! *"Parallel-Correctness and Transferability for Conjunctive Queries"*
//! (Ameloot, Geck, Ketsman, Neven, Schwentick, PODS 2015). It provides the
//! data model of Section 2 of the paper:
//!
//! * interned [`Symbol`]s, data [`Value`]s and [`Variable`]s,
//! * database [`Schema`]s, [`Atom`]s, [`Fact`]s and [`Instance`]s,
//! * [`ConjunctiveQuery`] with the paper's safety conditions,
//! * [`Valuation`]s, satisfaction and query evaluation ([`evaluate`]),
//! * [`Substitution`]s, *simplifications* and *foldings* (Definition 2.1),
//! * homomorphisms, containment, equivalence and core computation
//!   (Chandra–Merlin minimization),
//! * hypergraph acyclicity via the GYO reduction,
//! * canonical (isomorphism-reduced) valuation enumeration used by the
//!   decision procedures of the `pc-core` crate.
//!
//! The crate has no opinion about distribution policies or
//! parallel-correctness; those live in the `distribution` and `pc-core`
//! crates.
//!
//! ## Example
//!
//! ```
//! use cq::{ConjunctiveQuery, Instance, evaluate};
//!
//! let q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
//! let i: Instance = cq::parse_instance("R(a, b). R(b, c). R(c, d).").unwrap();
//! let result = evaluate(&q, &i);
//! assert_eq!(result.len(), 2); // T(a,c), T(b,d)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclic;
mod atom;
mod canonical;
mod eval;
mod fact;
mod hom;
mod instance;
mod intern;
mod minimize;
mod parser;
mod query;
mod schema;
mod substitution;
mod valuation;
mod value;

pub use acyclic::{is_acyclic, Hypergraph};
pub use atom::{Atom, Variable};
pub use canonical::{all_assignments, partition_assignments, CanonicalValuations};
pub use eval::{
    evaluate, evaluate_seminaive_step, evaluate_seminaive_step_with, evaluate_with,
    for_each_satisfying, satisfying_valuations, satisfying_valuations_with, EvalOptions,
    JoinOrdering, JoinStrategy,
};
pub use fact::Fact;
pub use hom::{
    contained_in, equivalent, find_cover, find_homomorphism, for_each_atom_mapping, CoverProblem,
};
pub use instance::Instance;
pub use intern::{Symbol, SymbolHashBuilder, SymbolHasher, SymbolMap};
pub use minimize::{is_minimal, minimize, Minimization};
pub use parser::{parse_fact, parse_instance, parse_query, ParseError};
pub use query::{ConjunctiveQuery, QueryError};
pub use schema::{RelationSchema, Schema};
pub use substitution::Substitution;
pub use valuation::Valuation;
pub use value::Value;
