//! Database schemas.

use std::collections::BTreeMap;
use std::fmt;

use crate::fact::Fact;
use crate::intern::Symbol;

/// A relation name together with its arity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelationSchema {
    /// The relation name.
    pub name: Symbol,
    /// The number of attributes.
    pub arity: usize,
}

/// A database schema: a finite set of relation names with arities.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Schema {
    relations: BTreeMap<Symbol, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Builds a schema from `(name, arity)` pairs.
    pub fn from_relations<I, S>(relations: I) -> Schema
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<Symbol>,
    {
        let mut schema = Schema::new();
        for (name, arity) in relations {
            schema.add(name, arity);
        }
        schema
    }

    /// Adds (or overwrites) a relation.
    pub fn add(&mut self, name: impl Into<Symbol>, arity: usize) {
        self.relations.insert(name.into(), arity);
    }

    /// The arity of `name`, if the relation is part of the schema.
    pub fn arity(&self, name: Symbol) -> Option<usize> {
        self.relations.get(&name).copied()
    }

    /// Whether `name` is a relation of the schema.
    pub fn contains(&self, name: Symbol) -> bool {
        self.relations.contains_key(&name)
    }

    /// The number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over the relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = RelationSchema> + '_ {
        self.relations
            .iter()
            .map(|(&name, &arity)| RelationSchema { name, arity })
    }

    /// Whether `fact` is a fact over this schema (known relation, right arity).
    pub fn admits(&self, fact: &Fact) -> bool {
        self.arity(fact.relation) == Some(fact.arity())
    }

    /// Merges another schema into this one.
    ///
    /// Returns `false` (and leaves `self` unchanged for that relation) when a
    /// relation occurs in both schemas with different arities.
    pub fn merge(&mut self, other: &Schema) -> bool {
        let mut consistent = true;
        for rel in other.relations() {
            match self.relations.get(&rel.name) {
                Some(&arity) if arity != rel.arity => consistent = false,
                Some(_) => {}
                None => {
                    self.relations.insert(rel.name, rel.arity);
                }
            }
        }
        consistent
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for rel in self.relations() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}/{}", rel.name, rel.arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::from_relations([("R", 2), ("S", 3)]);
        assert_eq!(s.arity(Symbol::new("R")), Some(2));
        assert_eq!(s.arity(Symbol::new("S")), Some(3));
        assert_eq!(s.arity(Symbol::new("T")), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn admits_checks_relation_and_arity() {
        let s = Schema::from_relations([("R", 2)]);
        assert!(s.admits(&Fact::from_names("R", &["a", "b"])));
        assert!(!s.admits(&Fact::from_names("R", &["a"])));
        assert!(!s.admits(&Fact::from_names("S", &["a", "b"])));
    }

    #[test]
    fn merge_detects_arity_conflicts() {
        let mut a = Schema::from_relations([("R", 2)]);
        let b = Schema::from_relations([("R", 3), ("S", 1)]);
        assert!(!a.merge(&b));
        // The conflicting relation keeps its original arity; new relations are added.
        assert_eq!(a.arity(Symbol::new("R")), Some(2));
        assert_eq!(a.arity(Symbol::new("S")), Some(1));
    }

    #[test]
    fn display_lists_relations() {
        let s = Schema::from_relations([("R", 2), ("S", 0)]);
        let shown = s.to_string();
        assert!(shown.contains("R/2"));
        assert!(shown.contains("S/0"));
    }
}
