//! Valuations: total functions from query variables to data values.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::{Atom, Variable};
use crate::fact::Fact;
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::value::Value;

/// A (possibly partial) mapping from variables to data values.
///
/// A valuation *for a query `Q`* in the sense of the paper is a total mapping
/// on `vars(Q)`; [`Valuation::is_total_for`] checks totality. Partial
/// valuations are used internally by the evaluation engine and by the
/// decision procedures (e.g. pre-binding head variables).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Valuation {
    map: BTreeMap<Variable, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// Builds a valuation from `(variable, value)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Valuation
    where
        I: IntoIterator<Item = (Variable, Value)>,
    {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Builds a valuation from `(name, value-name)` string pairs.
    pub fn from_names<'a, I>(pairs: I) -> Valuation
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        Valuation {
            map: pairs
                .into_iter()
                .map(|(x, v)| (Variable::new(x), Value::new(v)))
                .collect(),
        }
    }

    /// Binds `var` to `value`, overwriting any previous binding.
    pub fn bind(&mut self, var: Variable, value: Value) {
        self.map.insert(var, value);
    }

    /// Returns a copy with `var` bound to `value`.
    pub fn with(&self, var: Variable, value: Value) -> Valuation {
        let mut v = self.clone();
        v.bind(var, value);
        v
    }

    /// Removes the binding for `var`.
    pub fn unbind(&mut self, var: Variable) {
        self.map.remove(&var);
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: Variable) -> Option<Value> {
        self.map.get(&var).copied()
    }

    /// Whether `var` is bound.
    pub fn binds(&self, var: Variable) -> bool {
        self.map.contains_key(&var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings in variable order.
    pub fn bindings(&self) -> impl Iterator<Item = (Variable, Value)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// The set of values in the image of the valuation.
    pub fn image(&self) -> BTreeSet<Value> {
        self.map.values().copied().collect()
    }

    /// Whether the valuation is injective on its domain.
    pub fn is_injective(&self) -> bool {
        self.image().len() == self.map.len()
    }

    /// Whether the valuation is total on `vars(Q)`.
    pub fn is_total_for(&self, query: &ConjunctiveQuery) -> bool {
        query.variables().iter().all(|&v| self.binds(v))
    }

    /// Applies the valuation to an atom, producing a fact.
    ///
    /// Returns `None` if some argument variable is unbound.
    pub fn apply_atom(&self, atom: &Atom) -> Option<Fact> {
        let mut values = Vec::with_capacity(atom.args.len());
        for &v in &atom.args {
            values.push(self.get(v)?);
        }
        Some(Fact::new(atom.relation, values))
    }

    /// The facts *required by* the valuation for `Q`, i.e. `V(body_Q)`.
    ///
    /// Panics if the valuation is not total on the body variables.
    pub fn required_facts(&self, query: &ConjunctiveQuery) -> Instance {
        Instance::from_facts(query.body().iter().map(|a| {
            self.apply_atom(a)
                .expect("valuation is not total on the query body")
        }))
    }

    /// The fact derived by the valuation, i.e. `V(head_Q)`.
    ///
    /// Panics if the valuation is not total on the head variables.
    pub fn derived_fact(&self, query: &ConjunctiveQuery) -> Fact {
        self.apply_atom(query.head())
            .expect("valuation is not total on the query head")
    }

    /// Whether the valuation is *satisfying* for `Q` on `instance`: all facts
    /// required by the valuation are present in the instance.
    pub fn satisfies(&self, query: &ConjunctiveQuery, instance: &Instance) -> bool {
        query.body().iter().all(|a| match self.apply_atom(a) {
            Some(f) => instance.contains(&f),
            None => false,
        })
    }

    /// `V₁ ≤_Q V₂`: same derived head fact and `V₁(body_Q) ⊆ V₂(body_Q)`.
    pub fn leq(&self, other: &Valuation, query: &ConjunctiveQuery) -> bool {
        self.derived_fact(query) == other.derived_fact(query)
            && other
                .required_facts(query)
                .contains_all(&self.required_facts(query))
    }

    /// `V₁ <_Q V₂`: `V₁ ≤_Q V₂` and `V₁(body_Q) ⊊ V₂(body_Q)`.
    pub fn lt(&self, other: &Valuation, query: &ConjunctiveQuery) -> bool {
        if self.derived_fact(query) != other.derived_fact(query) {
            return false;
        }
        let mine = self.required_facts(query);
        let theirs = other.required_facts(query);
        theirs.contains_all(&mine) && mine.len() < theirs.len()
    }

    /// Restricts the valuation to the given variables.
    pub fn restrict(&self, vars: &[Variable]) -> Valuation {
        Valuation {
            map: self
                .map
                .iter()
                .filter(|(k, _)| vars.contains(k))
                .map(|(&k, &v)| (k, v))
                .collect(),
        }
    }

    /// Extends the valuation with the bindings of `other`.
    ///
    /// Returns `false` and leaves `self` unchanged on a conflicting binding.
    pub fn try_extend(&mut self, other: &Valuation) -> bool {
        for (var, value) in other.bindings() {
            if let Some(existing) = self.get(var) {
                if existing != value {
                    return false;
                }
            }
        }
        for (var, value) in other.bindings() {
            self.bind(var, value);
        }
        true
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, value)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var} ↦ {value}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Variable, Value)> for Valuation {
    fn from_iter<T: IntoIterator<Item = (Variable, Value)>>(iter: T) -> Self {
        Valuation::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConjunctiveQuery;

    fn example_query() -> ConjunctiveQuery {
        // Example 3.5 of the paper.
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(x, x).").unwrap()
    }

    #[test]
    fn example_3_5_required_facts() {
        let q = example_query();
        let v = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
        let required = v.required_facts(&q);
        assert_eq!(required.len(), 3);
        assert!(required.contains(&Fact::from_names("R", &["a", "b"])));
        assert!(required.contains(&Fact::from_names("R", &["b", "a"])));
        assert!(required.contains(&Fact::from_names("R", &["a", "a"])));

        let v2 = Valuation::from_names([("x", "a"), ("y", "a"), ("z", "a")]);
        let required2 = v2.required_facts(&q);
        assert_eq!(required2.len(), 1);
        assert!(required2.contains(&Fact::from_names("R", &["a", "a"])));
    }

    #[test]
    fn example_3_5_ordering_between_valuations() {
        let q = example_query();
        let v = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
        let v2 = Valuation::from_names([("x", "a"), ("y", "a"), ("z", "a")]);
        // v2 requires strictly fewer facts and derives the same head fact.
        assert!(v2.lt(&v, &q));
        assert!(v2.leq(&v, &q));
        assert!(!v.lt(&v2, &q));
        assert!(v.leq(&v, &q));
        assert!(!v.lt(&v, &q));
    }

    #[test]
    fn satisfaction_checks_all_body_atoms() {
        let q = example_query();
        let v = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "a")]);
        let mut i = Instance::from_facts([
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("R", &["b", "a"]),
        ]);
        assert!(!v.satisfies(&q, &i));
        i.insert(Fact::from_names("R", &["a", "a"]));
        assert!(v.satisfies(&q, &i));
    }

    #[test]
    fn totality_and_injectivity() {
        let q = example_query();
        let partial = Valuation::from_names([("x", "a")]);
        assert!(!partial.is_total_for(&q));
        let total = Valuation::from_names([("x", "a"), ("y", "b"), ("z", "c")]);
        assert!(total.is_total_for(&q));
        assert!(total.is_injective());
        let not_inj = Valuation::from_names([("x", "a"), ("y", "a"), ("z", "c")]);
        assert!(!not_inj.is_injective());
    }

    #[test]
    fn try_extend_detects_conflicts() {
        let mut v = Valuation::from_names([("x", "a")]);
        let compatible = Valuation::from_names([("y", "b")]);
        assert!(v.try_extend(&compatible));
        assert_eq!(v.len(), 2);
        let conflicting = Valuation::from_names([("x", "z")]);
        assert!(!v.try_extend(&conflicting));
        assert_eq!(v.get(Variable::new("x")), Some(Value::new("a")));
    }

    #[test]
    fn restrict_keeps_only_requested_vars() {
        let v = Valuation::from_names([("x", "a"), ("y", "b")]);
        let r = v.restrict(&[Variable::new("x")]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(Variable::new("x")), Some(Value::new("a")));
    }

    #[test]
    fn apply_atom_requires_bound_variables() {
        let v = Valuation::from_names([("x", "a")]);
        let atom = Atom::from_names("R", &["x", "y"]);
        assert_eq!(v.apply_atom(&atom), None);
    }

    #[test]
    fn with_and_unbind() {
        let v = Valuation::new().with(Variable::new("x"), Value::new("a"));
        assert!(v.binds(Variable::new("x")));
        let mut v2 = v.clone();
        v2.unbind(Variable::new("x"));
        assert!(v2.is_empty());
    }
}
