//! Substitutions, simplifications and foldings (Definition 2.1 of the paper).

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::{Atom, Variable};
use crate::query::ConjunctiveQuery;

/// A substitution: a mapping from variables to variables.
///
/// Variables without an explicit image are mapped to themselves, so every
/// substitution is total. Substitutions are generalized to atoms and
/// conjunctive queries in the natural way ([`Substitution::apply_atom`],
/// [`Substitution::apply_query`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Substitution {
    map: BTreeMap<Variable, Variable>,
}

impl Substitution {
    /// The identity substitution.
    pub fn identity() -> Substitution {
        Substitution::default()
    }

    /// Builds a substitution from `(from, to)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Substitution
    where
        I: IntoIterator<Item = (Variable, Variable)>,
    {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// Builds a substitution from `(from, to)` string pairs.
    pub fn from_names<'a, I>(pairs: I) -> Substitution
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        Substitution {
            map: pairs
                .into_iter()
                .map(|(a, b)| (Variable::new(a), Variable::new(b)))
                .collect(),
        }
    }

    /// Maps `var` to `to`, overwriting any previous image.
    pub fn bind(&mut self, var: Variable, to: Variable) {
        self.map.insert(var, to);
    }

    /// Removes the explicit mapping of `var` (it becomes identity again).
    pub fn unbind(&mut self, var: Variable) {
        self.map.remove(&var);
    }

    /// The image of `var` (identity if not explicitly mapped).
    pub fn apply_var(&self, var: Variable) -> Variable {
        self.map.get(&var).copied().unwrap_or(var)
    }

    /// Whether `var` has an explicit image.
    pub fn binds(&self, var: Variable) -> bool {
        self.map.contains_key(&var)
    }

    /// The explicit image of `var`, if any.
    pub fn get(&self, var: Variable) -> Option<Variable> {
        self.map.get(&var).copied()
    }

    /// Iterates over the explicit bindings.
    pub fn bindings(&self) -> impl Iterator<Item = (Variable, Variable)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no explicit bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the substitution is (extensionally) the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().all(|(k, v)| k == v)
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            relation: atom.relation,
            args: atom.args.iter().map(|&v| self.apply_var(v)).collect(),
        }
    }

    /// Applies the substitution to a set of atoms, removing duplicates.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        let mut out: Vec<Atom> = Vec::with_capacity(atoms.len());
        for atom in atoms {
            let img = self.apply_atom(atom);
            if !out.contains(&img) {
                out.push(img);
            }
        }
        out
    }

    /// Applies the substitution to a query, producing `θ(Q)`.
    ///
    /// The result is again a valid conjunctive query (head relation and
    /// safety are preserved by substitution).
    pub fn apply_query(&self, query: &ConjunctiveQuery) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            self.apply_atom(query.head()),
            self.apply_atoms(query.body()),
        )
        .expect("substitution images of valid queries are valid")
    }

    /// The composition `self ∘ other` (first `other`, then `self`), restricted
    /// to the union of both explicit domains.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut map = BTreeMap::new();
        for (var, mid) in other.bindings() {
            map.insert(var, self.apply_var(mid));
        }
        for (var, to) in self.bindings() {
            map.entry(var).or_insert(to);
        }
        Substitution { map }
    }

    /// Whether the substitution is a *simplification* of `query`
    /// (Definition 2.1): `θ(head_Q) = head_Q` and `θ(body_Q) ⊆ body_Q`.
    pub fn is_simplification_of(&self, query: &ConjunctiveQuery) -> bool {
        if &self.apply_atom(query.head()) != query.head() {
            return false;
        }
        let body = query.body();
        self.apply_atoms(body).iter().all(|a| body.contains(a))
    }

    /// Whether the substitution is a *folding* of `query`: a simplification
    /// that is idempotent on the query variables (`θ² = θ`).
    pub fn is_folding_of(&self, query: &ConjunctiveQuery) -> bool {
        self.is_simplification_of(query)
            && query
                .variables()
                .iter()
                .all(|&v| self.apply_var(self.apply_var(v)) == self.apply_var(v))
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (from, to)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{from} ↦ {to}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Variable, Variable)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (Variable, Variable)>>(iter: T) -> Self {
        Substitution::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn example_2_2_first_query_simplifications() {
        // T(x) :- R(x,x), R(x,y), R(x,z) with θ1 = {z ↦ y}, θ2 = {y ↦ x, z ↦ x}.
        let query = q("T(x) :- R(x, x), R(x, y), R(x, z).");
        let theta1 = Substitution::from_names([("x", "x"), ("y", "y"), ("z", "y")]);
        let theta2 = Substitution::from_names([("x", "x"), ("y", "x"), ("z", "x")]);
        assert!(theta1.is_simplification_of(&query));
        assert!(theta2.is_simplification_of(&query));
        assert!(theta1.is_folding_of(&query));
        assert!(theta2.is_folding_of(&query));
    }

    #[test]
    fn example_2_2_second_query_simplifications_and_foldings() {
        // T(x) :- R(x,y), R(y,y), R(z,z), R(u,u)
        // θ3 = {z ↦ y, u ↦ z} is a simplification but not a folding;
        // θ4 = {z ↦ y, u ↦ y} is a folding.
        let query = q("T(x) :- R(x, y), R(y, y), R(z, z), R(u, u).");
        let theta3 = Substitution::from_names([("x", "x"), ("y", "y"), ("z", "y"), ("u", "z")]);
        let theta4 = Substitution::from_names([("x", "x"), ("y", "y"), ("z", "y"), ("u", "y")]);
        assert!(theta3.is_simplification_of(&query));
        assert!(!theta3.is_folding_of(&query));
        assert!(theta4.is_simplification_of(&query));
        assert!(theta4.is_folding_of(&query));
    }

    #[test]
    fn example_2_2_third_query_has_only_identity_simplification() {
        // T(x) :- R(x,y), R(y,z): mapping y or z elsewhere breaks body containment.
        let query = q("T(x) :- R(x, y), R(y, z).");
        let candidates = [
            Substitution::from_names([("y", "x")]),
            Substitution::from_names([("z", "y")]),
            Substitution::from_names([("z", "x")]),
            Substitution::from_names([("y", "z")]),
        ];
        for c in candidates {
            assert!(!c.is_simplification_of(&query), "{c} should not simplify");
        }
        assert!(Substitution::identity().is_simplification_of(&query));
    }

    #[test]
    fn head_must_be_preserved() {
        let query = q("T(x) :- R(x, y).");
        let theta = Substitution::from_names([("x", "y")]);
        assert!(!theta.is_simplification_of(&query));
    }

    #[test]
    fn apply_query_deduplicates_collapsed_atoms() {
        let query = q("T(x) :- R(x, y), R(x, z).");
        let theta = Substitution::from_names([("z", "y")]);
        let image = theta.apply_query(&query);
        assert_eq!(image.body_size(), 1);
        assert_eq!(image.head(), query.head());
    }

    #[test]
    fn composition_applies_right_then_left() {
        let first = Substitution::from_names([("u", "z")]);
        let second = Substitution::from_names([("z", "y")]);
        let composed = second.compose(&first);
        assert_eq!(composed.apply_var(Variable::new("u")), Variable::new("y"));
        assert_eq!(composed.apply_var(Variable::new("z")), Variable::new("y"));
        assert_eq!(composed.apply_var(Variable::new("w")), Variable::new("w"));
    }

    #[test]
    fn identity_detection() {
        let mut s = Substitution::identity();
        assert!(s.is_identity());
        s.bind(Variable::new("x"), Variable::new("x"));
        assert!(s.is_identity());
        s.bind(Variable::new("x"), Variable::new("y"));
        assert!(!s.is_identity());
        s.unbind(Variable::new("x"));
        assert!(s.is_identity());
    }
}
