//! Conjunctive queries.

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::{Atom, Variable};
use crate::intern::Symbol;
use crate::parser;
use crate::schema::Schema;

/// Errors raised when constructing a [`ConjunctiveQuery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in any body atom (safety violation).
    UnsafeHeadVariable(Variable),
    /// The head relation also occurs in the body (the paper requires the
    /// output relation `T` to be outside the input schema).
    HeadRelationInBody(Symbol),
    /// The body uses the same relation name with two different arities.
    InconsistentArity(Symbol),
    /// The body is empty; the paper's queries have at least one body atom.
    EmptyBody,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVariable(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            QueryError::HeadRelationInBody(r) => {
                write!(f, "head relation {r} also occurs in the body")
            }
            QueryError::InconsistentArity(r) => {
                write!(f, "relation {r} is used with two different arities")
            }
            QueryError::EmptyBody => write!(f, "conjunctive query has an empty body"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query `T(x̄) ← R₁(ȳ₁), …, R_n(ȳ_n)`.
///
/// Invariants enforced by [`ConjunctiveQuery::new`]:
///
/// * safety: every head variable occurs in some body atom,
/// * the head relation does not occur in the body,
/// * every body relation is used with a single arity,
/// * the body is non-empty and duplicate atoms are removed (the body is a
///   *set* of atoms, as in the paper).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    head: Atom,
    body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a conjunctive query, enforcing the invariants above.
    pub fn new(head: Atom, body: Vec<Atom>) -> Result<ConjunctiveQuery, QueryError> {
        if body.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        // Deduplicate body atoms, preserving first-occurrence order.
        let mut dedup: Vec<Atom> = Vec::with_capacity(body.len());
        for atom in body {
            if !dedup.contains(&atom) {
                dedup.push(atom);
            }
        }
        // Arity consistency and head-relation check.
        let mut schema = Schema::new();
        for atom in &dedup {
            match schema.arity(atom.relation) {
                Some(a) if a != atom.arity() => {
                    return Err(QueryError::InconsistentArity(atom.relation))
                }
                Some(_) => {}
                None => schema.add(atom.relation, atom.arity()),
            }
            if atom.relation == head.relation {
                return Err(QueryError::HeadRelationInBody(head.relation));
            }
        }
        // Safety.
        let body_vars: BTreeSet<Variable> =
            dedup.iter().flat_map(|a| a.args.iter().copied()).collect();
        for &v in &head.args {
            if !body_vars.contains(&v) {
                return Err(QueryError::UnsafeHeadVariable(v));
            }
        }
        Ok(ConjunctiveQuery { head, body: dedup })
    }

    /// Parses a query from its textual form, e.g.
    /// `"T(x, z) :- R(x, y), R(y, z), R(x, x)."`.
    pub fn parse(text: &str) -> Result<ConjunctiveQuery, crate::ParseError> {
        parser::parse_query(text)
    }

    /// The head atom `head_Q`.
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The body atoms `body_Q` (as a duplicate-free list in source order).
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// The body atoms as an ordered set.
    pub fn body_set(&self) -> BTreeSet<Atom> {
        self.body.iter().cloned().collect()
    }

    /// All variables occurring in the query, in first-occurrence order
    /// (body first, then head — but safety makes head vars a subset of body vars).
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = Vec::new();
        for atom in self.body.iter().chain(std::iter::once(&self.head)) {
            for &v in &atom.args {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// The head variables, deduplicated, in order.
    pub fn head_variables(&self) -> Vec<Variable> {
        self.head.variables()
    }

    /// The set of variables that occur only in the body (existential variables).
    pub fn existential_variables(&self) -> Vec<Variable> {
        let head: BTreeSet<Variable> = self.head.args.iter().copied().collect();
        self.variables()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// The input schema induced by the body.
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for atom in &self.body {
            schema.add(atom.relation, atom.arity());
        }
        schema
    }

    /// The output schema (the head relation).
    pub fn output_schema(&self) -> Schema {
        let mut schema = Schema::new();
        schema.add(self.head.relation, self.head.arity());
        schema
    }

    /// A query is *full* if every body variable also occurs in the head.
    pub fn is_full(&self) -> bool {
        let head: BTreeSet<Variable> = self.head.args.iter().copied().collect();
        self.body
            .iter()
            .all(|a| a.args.iter().all(|v| head.contains(v)))
    }

    /// A query is *Boolean* if the head has no variables.
    pub fn is_boolean(&self) -> bool {
        self.head.args.is_empty()
    }

    /// A query is *without self-joins* when every body atom has a distinct
    /// relation name.
    pub fn has_self_joins(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.body.iter().any(|a| !seen.insert(a.relation))
    }

    /// The *self-join atoms*: atoms whose relation name occurs more than once
    /// in the body (see Section 4 of the paper, before Lemma 4.8).
    pub fn self_join_atoms(&self) -> Vec<&Atom> {
        self.body
            .iter()
            .filter(|a| {
                self.body
                    .iter()
                    .filter(|b| b.relation == a.relation)
                    .count()
                    > 1
            })
            .collect()
    }

    /// Number of body atoms.
    pub fn body_size(&self) -> usize {
        self.body.len()
    }

    /// Returns a new query with the given body (same head). Used by the
    /// minimization machinery; enforces the same invariants as `new`.
    pub fn with_body(&self, body: Vec<Atom>) -> Result<ConjunctiveQuery, QueryError> {
        ConjunctiveQuery::new(self.head.clone(), body)
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, atom) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn example_2_2_first_query_parses() {
        let query = q("T(x) :- R(x, x), R(x, y), R(x, z).");
        assert_eq!(query.body_size(), 3);
        assert_eq!(query.variables().len(), 3);
        assert!(!query.is_full());
        assert!(query.has_self_joins());
    }

    #[test]
    fn safety_is_enforced() {
        let head = Atom::from_names("T", &["x", "w"]);
        let body = vec![Atom::from_names("R", &["x", "y"])];
        let err = ConjunctiveQuery::new(head, body).unwrap_err();
        assert_eq!(err, QueryError::UnsafeHeadVariable(Variable::new("w")));
    }

    #[test]
    fn head_relation_cannot_occur_in_body() {
        let head = Atom::from_names("R", &["x"]);
        let body = vec![Atom::from_names("R", &["x", "y"])];
        let err = ConjunctiveQuery::new(head, body).unwrap_err();
        assert!(matches!(err, QueryError::HeadRelationInBody(_)));
    }

    #[test]
    fn inconsistent_arities_are_rejected() {
        let head = Atom::from_names("T", &["x"]);
        let body = vec![
            Atom::from_names("R", &["x", "y"]),
            Atom::from_names("R", &["x"]),
        ];
        let err = ConjunctiveQuery::new(head, body).unwrap_err();
        assert!(matches!(err, QueryError::InconsistentArity(_)));
    }

    #[test]
    fn empty_body_is_rejected() {
        let head = Atom::from_names("T", &[]);
        assert_eq!(
            ConjunctiveQuery::new(head, vec![]).unwrap_err(),
            QueryError::EmptyBody
        );
    }

    #[test]
    fn duplicate_body_atoms_are_removed() {
        let query = q("T(x) :- R(x, y), R(x, y).");
        assert_eq!(query.body_size(), 1);
    }

    #[test]
    fn fullness_and_booleanness() {
        let full = q("T(x1, x2, x3, x4) :- R(x1, x2), R(x2, x3), R(x3, x4).");
        assert!(full.is_full());
        assert!(!full.is_boolean());

        let boolean = q("T() :- R1(x1, x2), R2(x2, x3), R3(x3, x4).");
        assert!(boolean.is_boolean());
        assert!(!boolean.is_full());
        assert!(!boolean.has_self_joins());
    }

    #[test]
    fn self_join_atoms_are_detected() {
        let query = q("T() :- R(x1, x2), R(x2, x1), S(x1).");
        let sj = query.self_join_atoms();
        assert_eq!(sj.len(), 2);
        assert!(sj.iter().all(|a| a.relation == Symbol::new("R")));
    }

    #[test]
    fn existential_variables_are_the_non_head_ones() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        assert_eq!(query.existential_variables(), vec![Variable::new("y")]);
    }

    #[test]
    fn schema_extraction() {
        let query = q("T(x) :- R(x, y), S(y).");
        let schema = query.schema();
        assert_eq!(schema.arity(Symbol::new("R")), Some(2));
        assert_eq!(schema.arity(Symbol::new("S")), Some(1));
        assert!(!schema.contains(Symbol::new("T")));
        assert_eq!(query.output_schema().arity(Symbol::new("T")), Some(1));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let query = q("T(x, z) :- R(x, y), R(y, z), R(x, x).");
        let reparsed = ConjunctiveQuery::parse(&query.to_string()).unwrap();
        assert_eq!(query, reparsed);
    }
}
