//! Property-based tests for the conjunctive-query substrate.
//!
//! These properties are the semantic laws the rest of the workspace relies
//! on: genericity, monotonicity, soundness of containment/minimization, and
//! parser/printer round-tripping.

use std::collections::BTreeMap;

use cq::{
    contained_in, equivalent, evaluate, is_minimal, minimize, Atom, ConjunctiveQuery, Fact,
    Instance, Value, Variable,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- strategies

/// A strategy for small conjunctive queries over binary relations R0/R1.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    // each atom: (relation index, var index, var index) over a pool of 4 vars
    let atom = (0..2usize, 0..4usize, 0..4usize);
    (proptest::collection::vec(atom, 1..5), 0..3usize).prop_map(|(atoms, head_arity)| {
        let var = |i: usize| Variable::indexed("x", i);
        let body: Vec<Atom> = atoms
            .iter()
            .map(|&(r, a, b)| Atom::new(format!("R{r}").as_str(), vec![var(a), var(b)]))
            .collect();
        // head variables drawn from the body to keep the query safe
        let mut body_vars = Vec::new();
        for atom in &body {
            for &v in &atom.args {
                if !body_vars.contains(&v) {
                    body_vars.push(v);
                }
            }
        }
        let head_vars: Vec<Variable> = body_vars.into_iter().take(head_arity).collect();
        ConjunctiveQuery::new(Atom::new("T", head_vars), body).expect("generated query is safe")
    })
}

/// A strategy for small instances over the binary relations R0/R1 with values
/// drawn from a domain of size 5.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let fact = (0..2usize, 0..5usize, 0..5usize);
    proptest::collection::vec(fact, 0..25).prop_map(|facts| {
        Instance::from_facts(facts.into_iter().map(|(r, a, b)| {
            Fact::new(
                format!("R{r}").as_str(),
                vec![Value::indexed("d", a), Value::indexed("d", b)],
            )
        }))
    })
}

/// A random permutation of the value domain used by `instance_strategy`.
fn permutation_strategy() -> impl Strategy<Value = Vec<usize>> {
    Just((0..5usize).collect::<Vec<_>>()).prop_shuffle()
}

fn apply_permutation(instance: &Instance, perm: &[usize]) -> Instance {
    let map: BTreeMap<Value, Value> = (0..perm.len())
        .map(|i| (Value::indexed("d", i), Value::indexed("d", perm[i])))
        .collect();
    Instance::from_facts(instance.facts().map(|f| {
        Fact::new(
            f.relation,
            f.values.iter().map(|v| *map.get(v).unwrap_or(v)).collect(),
        )
    }))
}

// ----------------------------------------------------------------- properties

proptest! {
    // Bounded and explicitly seeded: 64 deterministic cases per property so
    // `cargo test -q` is reproducible and fast.
    #![proptest_config(ProptestConfig::with_cases(64).with_rng_seed(0xC0_5EED))]

    /// Printing a query and parsing it back yields the same query.
    #[test]
    fn parser_printer_roundtrip(q in query_strategy()) {
        let reparsed = ConjunctiveQuery::parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Evaluation is monotone: adding facts never removes answers.
    #[test]
    fn evaluation_is_monotone(q in query_strategy(), i in instance_strategy(), j in instance_strategy()) {
        let small = evaluate(&q, &i);
        let big = evaluate(&q, &i.union(&j));
        prop_assert!(big.contains_all(&small));
    }

    /// Genericity: evaluating on a renamed instance gives the renamed result
    /// (queries cannot look at the concrete data values).
    #[test]
    fn evaluation_is_generic(q in query_strategy(), i in instance_strategy(), perm in permutation_strategy()) {
        let renamed_input = apply_permutation(&i, &perm);
        let renamed_output = apply_permutation(&evaluate(&q, &i), &perm);
        prop_assert_eq!(evaluate(&q, &renamed_input), renamed_output);
    }

    /// Containment decided by the homomorphism test is sound on concrete
    /// instances: q1 ⊆ q2 implies q1(I) ⊆ q2(I).
    #[test]
    fn containment_is_sound(q1 in query_strategy(), q2 in query_strategy(), i in instance_strategy()) {
        if contained_in(&q1, &q2) {
            let r1 = evaluate(&q1, &i);
            let r2 = evaluate(&q2, &i);
            prop_assert!(r2.contains_all(&r1), "containment violated on {}", i);
        }
    }

    /// Minimization preserves semantics and produces a minimal query that is
    /// never larger than the input.
    #[test]
    fn minimization_preserves_semantics(q in query_strategy(), i in instance_strategy()) {
        let min = minimize(&q);
        prop_assert!(min.core.body_size() <= q.body_size());
        prop_assert!(is_minimal(&min.core));
        prop_assert!(equivalent(&q, &min.core));
        prop_assert_eq!(evaluate(&q, &i), evaluate(&min.core, &i));
        prop_assert!(min.simplification.is_simplification_of(&q));
    }

    /// The result of a query only contains facts over its output relation
    /// with the head arity, and every answer is derived by some satisfying
    /// valuation.
    #[test]
    fn answers_are_well_formed(q in query_strategy(), i in instance_strategy()) {
        let result = evaluate(&q, &i);
        for fact in result.facts() {
            prop_assert_eq!(fact.relation, q.head().relation);
            prop_assert_eq!(fact.arity(), q.head().arity());
        }
        let vals = cq::satisfying_valuations(&q, &i);
        for v in &vals {
            prop_assert!(result.contains(&v.derived_fact(&q)));
        }
        prop_assert_eq!(result.len() <= vals.len() || vals.is_empty(), true);
    }

    /// Index-backed evaluation is observationally identical to the scan
    /// evaluator: every strategy combination (indexed/scan × cost-aware/
    /// naive ordering × binary/multiway/auto join) enumerates exactly the
    /// same satisfying valuations on random queries and instances. The
    /// generated queries are a mix of cyclic and acyclic shapes, so the
    /// auto planner exercises both joins and the multiway matcher is pinned
    /// against the binary one on the same inputs.
    #[test]
    fn indexed_evaluation_equals_scan_evaluation(q in query_strategy(), i in instance_strategy()) {
        use cq::{EvalOptions, JoinOrdering, JoinStrategy, Valuation};
        let scan: std::collections::BTreeSet<_> = cq::satisfying_valuations_with(
            &q, &i, &Valuation::new(), EvalOptions::scan_naive(),
        ).into_iter().collect();
        for ordering in [JoinOrdering::Naive, JoinOrdering::CostAware] {
            for use_indexes in [false, true] {
                for join_strategy in [JoinStrategy::Binary, JoinStrategy::Multiway, JoinStrategy::Auto] {
                    let opts = EvalOptions {
                        ordering,
                        use_indexes,
                        join_strategy,
                        ..EvalOptions::default()
                    };
                    let got: std::collections::BTreeSet<_> = cq::satisfying_valuations_with(
                        &q, &i, &Valuation::new(), opts,
                    ).into_iter().collect();
                    prop_assert_eq!(&got, &scan, "{:?} disagrees with scan/naive on {}", opts, i);
                }
            }
        }
    }

    /// Adaptive mid-search reordering only permutes the backtracking search:
    /// the most aggressive re-ranking threshold (factor 1) enumerates
    /// exactly the valuations the static plan does.
    #[test]
    fn adaptive_reordering_equals_static_order(q in query_strategy(), i in instance_strategy()) {
        use cq::{EvalOptions, JoinStrategy, Valuation};
        for use_indexes in [false, true] {
            let static_opts = EvalOptions {
                use_indexes,
                join_strategy: JoinStrategy::Binary,
                adaptive_factor: 0,
                ..EvalOptions::default()
            };
            let adaptive_opts = EvalOptions { adaptive_factor: 1, ..static_opts };
            let static_vals: std::collections::BTreeSet<_> = cq::satisfying_valuations_with(
                &q, &i, &Valuation::new(), static_opts,
            ).into_iter().collect();
            let adaptive_vals: std::collections::BTreeSet<_> = cq::satisfying_valuations_with(
                &q, &i, &Valuation::new(), adaptive_opts,
            ).into_iter().collect();
            prop_assert_eq!(&adaptive_vals, &static_vals, "adaptive diverged on {}", i);
        }
    }

    /// The semi-naive differential law the incremental round engine is
    /// built on: evaluating `old ∪ delta` equals evaluating `old` plus one
    /// differential step joining the delta against the combined instance —
    /// under every evaluation-strategy combination.
    #[test]
    fn seminaive_step_equals_full_reevaluation(q in query_strategy(), old in instance_strategy(), delta in instance_strategy()) {
        use cq::{EvalOptions, JoinOrdering};
        let full = old.union(&delta);
        let reference = evaluate(&q, &full);
        for ordering in [JoinOrdering::Naive, JoinOrdering::CostAware] {
            for use_indexes in [false, true] {
                let opts = EvalOptions { ordering, use_indexes, ..EvalOptions::default() };
                let step = cq::evaluate_seminaive_step_with(&q, &full, &delta, opts);
                prop_assert_eq!(
                    evaluate(&q, &old).union(&step),
                    reference.clone(),
                    "options {:?}", opts
                );
                // soundness on its own: the step derives nothing beyond Q(full)
                prop_assert!(reference.contains_all(&step));
            }
        }
    }

    /// The secondary indexes stay consistent across mutation: evaluating,
    /// inserting more facts, and evaluating again gives the same result as
    /// evaluating a freshly built instance with the same fact set.
    #[test]
    fn index_maintenance_preserves_evaluation(q in query_strategy(), i in instance_strategy(), j in instance_strategy()) {
        let mut grown = i.clone();
        // evaluate first so grown's indexes are built, then mutate: the
        // inserts maintain the postings in place, and the second evaluation
        // must see exactly the candidates a fresh build would produce
        let _ = evaluate(&q, &grown);
        for f in j.facts() {
            grown.insert(f.clone());
        }
        let from_mutated = evaluate(&q, &grown);
        let from_fresh = evaluate(&q, &i.union(&j));
        prop_assert_eq!(from_mutated, from_fresh);
    }

    /// Instance set algebra behaves like set algebra.
    #[test]
    fn instance_algebra(i in instance_strategy(), j in instance_strategy()) {
        let union = i.union(&j);
        let inter = i.intersection(&j);
        let diff = i.difference(&j);
        prop_assert!(union.contains_all(&i) && union.contains_all(&j));
        prop_assert!(i.contains_all(&inter) && j.contains_all(&inter));
        prop_assert!(i.contains_all(&diff));
        prop_assert_eq!(diff.len() + inter.len(), i.len());
        prop_assert_eq!(union.len() + inter.len(), i.len() + j.len());
    }

    /// Canonical partition enumeration produces only valid restricted-growth
    /// strings and at least one injective and one constant assignment.
    #[test]
    fn partition_enumeration_is_canonical(n in 1usize..7) {
        let partitions = cq::partition_assignments(n);
        for p in &partitions {
            prop_assert_eq!(p[0], 0);
            let mut max = 0;
            for &class in p.iter().skip(1) {
                prop_assert!(class <= max + 1);
                max = max.max(class);
            }
        }
        let has_constant = partitions.iter().any(|p| p.iter().all(|&c| c == 0));
        let has_injective = partitions.iter().any(|p| {
            let set: std::collections::BTreeSet<_> = p.iter().collect();
            set.len() == p.len()
        });
        prop_assert!(has_constant);
        prop_assert!(has_injective);
    }
}
