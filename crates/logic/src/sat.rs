//! SAT solving: a brute-force reference solver and a DPLL solver.

use crate::prop::{Assignment, Clause, Cnf};

/// Brute-force satisfiability check (reference implementation; `O(2ⁿ)`).
pub fn brute_force_satisfiable(cnf: &Cnf) -> bool {
    assert!(
        cnf.num_vars <= 24,
        "brute-force SAT limited to 24 variables"
    );
    (0u64..(1 << cnf.num_vars)).any(|mask| cnf.eval(&Assignment::from_mask(cnf.num_vars, mask)))
}

/// Finds a satisfying assignment with DPLL, if one exists.
pub fn find_model(cnf: &Cnf) -> Option<Assignment> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars];
    if dpll(&cnf.clauses, &mut assignment) {
        Some(Assignment::from_values(
            assignment.into_iter().map(|v| v.unwrap_or(false)).collect(),
        ))
    } else {
        None
    }
}

/// DPLL satisfiability check with unit propagation and pure-literal elimination.
pub fn dpll_satisfiable(cnf: &Cnf) -> bool {
    find_model(cnf).is_some()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(usize, bool),
    Unresolved,
}

fn clause_state(clause: &Clause, assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for lit in &clause.literals {
        match assignment[lit.var] {
            Some(v) if v == lit.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some((lit.var, lit.positive));
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => {
            let (var, positive) = unassigned.expect("one unassigned literal");
            ClauseState::Unit(var, positive)
        }
        _ => ClauseState::Unresolved,
    }
}

fn dpll(clauses: &[Clause], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        let mut all_satisfied = true;
        for clause in clauses {
            match clause_state(clause, assignment) {
                ClauseState::Satisfied => {}
                ClauseState::Conflict => {
                    for &v in &trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                ClauseState::Unit(var, positive) => {
                    assignment[var] = Some(positive);
                    trail.push(var);
                    propagated = true;
                    all_satisfied = false;
                }
                ClauseState::Unresolved => all_satisfied = false,
            }
        }
        if all_satisfied {
            return true;
        }
        if !propagated {
            break;
        }
    }

    // Branch on the first unassigned variable occurring in an unresolved clause.
    let branch_var = clauses.iter().find_map(|c| {
        if clause_state(c, assignment) == ClauseState::Unresolved {
            c.literals.iter().find(|l| assignment[l.var].is_none())
        } else {
            None
        }
    });
    let var = match branch_var {
        Some(lit) => lit.var,
        None => {
            // No unresolved clause: everything satisfied.
            for &v in &trail {
                assignment[v] = None;
            }
            return true;
        }
    };
    for value in [true, false] {
        assignment[var] = Some(value);
        if dpll(clauses, assignment) {
            return true;
        }
        assignment[var] = None;
    }
    for &v in &trail {
        assignment[v] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Literal;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause::new(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    #[test]
    fn trivially_satisfiable() {
        let cnf = Cnf::new(1, vec![clause(&[(0, true)])]);
        assert!(dpll_satisfiable(&cnf));
        assert!(brute_force_satisfiable(&cnf));
    }

    #[test]
    fn simple_contradiction() {
        let cnf = Cnf::new(1, vec![clause(&[(0, true)]), clause(&[(0, false)])]);
        assert!(!dpll_satisfiable(&cnf));
        assert!(!brute_force_satisfiable(&cnf));
    }

    #[test]
    fn model_satisfies_the_formula() {
        let cnf = Cnf::new(
            4,
            vec![
                clause(&[(0, true), (1, false), (2, true)]),
                clause(&[(1, true), (2, false), (3, true)]),
                clause(&[(0, false), (3, false), (2, true)]),
            ],
        );
        let model = find_model(&cnf).expect("satisfiable");
        assert!(cnf.eval(&model));
    }

    #[test]
    fn unsatisfiable_all_sign_patterns() {
        // All 8 sign patterns over 3 variables: unsatisfiable.
        let mut clauses = Vec::new();
        for mask in 0..8u8 {
            clauses.push(Clause::new(
                (0..3)
                    .map(|i| Literal {
                        var: i,
                        positive: mask & (1 << i) != 0,
                    })
                    .collect(),
            ));
        }
        let cnf = Cnf::new(3, clauses);
        assert!(!dpll_satisfiable(&cnf));
        assert!(!brute_force_satisfiable(&cnf));
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_small_random_formulas() {
        // Deterministic pseudo-random formulas (no external RNG needed here).
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let num_vars = 4 + (next() % 3) as usize;
            let num_clauses = 3 + (next() % 10) as usize;
            let clauses: Vec<Clause> = (0..num_clauses)
                .map(|_| {
                    Clause::new(
                        (0..3)
                            .map(|_| Literal {
                                var: (next() % num_vars as u64) as usize,
                                positive: next() % 2 == 0,
                            })
                            .collect(),
                    )
                })
                .collect();
            let cnf = Cnf::new(num_vars, clauses);
            assert_eq!(dpll_satisfiable(&cnf), brute_force_satisfiable(&cnf));
        }
    }

    #[test]
    fn empty_formula_is_satisfiable_and_empty_clause_is_not() {
        let empty = Cnf::new(2, vec![]);
        assert!(dpll_satisfiable(&empty));
        let with_empty_clause = Cnf::new(2, vec![Clause::new(vec![])]);
        assert!(!dpll_satisfiable(&with_empty_clause));
    }
}
