//! Quantified Boolean formulas with Π₂ and Π₃ prefixes.

use crate::prop::{Assignment, Cnf, Dnf};
use crate::sat::dpll_satisfiable;

/// A Π₂-QBF formula `∀x ∃y ψ(x, y)` with `ψ` in CNF.
///
/// Variable blocks are given as lists of variable indices into the matrix;
/// the blocks must be disjoint and cover all matrix variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pi2Qbf {
    /// The universally quantified block `x`.
    pub x_vars: Vec<usize>,
    /// The existentially quantified block `y`.
    pub y_vars: Vec<usize>,
    /// The quantifier-free matrix `ψ`.
    pub matrix: Cnf,
}

impl Pi2Qbf {
    /// Builds a Π₂-QBF formula; panics if the blocks overlap or do not cover
    /// the matrix variables.
    pub fn new(x_vars: Vec<usize>, y_vars: Vec<usize>, matrix: Cnf) -> Pi2Qbf {
        validate_blocks(&[&x_vars, &y_vars], matrix.num_vars);
        Pi2Qbf {
            x_vars,
            y_vars,
            matrix,
        }
    }

    /// Decides the formula: for every assignment to `x` there is an
    /// assignment to `y` making the matrix true.
    ///
    /// The universal block is enumerated exhaustively; the existential step
    /// is solved with DPLL on the conditioned matrix.
    pub fn is_true(&self) -> bool {
        assert!(
            self.x_vars.len() <= 20,
            "universal block limited to 20 variables"
        );
        let base = Assignment::all_false(self.matrix.num_vars);
        for mask in 0u64..(1 << self.x_vars.len()) {
            let beta_x = Assignment::from_mask(self.x_vars.len(), mask);
            let partial = base.overridden_by(&self.x_vars, &beta_x);
            if !self.exists_y(&partial) {
                return false;
            }
        }
        true
    }

    /// Whether there is a `y`-assignment satisfying the matrix given the
    /// (total) assignment `partial` for the other variables.
    pub fn exists_y(&self, partial: &Assignment) -> bool {
        // Condition the CNF on the x-assignment by substituting truth values:
        // clauses with a true x-literal are dropped, false x-literals removed.
        let y_set: std::collections::BTreeSet<usize> = self.y_vars.iter().copied().collect();
        let mut clauses = Vec::new();
        for clause in &self.matrix.clauses {
            let mut reduced = Vec::new();
            let mut satisfied = false;
            for &lit in &clause.literals {
                if y_set.contains(&lit.var) {
                    reduced.push(lit);
                } else if lit.eval(partial) {
                    satisfied = true;
                    break;
                }
            }
            if !satisfied {
                clauses.push(crate::prop::Clause::new(reduced));
            }
        }
        let conditioned = Cnf::new(self.matrix.num_vars, clauses);
        dpll_satisfiable(&conditioned)
    }

    /// Brute-force reference decision (both blocks enumerated exhaustively).
    pub fn is_true_naive(&self) -> bool {
        let base = Assignment::all_false(self.matrix.num_vars);
        (0u64..(1 << self.x_vars.len())).all(|xm| {
            let bx = Assignment::from_mask(self.x_vars.len(), xm);
            let with_x = base.overridden_by(&self.x_vars, &bx);
            (0u64..(1 << self.y_vars.len())).any(|ym| {
                let by = Assignment::from_mask(self.y_vars.len(), ym);
                let full = with_x.overridden_by(&self.y_vars, &by);
                self.matrix.eval(&full)
            })
        })
    }
}

/// A Π₃-QBF formula `∀x ∃y ∀z ψ(x, y, z)` with `ψ` in DNF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pi3Qbf {
    /// The outer universally quantified block `x`.
    pub x_vars: Vec<usize>,
    /// The existentially quantified block `y`.
    pub y_vars: Vec<usize>,
    /// The inner universally quantified block `z`.
    pub z_vars: Vec<usize>,
    /// The quantifier-free matrix `ψ`.
    pub matrix: Dnf,
}

impl Pi3Qbf {
    /// Builds a Π₃-QBF formula; panics if the blocks overlap or do not cover
    /// the matrix variables.
    pub fn new(x_vars: Vec<usize>, y_vars: Vec<usize>, z_vars: Vec<usize>, matrix: Dnf) -> Pi3Qbf {
        validate_blocks(&[&x_vars, &y_vars, &z_vars], matrix.num_vars);
        Pi3Qbf {
            x_vars,
            y_vars,
            z_vars,
            matrix,
        }
    }

    /// Decides the formula: for every `x` there is a `y` such that for every
    /// `z` the matrix is true. All blocks are enumerated exhaustively.
    pub fn is_true(&self) -> bool {
        let total = self.x_vars.len() + self.y_vars.len() + self.z_vars.len();
        assert!(total <= 30, "QBF solver limited to 30 variables in total");
        let base = Assignment::all_false(self.matrix.num_vars);
        (0u64..(1 << self.x_vars.len())).all(|xm| {
            let bx = Assignment::from_mask(self.x_vars.len(), xm);
            let with_x = base.overridden_by(&self.x_vars, &bx);
            (0u64..(1 << self.y_vars.len())).any(|ym| {
                let by = Assignment::from_mask(self.y_vars.len(), ym);
                let with_y = with_x.overridden_by(&self.y_vars, &by);
                (0u64..(1 << self.z_vars.len())).all(|zm| {
                    let bz = Assignment::from_mask(self.z_vars.len(), zm);
                    let full = with_y.overridden_by(&self.z_vars, &bz);
                    self.matrix.eval(&full)
                })
            })
        })
    }
}

fn validate_blocks(blocks: &[&Vec<usize>], num_vars: usize) {
    let mut seen = vec![false; num_vars];
    for block in blocks {
        for &v in *block {
            assert!(v < num_vars, "block variable {v} out of range");
            assert!(!seen[v], "variable {v} occurs in two quantifier blocks");
            seen[v] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "quantifier blocks do not cover all matrix variables"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{Clause, Literal};

    #[test]
    fn pi2_tautology_is_true() {
        // ∀x0 ∃y(=x1): (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1) — pick y = ¬x.
        let matrix = Cnf::new(
            2,
            vec![
                Clause::new(vec![Literal::pos(0), Literal::pos(1)]),
                Clause::new(vec![Literal::neg(0), Literal::neg(1)]),
            ],
        );
        let qbf = Pi2Qbf::new(vec![0], vec![1], matrix);
        assert!(qbf.is_true());
        assert!(qbf.is_true_naive());
    }

    #[test]
    fn pi2_false_formula() {
        // ∀x0 ∃x1: x0  — false for x0 = false, no y can help.
        let matrix = Cnf::new(2, vec![Clause::new(vec![Literal::pos(0)])]);
        let qbf = Pi2Qbf::new(vec![0], vec![1], matrix);
        assert!(!qbf.is_true());
        assert!(!qbf.is_true_naive());
    }

    #[test]
    fn pi2_dpll_and_naive_agree_on_pseudorandom_formulas() {
        let mut seed: u64 = 0xDEADBEEFCAFE1234;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let nx = 2 + (next() % 2) as usize;
            let ny = 2 + (next() % 2) as usize;
            let n = nx + ny;
            let clauses: Vec<Clause> = (0..(3 + next() % 6))
                .map(|_| {
                    Clause::new(
                        (0..3)
                            .map(|_| Literal {
                                var: (next() % n as u64) as usize,
                                positive: next() % 2 == 0,
                            })
                            .collect(),
                    )
                })
                .collect();
            let matrix = Cnf::new(n, clauses);
            let qbf = Pi2Qbf::new((0..nx).collect(), (nx..n).collect(), matrix);
            assert_eq!(qbf.is_true(), qbf.is_true_naive());
        }
    }

    #[test]
    fn pi3_simple_true_formula() {
        // ∀x0 ∃y(x1) ∀z(x2): (x0 ∧ x1 ∧ x2) ∨ (x1 ∧ x2 ∧ x0) ... make it
        // independent of z: (x1 ∧ x1 ∧ x1) ∨ (¬x1 ∧ ¬x1 ∧ ¬x1) is always
        // satisfiable by choosing y freely — but must hold for all z, and z
        // doesn't occur, so the formula is true.
        let matrix = Dnf::new(
            3,
            vec![
                Clause::new(vec![Literal::pos(1), Literal::pos(1), Literal::pos(1)]),
                Clause::new(vec![Literal::neg(1), Literal::neg(1), Literal::neg(1)]),
            ],
        );
        let qbf = Pi3Qbf::new(vec![0], vec![1], vec![2], matrix);
        assert!(qbf.is_true());
    }

    #[test]
    fn pi3_false_because_of_inner_universal() {
        // ∀x0 ∃x1 ∀x2: (x2 ∧ x2 ∧ x2) — false whenever z = false.
        let matrix = Dnf::new(
            3,
            vec![Clause::new(vec![
                Literal::pos(2),
                Literal::pos(2),
                Literal::pos(2),
            ])],
        );
        let qbf = Pi3Qbf::new(vec![0], vec![1], vec![2], matrix);
        assert!(!qbf.is_true());
    }

    #[test]
    fn pi3_example_from_the_paper_appendix() {
        // Example C.7: ∀x1 ∃y1 ∃y2 ∀z1 ((x1 ∧ y1 ∧ z1) ∨ (¬x1 ∧ y2 ∧ z1)).
        // The paper notes this formula is FALSE (no assignment works for z1=0).
        // Variables: x1=0, y1=1, y2=2, z1=3.
        let matrix = Dnf::new(
            4,
            vec![
                Clause::new(vec![Literal::pos(0), Literal::pos(1), Literal::pos(3)]),
                Clause::new(vec![Literal::neg(0), Literal::pos(2), Literal::pos(3)]),
            ],
        );
        let qbf = Pi3Qbf::new(vec![0], vec![1, 2], vec![3], matrix);
        assert!(!qbf.is_true());
    }

    #[test]
    #[should_panic(expected = "two quantifier blocks")]
    fn overlapping_blocks_are_rejected() {
        let matrix = Cnf::new(2, vec![]);
        let _ = Pi2Qbf::new(vec![0, 1], vec![1], matrix);
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn uncovered_variables_are_rejected() {
        let matrix = Cnf::new(3, vec![]);
        let _ = Pi2Qbf::new(vec![0], vec![1], matrix);
    }
}
