//! Propositional formulas in CNF and DNF.

use std::fmt;

/// A propositional literal: a variable index with a sign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Literal {
    /// The variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal of `var`.
    pub fn pos(var: usize) -> Literal {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal of `var`.
    pub fn neg(var: usize) -> Literal {
        Literal {
            var,
            positive: false,
        }
    }

    /// The opposite literal.
    pub fn negated(self) -> Literal {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under a total assignment.
    pub fn eval(self, assignment: &Assignment) -> bool {
        assignment.get(self.var) == self.positive
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause: a list of literals.
///
/// In a [`Cnf`] a clause is a disjunction; in a [`Dnf`] the same type is used
/// for conjunctive terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Builds a clause from literals.
    pub fn new(literals: Vec<Literal>) -> Clause {
        Clause { literals }
    }

    /// Evaluates the clause as a disjunction.
    pub fn eval_or(&self, assignment: &Assignment) -> bool {
        self.literals.iter().any(|l| l.eval(assignment))
    }

    /// Evaluates the clause as a conjunction.
    pub fn eval_and(&self, assignment: &Assignment) -> bool {
        self.literals.iter().all(|l| l.eval(assignment))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A total truth assignment over variables `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// The all-false assignment over `n` variables.
    pub fn all_false(n: usize) -> Assignment {
        Assignment {
            values: vec![false; n],
        }
    }

    /// Builds an assignment from a vector of truth values.
    pub fn from_values(values: Vec<bool>) -> Assignment {
        Assignment { values }
    }

    /// Builds the assignment over `n` variables whose truth values are the
    /// bits of `mask` (variable `i` is true iff bit `i` of `mask` is set).
    pub fn from_mask(n: usize, mask: u64) -> Assignment {
        Assignment {
            values: (0..n).map(|i| mask & (1 << i) != 0).collect(),
        }
    }

    /// The truth value of variable `var` (false if out of range).
    pub fn get(&self, var: usize) -> bool {
        self.values.get(var).copied().unwrap_or(false)
    }

    /// Sets the truth value of variable `var`, growing the assignment if needed.
    pub fn set(&mut self, var: usize, value: bool) {
        if var >= self.values.len() {
            self.values.resize(var + 1, false);
        }
        self.values[var] = value;
    }

    /// The number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges two assignments over disjoint variable blocks: the result has
    /// the truth value of `other` wherever `vars` lists a variable.
    pub fn overridden_by(&self, vars: &[usize], other: &Assignment) -> Assignment {
        let mut out = self.clone();
        for (&v, i) in vars.iter().zip(0..) {
            out.set(v, other.get(i));
        }
        out
    }

    /// The truth values as a slice.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

/// A CNF formula: a conjunction of disjunctive clauses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cnf {
    /// Number of propositional variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Builds a CNF formula.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Cnf {
        Cnf { num_vars, clauses }
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.clauses.iter().all(|c| c.eval_or(assignment))
    }

    /// Whether every clause has exactly three literals.
    pub fn is_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.literals.len() == 3)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A DNF formula: a disjunction of conjunctive terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dnf {
    /// Number of propositional variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The conjunctive terms.
    pub terms: Vec<Clause>,
}

impl Dnf {
    /// Builds a DNF formula.
    pub fn new(num_vars: usize, terms: Vec<Clause>) -> Dnf {
        Dnf { num_vars, terms }
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.terms.iter().any(|t| t.eval_and(assignment))
    }

    /// Whether every term has exactly three literals.
    pub fn is_3dnf(&self) -> bool {
        self.terms.iter().all(|t| t.literals.len() == 3)
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_evaluation() {
        let a = Assignment::from_values(vec![true, false]);
        assert!(Literal::pos(0).eval(&a));
        assert!(!Literal::neg(0).eval(&a));
        assert!(!Literal::pos(1).eval(&a));
        assert!(Literal::neg(1).eval(&a));
        assert_eq!(Literal::pos(3).negated(), Literal::neg(3));
    }

    #[test]
    fn assignment_from_mask_matches_bits() {
        let a = Assignment::from_mask(4, 0b1010);
        assert_eq!(a.values(), &[false, true, false, true]);
    }

    #[test]
    fn cnf_evaluation() {
        // (x0 ∨ ¬x1) ∧ (x1 ∨ x2)
        let cnf = Cnf::new(
            3,
            vec![
                Clause::new(vec![Literal::pos(0), Literal::neg(1)]),
                Clause::new(vec![Literal::pos(1), Literal::pos(2)]),
            ],
        );
        assert!(cnf.eval(&Assignment::from_values(vec![true, true, false])));
        assert!(!cnf.eval(&Assignment::from_values(vec![false, true, false])));
        assert!(!cnf.is_3cnf());
    }

    #[test]
    fn dnf_evaluation() {
        // (x0 ∧ x1) ∨ (¬x0 ∧ x2)
        let dnf = Dnf::new(
            3,
            vec![
                Clause::new(vec![Literal::pos(0), Literal::pos(1)]),
                Clause::new(vec![Literal::neg(0), Literal::pos(2)]),
            ],
        );
        assert!(dnf.eval(&Assignment::from_values(vec![true, true, false])));
        assert!(dnf.eval(&Assignment::from_values(vec![false, false, true])));
        assert!(!dnf.eval(&Assignment::from_values(vec![true, false, false])));
    }

    #[test]
    fn overridden_by_merges_blocks() {
        // variables 0,1 are the x-block; 2,3 are the y-block
        let base = Assignment::from_values(vec![true, false, false, false]);
        let y = Assignment::from_values(vec![true, true]);
        let merged = base.overridden_by(&[2, 3], &y);
        assert_eq!(merged.values(), &[true, false, true, true]);
    }

    #[test]
    fn set_grows_the_assignment() {
        let mut a = Assignment::all_false(1);
        a.set(3, true);
        assert_eq!(a.len(), 4);
        assert!(a.get(3));
        assert!(!a.get(2));
    }
}
