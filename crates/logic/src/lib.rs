//! # logic — propositional logic, SAT and QBF oracles
//!
//! This crate is the ground-truth substrate for the hardness reductions of
//! *"Parallel-Correctness and Transferability for Conjunctive Queries"*
//! (PODS 2015). The paper's lower bounds reduce from:
//!
//! * **Π₂-QBF** — formulas `∀x ∃y ψ(x, y)` with `ψ` in 3-CNF
//!   (ΠP2-hardness of parallel-correctness, Theorem 3.8),
//! * **Π₃-QBF** — formulas `∀x ∃y ∀z ψ(x, y, z)` with `ψ` in 3-DNF
//!   (ΠP3-hardness of transferability, Theorem 4.3),
//! * **3-SAT** — coNP-hardness of strong minimality (Lemma 4.10).
//!
//! The solvers here are exact (exhaustive over quantifier blocks, with a
//! DPLL-based existential step) and are used to cross-validate the
//! conjunctive-query-side decision procedures of the `pc-core` crate on the
//! instances produced by the `reductions` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod prop;
mod qbf;
mod sat;

pub use gen::{random_3cnf, random_3dnf, random_pi2_qbf, random_pi3_qbf};
pub use prop::{Assignment, Clause, Cnf, Dnf, Literal};
pub use qbf::{Pi2Qbf, Pi3Qbf};
pub use sat::{brute_force_satisfiable, dpll_satisfiable, find_model};
