//! Random formula generators used by tests and benchmarks.

use rand::Rng;

use crate::prop::{Clause, Cnf, Dnf, Literal};
use crate::qbf::{Pi2Qbf, Pi3Qbf};

fn random_3clause<R: Rng>(rng: &mut R, num_vars: usize) -> Clause {
    Clause::new(
        (0..3)
            .map(|_| Literal {
                var: rng.gen_range(0..num_vars),
                positive: rng.gen_bool(0.5),
            })
            .collect(),
    )
}

/// A random 3-CNF formula with `num_vars` variables and `num_clauses` clauses.
pub fn random_3cnf<R: Rng>(rng: &mut R, num_vars: usize, num_clauses: usize) -> Cnf {
    assert!(num_vars > 0);
    Cnf::new(
        num_vars,
        (0..num_clauses)
            .map(|_| random_3clause(rng, num_vars))
            .collect(),
    )
}

/// A random 3-DNF formula with `num_vars` variables and `num_terms` terms.
pub fn random_3dnf<R: Rng>(rng: &mut R, num_vars: usize, num_terms: usize) -> Dnf {
    assert!(num_vars > 0);
    Dnf::new(
        num_vars,
        (0..num_terms)
            .map(|_| random_3clause(rng, num_vars))
            .collect(),
    )
}

/// A random Π₂-QBF formula `∀x ∃y ψ` with `ψ` a random 3-CNF.
pub fn random_pi2_qbf<R: Rng>(
    rng: &mut R,
    num_x: usize,
    num_y: usize,
    num_clauses: usize,
) -> Pi2Qbf {
    let n = num_x + num_y;
    Pi2Qbf::new(
        (0..num_x).collect(),
        (num_x..n).collect(),
        random_3cnf(rng, n, num_clauses),
    )
}

/// A random Π₃-QBF formula `∀x ∃y ∀z ψ` with `ψ` a random 3-DNF.
pub fn random_pi3_qbf<R: Rng>(
    rng: &mut R,
    num_x: usize,
    num_y: usize,
    num_z: usize,
    num_terms: usize,
) -> Pi3Qbf {
    let n = num_x + num_y + num_z;
    Pi3Qbf::new(
        (0..num_x).collect(),
        (num_x..num_x + num_y).collect(),
        (num_x + num_y..n).collect(),
        random_3dnf(rng, n, num_terms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_3cnf_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let cnf = random_3cnf(&mut rng, 5, 12);
        assert_eq!(cnf.num_vars, 5);
        assert_eq!(cnf.clauses.len(), 12);
        assert!(cnf.is_3cnf());
        assert!(cnf
            .clauses
            .iter()
            .all(|c| c.literals.iter().all(|l| l.var < 5)));
    }

    #[test]
    fn generated_3dnf_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let dnf = random_3dnf(&mut rng, 6, 7);
        assert_eq!(dnf.terms.len(), 7);
        assert!(dnf.is_3dnf());
    }

    #[test]
    fn generated_qbfs_have_disjoint_covering_blocks() {
        let mut rng = StdRng::seed_from_u64(3);
        let q2 = random_pi2_qbf(&mut rng, 3, 4, 10);
        assert_eq!(q2.x_vars.len(), 3);
        assert_eq!(q2.y_vars.len(), 4);
        // constructor validates blocks; solving must not panic
        let _ = q2.is_true();

        let q3 = random_pi3_qbf(&mut rng, 2, 2, 2, 6);
        assert_eq!(q3.z_vars.len(), 2);
        let _ = q3.is_true();
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_3cnf(&mut StdRng::seed_from_u64(7), 4, 5);
        let b = random_3cnf(&mut StdRng::seed_from_u64(7), 4, 5);
        assert_eq!(a, b);
    }
}
