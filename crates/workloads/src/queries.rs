//! Named query families and random conjunctive queries.

use cq::{Atom, ConjunctiveQuery, Variable};
use rand::Rng;

/// The chain (path) query of length `len` over a binary relation `R`:
/// `T(x0, x_len) :- R(x0, x1), R(x1, x2), …`.
pub fn chain_query(len: usize) -> ConjunctiveQuery {
    assert!(len >= 1);
    let var = |i: usize| Variable::indexed("x", i);
    let body = (0..len)
        .map(|i| Atom::new("R", vec![var(i), var(i + 1)]))
        .collect();
    ConjunctiveQuery::new(Atom::new("T", vec![var(0), var(len)]), body)
        .expect("chain queries are well-formed")
}

/// The star query with `rays` rays: `T(c) :- R(c, x1), …, R(c, x_rays)`.
pub fn star_query(rays: usize) -> ConjunctiveQuery {
    assert!(rays >= 1);
    let c = Variable::new("c");
    let body = (0..rays)
        .map(|i| Atom::new("R", vec![c, Variable::indexed("x", i)]))
        .collect();
    ConjunctiveQuery::new(Atom::new("T", vec![c]), body).expect("star queries are well-formed")
}

/// The directed cycle query of length `len`, returning all cycle vertices:
/// `T(x0, …, x_{len-1}) :- R(x0, x1), …, R(x_{len-1}, x0)`.
pub fn cycle_query(len: usize) -> ConjunctiveQuery {
    assert!(len >= 2);
    let var = |i: usize| Variable::indexed("x", i % len);
    let body = (0..len)
        .map(|i| Atom::new("R", vec![var(i), var(i + 1)]))
        .collect();
    let head_vars = (0..len).map(var).collect();
    ConjunctiveQuery::new(Atom::new("T", head_vars), body).expect("cycle queries are well-formed")
}

/// The triangle query over a binary relation `E`:
/// `T(x, y, z) :- E(x, y), E(y, z), E(z, x)`.
pub fn triangle_query() -> ConjunctiveQuery {
    cycle_query(3)
        .with_body(vec![
            Atom::from_names("E", &["x0", "x1"]),
            Atom::from_names("E", &["x1", "x2"]),
            Atom::from_names("E", &["x2", "x0"]),
        ])
        .expect("triangle query is well-formed")
}

/// The chordal 4-cycle query over `E`: the directed 4-cycle plus the chord
/// `E(x0, x2)`. Cyclic even after the chord (two triangles sharing an edge),
/// so the auto planner routes it to the multiway join.
pub fn chordal4_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(
        "T(x0, x1, x2, x3) :- E(x0, x1), E(x1, x2), E(x2, x3), E(x3, x0), E(x0, x2).",
    )
    .expect("chordal-4 query is well-formed")
}

/// The directed 4-clique query over `E`: one atom per ordered pair `i < j`.
pub fn clique4_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(
        "T(x0, x1, x2, x3) :- E(x0, x1), E(x0, x2), E(x0, x3), E(x1, x2), E(x1, x3), E(x2, x3).",
    )
    .expect("clique-4 query is well-formed")
}

/// The query of Example 3.5 of the paper:
/// `T(x, z) :- R(x, y), R(y, z), R(x, x)`.
pub fn example_3_5_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(x, x).")
        .expect("the Example 3.5 query is well-formed")
}

/// Resolves a named workload query spec: `triangle`, `example3.5`,
/// `chain:<len>`, `star:<rays>`, `cycle:<len>`.
///
/// Returns `Err` with a description of the accepted specs when `spec` names
/// no family (callers typically fall back to parsing `spec` as a literal
/// query or a file path).
pub fn named_query(spec: &str) -> Result<ConjunctiveQuery, String> {
    let (name, param) = match spec.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (spec, None),
    };
    let parse_param = |what: &str| -> Result<usize, String> {
        let raw = param.ok_or(format!(
            "query spec '{name}' needs a parameter: {name}:<{what}>"
        ))?;
        raw.parse::<usize>()
            .map_err(|_| format!("query spec '{spec}': '{raw}' is not a number"))
    };
    match name {
        "triangle" => Ok(triangle_query()),
        "chordal4" => Ok(chordal4_query()),
        "clique4" => Ok(clique4_query()),
        "example3.5" | "example35" => Ok(example_3_5_query()),
        "chain" => {
            let len = parse_param("len")?;
            if len == 0 {
                return Err("chain length must be at least 1".to_string());
            }
            Ok(chain_query(len))
        }
        "star" => {
            let rays = parse_param("rays")?;
            if rays == 0 {
                return Err("star ray count must be at least 1".to_string());
            }
            Ok(star_query(rays))
        }
        "cycle" => {
            let len = parse_param("len")?;
            if len < 2 {
                return Err("cycle length must be at least 2".to_string());
            }
            Ok(cycle_query(len))
        }
        other => Err(format!(
            "unknown query family '{other}' (expected triangle, chordal4, clique4, example3.5, chain:<len>, star:<rays> or cycle:<len>)"
        )),
    }
}

/// The names [`named_query_sequence`] resolves, for enumeration by the CLI
/// and the differential suites.
pub fn query_sequence_names() -> [&'static str; 3] {
    ["relax", "projections", "selfloop"]
}

/// Resolves a named **multi-query workload**: a sequence of conjunctive
/// queries run back to back over one instance by the multi-query engine
/// (`MultiRoundEngine::evaluate_queries`), which checks at each boundary
/// whether parallel correctness transfers (paper §4) and elides the
/// reshuffle where it does.
///
/// Every family deliberately mixes both kinds of boundary:
///
/// * `relax` — loop query, then its relaxation, then the loop again:
///   dropping the `R(y, y)` constraint transfers (elide), re-adding it
///   does not (re-shard).
/// * `projections` — a two-hop join, a projection of it (transfers), then
///   a three-hop extension over a fresh relation (does not).
/// * `selfloop` — the identity copy of `R`, then its self-loop restriction
///   (transfers).
pub fn named_query_sequence(spec: &str) -> Result<Vec<ConjunctiveQuery>, String> {
    let parse = |texts: &[&str]| -> Vec<ConjunctiveQuery> {
        texts
            .iter()
            .map(|t| ConjunctiveQuery::parse(t).expect("workload sequences are well-formed"))
            .collect()
    };
    match spec {
        "relax" => Ok(parse(&[
            "T(x, z) :- R(x, y), R(y, z), R(y, y).",
            "T(x, z) :- R(x, y), R(y, z).",
            "T(x, z) :- R(x, y), R(y, z), R(y, y).",
        ])),
        "projections" => Ok(parse(&[
            "T(x, y, z) :- R(x, y), S(y, z).",
            "U(x, y) :- R(x, y).",
            "U(x, y, z, w) :- R(x, y), S(y, z), V(z, w).",
        ])),
        "selfloop" => Ok(parse(&["T(x, y) :- R(x, y).", "U(x) :- R(x, x)."])),
        other => Err(format!(
            "unknown query sequence '{other}' (expected relax, projections or selfloop)"
        )),
    }
}

/// Shape parameters for random conjunctive queries.
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Number of distinct relation names to draw from.
    pub relations: usize,
    /// Arity of every relation.
    pub arity: usize,
    /// Number of body atoms.
    pub atoms: usize,
    /// Number of variables to draw from.
    pub variables: usize,
    /// Number of head variables (clamped to the variables actually used).
    pub head_variables: usize,
    /// Whether several atoms may share a relation name (self-joins).
    pub allow_self_joins: bool,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            relations: 2,
            arity: 2,
            atoms: 3,
            variables: 4,
            head_variables: 2,
            allow_self_joins: true,
        }
    }
}

/// Generates a random conjunctive query with the given shape.
///
/// The generated query is always safe (head variables are drawn from the
/// variables occurring in the body).
pub fn random_query<R: Rng>(rng: &mut R, params: QueryParams) -> ConjunctiveQuery {
    assert!(params.atoms >= 1 && params.variables >= 1 && params.relations >= 1);
    let relation = |i: usize| format!("R{i}");
    let var = |i: usize| Variable::indexed("x", i);

    let mut body: Vec<Atom> = Vec::with_capacity(params.atoms);
    for a in 0..params.atoms {
        let rel_index = if params.allow_self_joins {
            rng.gen_range(0..params.relations)
        } else {
            a % params.relations.max(params.atoms)
        };
        let args = (0..params.arity)
            .map(|_| var(rng.gen_range(0..params.variables)))
            .collect();
        body.push(Atom::new(relation(rel_index).as_str(), args));
    }
    // ensure relation names are unique when self-joins are disallowed
    if !params.allow_self_joins {
        for (i, atom) in body.iter_mut().enumerate() {
            atom.relation = cq::Symbol::new(&relation(i));
        }
    }

    // head variables drawn from the body variables (safety)
    let mut body_vars: Vec<Variable> = Vec::new();
    for atom in &body {
        for &v in &atom.args {
            if !body_vars.contains(&v) {
                body_vars.push(v);
            }
        }
    }
    let head_count = params.head_variables.min(body_vars.len());
    let mut head_vars = Vec::with_capacity(head_count);
    while head_vars.len() < head_count {
        let v = body_vars[rng.gen_range(0..body_vars.len())];
        if !head_vars.contains(&v) {
            head_vars.push(v);
        }
    }
    ConjunctiveQuery::new(Atom::new("T", head_vars), body).expect("generated query is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn named_query_specs_resolve() {
        assert_eq!(named_query("triangle").unwrap(), triangle_query());
        assert_eq!(named_query("example3.5").unwrap(), example_3_5_query());
        assert_eq!(named_query("chain:4").unwrap(), chain_query(4));
        assert_eq!(named_query("star:5").unwrap(), star_query(5));
        assert_eq!(named_query("cycle:3").unwrap(), cycle_query(3));
        assert_eq!(named_query("chordal4").unwrap(), chordal4_query());
        assert_eq!(named_query("clique4").unwrap(), clique4_query());
        for bad in ["chain", "chain:0", "chain:x", "cycle:1", "nope", "star:0"] {
            assert!(named_query(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn named_query_sequences_resolve_and_share_a_schema() {
        for name in query_sequence_names() {
            let queries = named_query_sequence(name).unwrap();
            assert!(queries.len() >= 2, "{name} must be a real sequence");
            // every query's body must be readable from the first query's
            // input relations or fresh relations — the multi-query engine
            // runs them over one shared instance
            for q in &queries {
                assert!(q.body_size() >= 1);
            }
        }
        assert!(named_query_sequence("nope").is_err());
    }

    #[test]
    fn query_sequences_mix_transfer_verdicts() {
        // The multi-query workloads exist to exercise both elision
        // (transfer holds) and re-sharding (it fails); pin each family's
        // boundary verdicts so a workload edit cannot silently turn the
        // mixed families into all-elide or all-reshard ones.
        let expected: [(&str, &[bool]); 3] = [
            ("relax", &[true, false]),
            ("projections", &[true, false]),
            ("selfloop", &[true]),
        ];
        let mut cache = pc_core::TransferCache::new();
        for (name, verdicts) in expected {
            let queries = named_query_sequence(name).unwrap();
            assert_eq!(queries.len(), verdicts.len() + 1, "{name}");
            for (i, &verdict) in verdicts.iter().enumerate() {
                assert_eq!(
                    cache.transfers(&queries[i], &queries[i + 1]),
                    verdict,
                    "{name}: boundary {i}"
                );
            }
        }
    }

    #[test]
    fn chain_queries_have_expected_shape() {
        let q = chain_query(4);
        assert_eq!(q.body_size(), 4);
        assert_eq!(q.head().arity(), 2);
        assert!(q.has_self_joins());
        assert!(cq::is_acyclic(&q));
    }

    #[test]
    fn star_queries_are_full_of_redundancy_but_valid() {
        let q = star_query(3);
        assert_eq!(q.body_size(), 3);
        assert!(!cq::is_minimal(&q));
    }

    #[test]
    fn cycle_and_triangle_queries() {
        let c = cycle_query(4);
        assert_eq!(c.body_size(), 4);
        assert!(c.is_full());
        assert!(!cq::is_acyclic(&c));

        let t = triangle_query();
        assert_eq!(t.body_size(), 3);
        assert_eq!(t.schema().arity(cq::Symbol::new("E")), Some(2));
    }

    #[test]
    fn chordal_and_clique_queries_are_cyclic() {
        let chordal = chordal4_query();
        assert_eq!(chordal.body_size(), 5);
        assert!(chordal.is_full());
        assert!(!cq::is_acyclic(&chordal));

        let clique = clique4_query();
        assert_eq!(clique.body_size(), 6);
        assert!(clique.is_full());
        assert!(!cq::is_acyclic(&clique));
        assert_eq!(clique.schema().arity(cq::Symbol::new("E")), Some(2));
    }

    #[test]
    fn example_3_5_query_matches_the_paper() {
        let q = example_3_5_query();
        assert_eq!(q.body_size(), 3);
        assert!(cq::is_minimal(&q));
    }

    #[test]
    fn random_queries_are_safe_and_respect_parameters() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let params = QueryParams {
                relations: 3,
                arity: 2,
                atoms: 4,
                variables: 5,
                head_variables: 2,
                allow_self_joins: true,
            };
            let q = random_query(&mut rng, params);
            assert!(q.body_size() <= 4); // duplicates may collapse
            assert!(q.head().arity() <= 2);
            assert!(q.variables().len() <= 5);
        }
    }

    #[test]
    fn self_join_free_generation() {
        let mut rng = StdRng::seed_from_u64(10);
        let params = QueryParams {
            relations: 2,
            arity: 2,
            atoms: 4,
            variables: 6,
            head_variables: 1,
            allow_self_joins: false,
        };
        for _ in 0..20 {
            let q = random_query(&mut rng, params);
            assert!(!q.has_self_joins());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_query(&mut StdRng::seed_from_u64(5), QueryParams::default());
        let b = random_query(&mut StdRng::seed_from_u64(5), QueryParams::default());
        assert_eq!(a, b);
    }
}
