//! # workloads — query families, random queries, instances and policies
//!
//! Generators for the workloads used by the examples, the integration tests
//! and the benchmark harness of the reproduction: the named query families
//! that the paper's examples revolve around (paths, triangles, the query of
//! Example 3.5), random conjunctive queries with tunable shape, random and
//! skewed database instances, random explicit distribution policies, and
//! named round schedules for the multi-round engine (hash-join /
//! hypercube / broadcast policies per round).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instances;
pub mod policies;
pub mod queries;
pub mod schedules;

pub use instances::{
    complete_binary_relation, named_instance, random_instance, zipf_instance, InstanceParams,
};
pub use policies::{random_explicit_policy, PolicyParams};
pub use queries::{
    chain_query, chordal4_query, clique4_query, cycle_query, example_3_5_query, named_query,
    named_query_sequence, query_sequence_names, random_query, star_query, triangle_query,
    QueryParams,
};
pub use schedules::{hash_join_policy, named_schedule, total_broadcast_policy};
