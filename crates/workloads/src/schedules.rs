//! Round-schedule specifications for multi-round evaluation.
//!
//! A schedule spec is a comma-separated list of per-round policy specs, e.g.
//! `hash-join:4,hypercube:2`: round 0 hash-partitions on the query's first
//! join variable, every later round uses a uniform hypercube. The policies
//! built here are **total over the query's schema** (hash-based, or
//! broadcast-by-default), so facts produced in later rounds — which an
//! explicit per-fact policy built from the initial instance could never have
//! listed — are still assigned somewhere.

use cq::ConjunctiveQuery;
use distribution::{DistributionPolicy, ExplicitPolicy, HypercubePolicy, Network};

/// The classic single-key hash partitioning, expressed as a degenerate
/// hypercube: the first variable shared by at least two body atoms (the
/// join variable) gets `buckets` hash buckets, every other dimension gets a
/// single bucket. Falls back to the query's first variable when no variable
/// is shared.
///
/// For `T(x, z) :- R(x, y), S(y, z)` this is exactly "hash both relations
/// on `y`": no replication, but the whole join key space lands on `buckets`
/// nodes.
pub fn hash_join_policy(
    query: &ConjunctiveQuery,
    buckets: usize,
) -> Result<HypercubePolicy, String> {
    if buckets == 0 {
        return Err("hash-join needs at least one bucket".to_string());
    }
    let variables = query.variables();
    let Some(&first) = variables.first() else {
        return Err(format!(
            "hash-join policy for {query}: the query has no variables to hash on"
        ));
    };
    let join_variable = variables
        .iter()
        .copied()
        .find(|&v| query.body().iter().filter(|atom| atom.contains(v)).count() >= 2)
        .unwrap_or(first);
    let dimension_buckets: Vec<usize> = variables
        .iter()
        .map(|&v| if v == join_variable { buckets } else { 1 })
        .collect();
    HypercubePolicy::with_buckets(query, &dimension_buckets)
        .map_err(|e| format!("hash-join policy for {query}: {e}"))
}

/// A total broadcast policy over `nodes` nodes: every fact — listed or not —
/// goes to every node. Unlike [`ExplicitPolicy::broadcast`], which
/// enumerates a concrete universe, this stays total when later rounds feed
/// new facts back in.
pub fn total_broadcast_policy(nodes: usize) -> Result<ExplicitPolicy, String> {
    if nodes == 0 {
        return Err("broadcast needs at least one node".to_string());
    }
    let network = Network::with_size(nodes);
    Ok(ExplicitPolicy::new(network.clone()).with_default(network.nodes()))
}

/// Resolves a round-schedule spec into one boxed policy per scheduled round
/// (the caller repeats the last policy past the end of the schedule, as
/// `distribution::RoundSchedule` does).
///
/// Accepted per-round specs: `hypercube:<budget>`, `hash-join:<buckets>`,
/// `broadcast:<nodes>`.
pub fn named_schedule(
    spec: &str,
    query: &ConjunctiveQuery,
) -> Result<Vec<Box<dyn DistributionPolicy>>, String> {
    let mut policies: Vec<Box<dyn DistributionPolicy>> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let (name, param) = part
            .split_once(':')
            .ok_or(format!("schedule entry '{part}': expected <policy>:<n>"))?;
        let n: usize = param
            .parse()
            .map_err(|_| format!("schedule entry '{part}': '{param}' is not a number"))?;
        match name {
            "hypercube" => {
                let policy = HypercubePolicy::uniform(query, n)
                    .map_err(|e| format!("schedule entry '{part}': {e}"))?;
                policies.push(Box::new(policy));
            }
            "hash-join" => {
                let policy =
                    hash_join_policy(query, n).map_err(|e| format!("schedule entry '{part}': {e}"))?;
                policies.push(Box::new(policy));
            }
            "broadcast" => {
                let policy = total_broadcast_policy(n)
                    .map_err(|e| format!("schedule entry '{part}': {e}"))?;
                policies.push(Box::new(policy));
            }
            other => {
                return Err(format!(
                    "unknown schedule policy '{other}' (expected hypercube:<budget>, hash-join:<buckets> or broadcast:<nodes>)"
                ))
            }
        }
    }
    if policies.is_empty() {
        return Err("the schedule names no policies".to_string());
    }
    Ok(policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{evaluate, parse_instance, Fact};
    use distribution::{MultiRoundEngine, OneRoundEngine, RoundSchedule};

    fn two_hop() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn hash_join_hashes_only_the_join_variable() {
        let q = two_hop();
        let p = hash_join_policy(&q, 4).unwrap();
        // one dimension with 4 buckets, two with 1 bucket: 4 nodes
        assert_eq!(p.network().len(), 4);
        // no replication: every fact goes to exactly one node
        for fact in [
            Fact::from_names("R", &["a", "b"]),
            Fact::from_names("S", &["b", "c"]),
        ] {
            assert_eq!(p.nodes_for(&fact).len(), 1, "{fact} must not replicate");
        }
        // joining facts meet: R(a,b) and S(b,c) share y=b
        let joining = parse_instance("R(a, b). S(b, c).").unwrap();
        assert!(p.facts_meet(&joining));
    }

    #[test]
    fn hash_join_is_parallel_correct_for_its_query() {
        let q = two_hop();
        let i = parse_instance("R(a, b). R(b, c). R(c, d). S(b, x). S(c, y). S(d, z).").unwrap();
        let p = hash_join_policy(&q, 3).unwrap();
        let outcome = OneRoundEngine::new(&p).evaluate(&q, &i);
        assert_eq!(outcome.result, evaluate(&q, &i));
    }

    #[test]
    fn hash_join_rejects_variable_free_queries() {
        // The parser accepts nullary atoms, so this must be an error, not a
        // panic on an empty variable list.
        let q = ConjunctiveQuery::parse("T() :- R().").unwrap();
        assert!(hash_join_policy(&q, 2).is_err());
        assert!(named_schedule("hash-join:2", &q).is_err());
    }

    #[test]
    fn total_broadcast_assigns_unseen_facts_everywhere() {
        let p = total_broadcast_policy(3).unwrap();
        assert_eq!(p.nodes_for(&Fact::from_names("Z", &["q", "r"])).len(), 3);
        assert!(total_broadcast_policy(0).is_err());
    }

    #[test]
    fn named_schedules_resolve_and_reject_garbage() {
        let q = two_hop();
        let schedule = named_schedule("hash-join:4,hypercube:2", &q).unwrap();
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule[0].network().len(), 4);
        assert_eq!(schedule[1].network().len(), 8); // 2^3 variables

        assert!(named_schedule("", &q).is_err());
        assert!(named_schedule("hash-join", &q).is_err());
        assert!(named_schedule("hash-join:x", &q).is_err());
        assert!(named_schedule("hash-join:0", &q).is_err());
        assert!(named_schedule("frobnicate:3", &q).is_err());
        assert!(named_schedule("broadcast:0", &q).is_err());
    }

    #[test]
    fn scheduled_multi_round_closure_reaches_the_fixpoint() {
        // hash-join round first (cheap, no replication), hypercube after:
        // the mixed schedule still computes the exact transitive closure.
        let q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let i = parse_instance("R(a, b). R(b, c). R(c, d). R(d, e).").unwrap();
        let boxed = named_schedule("hash-join:3,hypercube:2", &q).unwrap();
        let refs: Vec<&dyn DistributionPolicy> = boxed.iter().map(Box::as_ref).collect();
        let engine = MultiRoundEngine::new(RoundSchedule::of(refs))
            .rounds(8)
            .feedback_into("R");
        let outcome = engine.evaluate(&q, &i);
        assert!(outcome.converged);
        assert_eq!(outcome.result, engine.reference_fixpoint(&q, &i).result);
    }
}
