//! Random explicit distribution policies.

use cq::Instance;
use distribution::{ExplicitPolicy, Network, Node};
use rand::Rng;

/// Parameters for random policy generation.
#[derive(Clone, Copy, Debug)]
pub struct PolicyParams {
    /// Number of nodes in the network.
    pub nodes: usize,
    /// How many nodes each fact is replicated to (at least 1, at most `nodes`).
    pub replication: usize,
    /// Probability that a fact is skipped entirely (sent nowhere).
    pub skip_probability: f64,
}

impl Default for PolicyParams {
    fn default() -> Self {
        PolicyParams {
            nodes: 4,
            replication: 1,
            skip_probability: 0.0,
        }
    }
}

/// Generates a random explicit policy over the facts of `universe`: each
/// non-skipped fact is assigned to `replication` distinct random nodes.
pub fn random_explicit_policy<R: Rng>(
    rng: &mut R,
    universe: &Instance,
    params: PolicyParams,
) -> ExplicitPolicy {
    assert!(params.nodes >= 1);
    let replication = params.replication.clamp(1, params.nodes);
    let network = Network::with_size(params.nodes);
    let mut policy = ExplicitPolicy::new(network);
    for fact in universe.facts() {
        if params.skip_probability > 0.0 && rng.gen_bool(params.skip_probability) {
            policy.skip(fact.clone());
            continue;
        }
        let mut nodes = Vec::new();
        while nodes.len() < replication {
            let n = Node::numbered(rng.gen_range(0..params.nodes));
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        policy.assign(fact.clone(), nodes);
    }
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::complete_binary_relation;
    use distribution::{DistributionPolicy, FinitePolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn replication_counts_are_respected() {
        let universe = complete_binary_relation("R", &["a", "b", "c"]);
        let mut rng = StdRng::seed_from_u64(4);
        let policy = random_explicit_policy(
            &mut rng,
            &universe,
            PolicyParams {
                nodes: 5,
                replication: 2,
                skip_probability: 0.0,
            },
        );
        for fact in universe.facts() {
            assert_eq!(policy.nodes_for(fact).len(), 2);
        }
        assert_eq!(policy.fact_universe().len(), universe.len());
    }

    #[test]
    fn skipped_facts_are_not_in_the_universe() {
        let universe = complete_binary_relation("R", &["a", "b", "c", "d"]);
        let mut rng = StdRng::seed_from_u64(5);
        let policy = random_explicit_policy(
            &mut rng,
            &universe,
            PolicyParams {
                nodes: 3,
                replication: 1,
                skip_probability: 0.5,
            },
        );
        assert!(policy.fact_universe().len() < universe.len());
    }

    #[test]
    fn replication_is_clamped_to_the_network_size() {
        let universe = complete_binary_relation("R", &["a", "b"]);
        let mut rng = StdRng::seed_from_u64(6);
        let policy = random_explicit_policy(
            &mut rng,
            &universe,
            PolicyParams {
                nodes: 2,
                replication: 10,
                skip_probability: 0.0,
            },
        );
        for fact in universe.facts() {
            assert_eq!(policy.nodes_for(fact).len(), 2);
        }
    }

    #[test]
    fn broadcast_like_policies_are_parallel_correct_for_any_query() {
        let universe = complete_binary_relation("R", &["a", "b"]);
        let mut rng = StdRng::seed_from_u64(7);
        let policy = random_explicit_policy(
            &mut rng,
            &universe,
            PolicyParams {
                nodes: 3,
                replication: 3,
                skip_probability: 0.0,
            },
        );
        let query = crate::queries::chain_query(2);
        assert!(pc_core::check_parallel_correctness(&query, &policy).is_correct());
    }
}
