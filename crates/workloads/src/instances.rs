//! Random and skewed database instances.

use cq::{Fact, Instance, Schema, Value};
use rand::Rng;

/// Parameters for random instance generation.
#[derive(Clone, Copy, Debug)]
pub struct InstanceParams {
    /// Size of the active domain to draw values from.
    pub domain_size: usize,
    /// Number of facts per relation.
    pub facts_per_relation: usize,
}

impl Default for InstanceParams {
    fn default() -> Self {
        InstanceParams {
            domain_size: 10,
            facts_per_relation: 30,
        }
    }
}

fn value(i: usize) -> Value {
    Value::indexed("d", i)
}

/// A uniformly random instance over `schema`.
pub fn random_instance<R: Rng>(rng: &mut R, schema: &Schema, params: InstanceParams) -> Instance {
    assert!(params.domain_size >= 1);
    let mut out = Instance::new();
    for rel in schema.relations() {
        for _ in 0..params.facts_per_relation {
            let tuple = (0..rel.arity)
                .map(|_| value(rng.gen_range(0..params.domain_size)))
                .collect();
            out.insert(Fact::new(rel.name, tuple));
        }
    }
    out
}

/// A skewed instance over `schema`: the first attribute of every fact follows
/// an approximate Zipf distribution (heavy hitters), the remaining attributes
/// are uniform. Used to exercise load imbalance in the one-round engine.
pub fn zipf_instance<R: Rng>(
    rng: &mut R,
    schema: &Schema,
    params: InstanceParams,
    exponent: f64,
) -> Instance {
    assert!(params.domain_size >= 1);
    // Precompute cumulative Zipf weights.
    let weights: Vec<f64> = (1..=params.domain_size)
        .map(|k| 1.0 / (k as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let draw_zipf = |rng: &mut R| -> usize {
        let u: f64 = rng.gen();
        cumulative.iter().position(|&c| u <= c).unwrap_or(0)
    };

    let mut out = Instance::new();
    for rel in schema.relations() {
        for _ in 0..params.facts_per_relation {
            let tuple = (0..rel.arity)
                .map(|pos| {
                    if pos == 0 {
                        value(draw_zipf(rng))
                    } else {
                        value(rng.gen_range(0..params.domain_size))
                    }
                })
                .collect();
            out.insert(Fact::new(rel.name, tuple));
        }
    }
    out
}

/// Resolves a named workload instance spec over `schema`:
/// `random:<domain>:<facts>[:seed]` or
/// `zipf:<domain>:<facts>:<exponent-percent>[:seed]` (e.g. `zipf:50:400:150`
/// draws first attributes from a Zipf distribution with exponent 1.5).
///
/// Generation is deterministic: the default seed is 0.
pub fn named_instance(spec: &str, schema: &Schema) -> Result<Instance, String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut parts = spec.split(':');
    let family = parts.next().unwrap_or_default();
    let mut numbers = Vec::new();
    for part in parts {
        numbers.push(
            part.parse::<u64>()
                .map_err(|_| format!("instance spec '{spec}': '{part}' is not a number"))?,
        );
    }
    let params_from = |numbers: &[u64]| -> Result<InstanceParams, String> {
        let &[domain, facts] = &numbers[..2] else {
            unreachable!("caller checks arity")
        };
        if domain == 0 {
            return Err(format!(
                "instance spec '{spec}': domain size must be at least 1"
            ));
        }
        // Zero facts used to slip through and blow up downstream consumers
        // that assume a generated workload is non-empty; reject it at parse
        // time with the other arity/range errors instead.
        if facts == 0 {
            return Err(format!(
                "instance spec '{spec}': facts per relation must be at least 1"
            ));
        }
        Ok(InstanceParams {
            domain_size: domain as usize,
            facts_per_relation: facts as usize,
        })
    };
    match family {
        "random" => {
            if !(2..=3).contains(&numbers.len()) {
                return Err(format!(
                    "instance spec '{spec}': expected random:<domain>:<facts>[:seed]"
                ));
            }
            let params = params_from(&numbers)?;
            let seed = numbers.get(2).copied().unwrap_or(0);
            Ok(random_instance(&mut StdRng::seed_from_u64(seed), schema, params))
        }
        "zipf" => {
            if !(3..=4).contains(&numbers.len()) {
                return Err(format!(
                    "instance spec '{spec}': expected zipf:<domain>:<facts>:<exponent-percent>[:seed]"
                ));
            }
            let params = params_from(&numbers)?;
            let exponent = numbers[2] as f64 / 100.0;
            let seed = numbers.get(3).copied().unwrap_or(0);
            Ok(zipf_instance(
                &mut StdRng::seed_from_u64(seed),
                schema,
                params,
                exponent,
            ))
        }
        other => Err(format!(
            "unknown instance family '{other}' (expected random:<domain>:<facts>[:seed] or zipf:<domain>:<facts>:<exponent-percent>[:seed])"
        )),
    }
}

/// The complete binary relation `name` over the given values (all pairs).
pub fn complete_binary_relation(name: &str, values: &[&str]) -> Instance {
    let mut out = Instance::new();
    for x in values {
        for y in values {
            out.insert(Fact::from_names(name, &[x, y]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_relations([("R", 2), ("S", 3)])
    }

    #[test]
    fn random_instances_respect_schema_and_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = InstanceParams {
            domain_size: 5,
            facts_per_relation: 20,
        };
        let inst = random_instance(&mut rng, &schema(), params);
        assert!(inst.is_well_formed());
        assert!(inst.adom().len() <= 5);
        // duplicates collapse, so at most 20 per relation
        assert!(inst.facts_of(cq::Symbol::new("R")).len() <= 20);
        assert!(!inst.is_empty());
    }

    #[test]
    fn zipf_instances_are_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = InstanceParams {
            domain_size: 50,
            facts_per_relation: 400,
        };
        let inst = zipf_instance(&mut rng, &Schema::from_relations([("R", 2)]), params, 1.5);
        // the most frequent first-attribute value should dominate
        let mut counts = std::collections::BTreeMap::new();
        for f in inst.facts() {
            *counts.entry(f.values[0]).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = inst.len() as f64 / counts.len() as f64;
        assert!(
            (max as f64) > 2.0 * avg,
            "expected skew: max={max}, avg={avg:.1}"
        );
    }

    #[test]
    fn complete_binary_relation_has_all_pairs() {
        let inst = complete_binary_relation("R", &["a", "b", "c"]);
        assert_eq!(inst.len(), 9);
        assert!(inst.contains(&Fact::from_names("R", &["c", "a"])));
    }

    #[test]
    fn named_instance_specs_resolve() {
        let schema = schema();
        let random = named_instance("random:5:20", &schema).unwrap();
        assert!(random.is_well_formed());
        assert!(random.adom().len() <= 5);
        // deterministic: same spec, same instance; different seed differs
        assert_eq!(random, named_instance("random:5:20:0", &schema).unwrap());
        assert_ne!(random, named_instance("random:5:20:1", &schema).unwrap());

        let zipf = named_instance("zipf:50:400:150", &schema).unwrap();
        assert!(zipf.is_well_formed());

        for bad in [
            "random",
            "random:5",
            "random:0:20",
            "random:5:0",
            "random:5:20:1:9",
            "zipf:5:20",
            "zipf:5:0:150",
            "random:x:20",
            "uniform:5:20",
        ] {
            assert!(
                named_instance(bad, &schema).is_err(),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_instance(
            &mut StdRng::seed_from_u64(3),
            &schema(),
            InstanceParams::default(),
        );
        let b = random_instance(
            &mut StdRng::seed_from_u64(3),
            &schema(),
            InstanceParams::default(),
        );
        assert_eq!(a, b);
    }
}
