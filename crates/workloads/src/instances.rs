//! Random and skewed database instances.

use cq::{Fact, Instance, Schema, Value};
use rand::Rng;

/// Parameters for random instance generation.
#[derive(Clone, Copy, Debug)]
pub struct InstanceParams {
    /// Size of the active domain to draw values from.
    pub domain_size: usize,
    /// Number of facts per relation.
    pub facts_per_relation: usize,
}

impl Default for InstanceParams {
    fn default() -> Self {
        InstanceParams {
            domain_size: 10,
            facts_per_relation: 30,
        }
    }
}

fn value(i: usize) -> Value {
    Value::indexed("d", i)
}

/// A uniformly random instance over `schema`.
pub fn random_instance<R: Rng>(rng: &mut R, schema: &Schema, params: InstanceParams) -> Instance {
    assert!(params.domain_size >= 1);
    let mut out = Instance::new();
    for rel in schema.relations() {
        for _ in 0..params.facts_per_relation {
            let tuple = (0..rel.arity)
                .map(|_| value(rng.gen_range(0..params.domain_size)))
                .collect();
            out.insert(Fact::new(rel.name, tuple));
        }
    }
    out
}

/// A skewed instance over `schema`: the first attribute of every fact follows
/// an approximate Zipf distribution (heavy hitters), the remaining attributes
/// are uniform. Used to exercise load imbalance in the one-round engine.
pub fn zipf_instance<R: Rng>(
    rng: &mut R,
    schema: &Schema,
    params: InstanceParams,
    exponent: f64,
) -> Instance {
    assert!(params.domain_size >= 1);
    // Precompute cumulative Zipf weights.
    let weights: Vec<f64> = (1..=params.domain_size)
        .map(|k| 1.0 / (k as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let draw_zipf = |rng: &mut R| -> usize {
        let u: f64 = rng.gen();
        cumulative.iter().position(|&c| u <= c).unwrap_or(0)
    };

    let mut out = Instance::new();
    for rel in schema.relations() {
        for _ in 0..params.facts_per_relation {
            let tuple = (0..rel.arity)
                .map(|pos| {
                    if pos == 0 {
                        value(draw_zipf(rng))
                    } else {
                        value(rng.gen_range(0..params.domain_size))
                    }
                })
                .collect();
            out.insert(Fact::new(rel.name, tuple));
        }
    }
    out
}

/// The complete binary relation `name` over the given values (all pairs).
pub fn complete_binary_relation(name: &str, values: &[&str]) -> Instance {
    let mut out = Instance::new();
    for x in values {
        for y in values {
            out.insert(Fact::from_names(name, &[x, y]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_relations([("R", 2), ("S", 3)])
    }

    #[test]
    fn random_instances_respect_schema_and_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = InstanceParams {
            domain_size: 5,
            facts_per_relation: 20,
        };
        let inst = random_instance(&mut rng, &schema(), params);
        assert!(inst.is_well_formed());
        assert!(inst.adom().len() <= 5);
        // duplicates collapse, so at most 20 per relation
        assert!(inst.facts_of(cq::Symbol::new("R")).len() <= 20);
        assert!(!inst.is_empty());
    }

    #[test]
    fn zipf_instances_are_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = InstanceParams {
            domain_size: 50,
            facts_per_relation: 400,
        };
        let inst = zipf_instance(&mut rng, &Schema::from_relations([("R", 2)]), params, 1.5);
        // the most frequent first-attribute value should dominate
        let mut counts = std::collections::BTreeMap::new();
        for f in inst.facts() {
            *counts.entry(f.values[0]).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = inst.len() as f64 / counts.len() as f64;
        assert!(
            (max as f64) > 2.0 * avg,
            "expected skew: max={max}, avg={avg:.1}"
        );
    }

    #[test]
    fn complete_binary_relation_has_all_pairs() {
        let inst = complete_binary_relation("R", &["a", "b", "c"]);
        assert_eq!(inst.len(), 9);
        assert!(inst.contains(&Fact::from_names("R", &["c", "a"])));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_instance(
            &mut StdRng::seed_from_u64(3),
            &schema(),
            InstanceParams::default(),
        );
        let b = random_instance(
            &mut StdRng::seed_from_u64(3),
            &schema(),
            InstanceParams::default(),
        );
        assert_eq!(a, b);
    }
}
