//! The delta-tracking instance: full state plus the facts new since the
//! last round.

use cq::{evaluate_seminaive_step_with, ConjunctiveQuery, EvalOptions, Fact, Instance};

/// An instance that makes *change* observable: next to the full fact set it
/// keeps the set of facts added since the last [`DeltaInstance::take_delta`]
/// — the per-round delta of an iterated evaluation.
///
/// Two properties make it the storage layer of semi-naive rounds:
///
/// * **Absorption is differential** — [`DeltaInstance::absorb`] adds facts
///   to the full instance and records only the genuinely new ones in the
///   delta; re-announced facts are ignored, so the delta is exactly
///   `full_after \ full_before` accumulated since the last round boundary.
/// * **Indexes stay warm** — the full instance only ever grows, and
///   `cq::Instance::insert` maintains built secondary indexes
///   incrementally, so the index work of round `r` is reused by every
///   later round instead of being rebuilt from scratch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaInstance {
    full: Instance,
    delta: Instance,
}

impl DeltaInstance {
    /// An empty delta instance.
    pub fn new() -> DeltaInstance {
        DeltaInstance::default()
    }

    /// Starts from `instance`, with **every** initial fact counting as new:
    /// the first round of an iterated evaluation sees the whole input as
    /// its delta, which is what makes round one of a semi-naive run equal a
    /// full evaluation.
    pub fn from_initial(instance: Instance) -> DeltaInstance {
        DeltaInstance {
            delta: instance.clone(),
            full: instance,
        }
    }

    /// The full accumulated instance.
    pub fn full(&self) -> &Instance {
        &self.full
    }

    /// The facts added since the last [`DeltaInstance::take_delta`].
    pub fn delta(&self) -> &Instance {
        &self.delta
    }

    /// Adds facts to the instance; only the genuinely new ones enter the
    /// delta. Returns how many facts were actually new.
    pub fn absorb<I: IntoIterator<Item = Fact>>(&mut self, facts: I) -> usize {
        let mut added = 0;
        for fact in facts {
            if self.full.insert(fact.clone()) {
                self.delta.insert(fact);
                added += 1;
            }
        }
        added
    }

    /// Closes the current round: returns the accumulated delta and resets
    /// it to empty (the facts stay in the full instance).
    pub fn take_delta(&mut self) -> Instance {
        std::mem::take(&mut self.delta)
    }

    /// Whether nothing new has been absorbed since the last round boundary
    /// — the fixpoint test of an iterated run.
    pub fn is_quiescent(&self) -> bool {
        self.delta.is_empty()
    }

    /// Number of facts in the full instance.
    pub fn len(&self) -> usize {
        self.full.len()
    }

    /// Whether the full instance is empty.
    pub fn is_empty(&self) -> bool {
        self.full.is_empty()
    }

    /// One semi-naive differential step over the current (full, delta)
    /// pair: the facts `query` derives through at least one valuation using
    /// a delta fact. See `cq::evaluate_seminaive_step` for the contract.
    pub fn evaluate_new(&self, query: &ConjunctiveQuery) -> Instance {
        self.evaluate_new_with(query, EvalOptions::default())
    }

    /// [`DeltaInstance::evaluate_new`] under explicit [`EvalOptions`].
    pub fn evaluate_new_with(&self, query: &ConjunctiveQuery, opts: EvalOptions) -> Instance {
        evaluate_seminaive_step_with(query, &self.full, &self.delta, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{evaluate, parse_instance};

    fn square() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
    }

    #[test]
    fn initial_facts_all_count_as_delta() {
        let i = parse_instance("R(a, b). R(b, c).").unwrap();
        let acc = DeltaInstance::from_initial(i.clone());
        assert_eq!(acc.full(), &i);
        assert_eq!(acc.delta(), &i);
        assert!(!acc.is_quiescent());
        assert_eq!(acc.evaluate_new(&square()), evaluate(&square(), &i));
    }

    #[test]
    fn absorb_records_only_genuinely_new_facts() {
        let mut acc = DeltaInstance::from_initial(parse_instance("R(a, b).").unwrap());
        acc.take_delta();
        assert!(acc.is_quiescent());
        let added = acc.absorb([
            Fact::from_names("R", &["a", "b"]), // already known
            Fact::from_names("R", &["b", "c"]), // new
            Fact::from_names("R", &["b", "c"]), // duplicate within the batch
        ]);
        assert_eq!(added, 1);
        assert_eq!(acc.delta(), &parse_instance("R(b, c).").unwrap());
        assert_eq!(acc.full().len(), 2);
    }

    #[test]
    fn take_delta_resets_the_delta_but_keeps_the_facts() {
        let mut acc = DeltaInstance::from_initial(parse_instance("R(a, b).").unwrap());
        let taken = acc.take_delta();
        assert_eq!(taken, parse_instance("R(a, b).").unwrap());
        assert!(acc.is_quiescent());
        assert_eq!(acc.len(), 1);
        assert!(!acc.is_empty());
    }

    #[test]
    fn round_by_round_equals_full_reevaluation() {
        // Drive a transitive-closure iteration by hand: at every round the
        // cumulative semi-naive output must equal evaluating the full
        // instance from scratch.
        let q = square();
        let mut acc =
            DeltaInstance::from_initial(parse_instance("R(a, b). R(b, c). R(c, d).").unwrap());
        let mut cumulative = Instance::new();
        for _ in 0..6 {
            let new = acc.evaluate_new(&q);
            acc.take_delta();
            cumulative.extend(new.facts().cloned());
            assert_eq!(cumulative, evaluate(&q, acc.full()));
            let feedback: Vec<Fact> = new
                .facts()
                .map(|f| Fact::new("R", f.values.clone()))
                .collect();
            if acc.absorb(feedback) == 0 {
                break;
            }
        }
        assert!(acc.is_quiescent());
        // an 3-edge chain closes to all pairs at distance >= 2
        assert!(acc.full().contains(&Fact::from_names("R", &["a", "d"])));
    }

    #[test]
    fn growth_keeps_the_full_instances_indexes_warm() {
        let q = square();
        let mut acc = DeltaInstance::from_initial(parse_instance("R(a, b). R(b, c).").unwrap());
        let _ = acc.evaluate_new(&q); // builds the indexes
        acc.take_delta();
        assert!(acc.full().indexes_built());
        acc.absorb([Fact::from_names("R", &["c", "d"])]);
        assert!(
            acc.full().indexes_built(),
            "absorb must maintain the indexes incrementally, not drop them"
        );
        let new = acc.evaluate_new(&q);
        assert!(new.contains(&Fact::from_names("T", &["b", "d"])));
    }
}
