//! The node-side state of a semi-naive distributed round.

use cq::{ConjunctiveQuery, EvalOptions, Instance};

use crate::instance::DeltaInstance;

/// One simulated node's persistent state across the rounds of an
/// incremental (delta-shipping) run: the accumulated local data and the
/// set of output facts the node has already shipped.
///
/// Every transport — in-memory pool worker or `pcq-analyze worker`
/// subprocess — drives its incremental rounds through
/// [`DeltaNode::step`], so the two paths share one definition of what a
/// semi-naive round *is*:
///
/// 1. absorb the round's incoming delta chunk into the local data,
/// 2. derive the facts reachable through at least one new local fact
///    (the semi-naive differential step),
/// 3. ship back only the derivations this node has never produced before
///    (the *output* delta).
#[derive(Clone, Debug, Default)]
pub struct DeltaNode {
    data: DeltaInstance,
    derived: Instance,
}

impl DeltaNode {
    /// A fresh node with no data and no shipped outputs.
    pub fn new() -> DeltaNode {
        DeltaNode::default()
    }

    /// Runs one incremental round under the default [`EvalOptions`]: see
    /// the type docs for the three phases. Returns the node's output delta.
    pub fn step(&mut self, query: &ConjunctiveQuery, delta_chunk: &Instance) -> Instance {
        self.step_with(query, delta_chunk, EvalOptions::default())
    }

    /// [`DeltaNode::step`] under explicit [`EvalOptions`].
    pub fn step_with(
        &mut self,
        query: &ConjunctiveQuery,
        delta_chunk: &Instance,
        opts: EvalOptions,
    ) -> Instance {
        self.data.absorb(delta_chunk.facts().cloned());
        let new = self.data.evaluate_new_with(query, opts);
        self.data.take_delta();
        let fresh: Instance = new
            .facts()
            .filter(|f| !self.derived.contains(f))
            .cloned()
            .collect();
        self.derived.extend(fresh.facts().cloned());
        fresh
    }

    /// The node's accumulated local data.
    pub fn data(&self) -> &DeltaInstance {
        &self.data
    }

    /// Every output fact the node has shipped so far.
    pub fn derived(&self) -> &Instance {
        &self.derived
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{evaluate, parse_instance};

    fn square() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap()
    }

    #[test]
    fn cumulative_steps_equal_full_local_evaluation() {
        let q = square();
        let chunks = [
            parse_instance("R(a, b). R(b, c).").unwrap(),
            parse_instance("R(c, d).").unwrap(),
            parse_instance("R(d, e). R(a, b).").unwrap(), // one re-announcement
        ];
        let mut node = DeltaNode::new();
        let mut shipped = Instance::new();
        let mut all = Instance::new();
        for chunk in &chunks {
            shipped.extend(node.step(&q, chunk).facts().cloned());
            all.extend(chunk.facts().cloned());
            assert_eq!(shipped, evaluate(&q, &all), "cumulative outputs diverged");
            assert_eq!(node.derived(), &shipped);
        }
        assert_eq!(node.data().full(), &all);
    }

    #[test]
    fn rederived_facts_are_never_shipped_twice() {
        // The second chunk adds a new path to an already-derived pair:
        // T(a, c) is re-derived through b' but must not ship again.
        let q = square();
        let mut node = DeltaNode::new();
        let first = node.step(&q, &parse_instance("R(a, b). R(b, c).").unwrap());
        assert_eq!(first, parse_instance("T(a, c).").unwrap());
        let second = node.step(&q, &parse_instance("R(a, b2). R(b2, c).").unwrap());
        assert!(
            second.is_empty(),
            "re-derivation of a shipped fact leaked: {second}"
        );
    }

    #[test]
    fn empty_chunks_are_free() {
        let q = square();
        let mut node = DeltaNode::new();
        let _ = node.step(&q, &parse_instance("R(a, b). R(b, c).").unwrap());
        let out = node.step(&q, &Instance::new());
        assert!(out.is_empty());
        assert_eq!(node.data().len(), 2);
    }
}
