//! # delta — change as a first-class value
//!
//! The multi-round engines historically re-evaluated the full accumulated
//! instance every round. This crate owns the storage side of doing better:
//!
//! * [`DeltaInstance`] — an instance that tracks, next to its full fact
//!   set, the facts that are *new since the last round*. Growth keeps the
//!   full instance's secondary hash indexes warm (insertion maintains them
//!   incrementally — see `cq::Instance::insert`), so every round's
//!   evaluation reuses the index work of all earlier rounds.
//! * [`DeltaNode`] — the node-side state of a semi-naive distributed
//!   round: absorb the round's delta chunk, derive only what is new
//!   (`cq::evaluate_seminaive_step`), and ship back only the output facts
//!   this node has never produced before. Both the in-memory and the
//!   cross-process transports run their rounds through this one type, so
//!   their incremental semantics cannot drift apart.
//! * [`IndexCache`] — a small content-addressed cache of
//!   evaluation-ready instances for the many `evaluate` calls the engines
//!   and decision procedures make on *identical* instances (a broadcast
//!   round evaluates the same chunk at every node): repeated calls share
//!   one instance whose secondary indexes are built once.
//!
//! ## Example
//!
//! ```
//! use cq::{ConjunctiveQuery, parse_instance, evaluate};
//! use delta::DeltaInstance;
//!
//! let q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
//! let mut acc = DeltaInstance::from_initial(parse_instance("R(a, b).").unwrap());
//!
//! // Round 1: everything is new, the differential step is a full evaluation.
//! assert_eq!(acc.evaluate_new(&q), evaluate(&q, acc.full()));
//! acc.take_delta();
//!
//! // Round 2: one new edge; only derivations touching it are recomputed.
//! acc.absorb([cq::Fact::from_names("R", &["b", "c"])]);
//! let new = acc.evaluate_new(&q);
//! assert_eq!(new, parse_instance("T(a, c).").unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod instance;
mod node;

pub use cache::{CacheStats, IndexCache};
pub use instance::DeltaInstance;
pub use node::DeltaNode;
