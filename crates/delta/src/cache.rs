//! A content-addressed cache of evaluation-ready instances.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use cq::Instance;
use obs::Counter;

/// A small LRU cache that lets repeated `evaluate` calls on **equal**
/// instances share one instance value — and therefore share its lazily
/// built secondary hash indexes instead of rebuilding them per call.
///
/// The motivating pattern is a broadcast (or highly replicated) round:
/// every node's chunk is the same instance, but each materialized copy
/// would build its own indexes from scratch. Warming the chunks through a
/// shared `IndexCache` collapses them onto one [`Arc`]`<`[`Instance`]`>`,
/// whose indexes are built once (the first evaluation that needs them) and
/// reused by every other node — across rounds too, for as long as the
/// entry stays resident.
///
/// Keys are a hash of the fact set; a hit is confirmed by full equality,
/// so a hash collision can cost a comparison but never wrong results.
#[derive(Debug)]
pub struct IndexCache {
    capacity: usize,
    /// Most-recently used first.
    entries: Vec<(u64, Arc<Instance>)>,
    /// Hit/miss counters are shared [`Counter`] handles, so a transport
    /// can register the same values in its metrics registry — the cache
    /// increments, the registry reports, one source of truth.
    hits: Counter,
    misses: Counter,
}

/// A snapshot of an [`IndexCache`]'s hit/miss counters, suitable for
/// embedding in decision reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Warm requests answered by a resident instance.
    pub hits: u64,
    /// Warm requests that had to admit a new instance.
    pub misses: u64,
}

impl CacheStats {
    /// Pointwise sum with another snapshot.
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

fn fingerprint(instance: &Instance) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    instance.hash(&mut hasher);
    hasher.finish()
}

impl IndexCache {
    /// A cache holding at most `capacity` instances (at least 1), with
    /// standalone (unregistered) counters.
    pub fn new(capacity: usize) -> IndexCache {
        IndexCache::with_counters(capacity, Counter::detached(), Counter::detached())
    }

    /// A cache whose hit/miss counters are caller-provided handles —
    /// typically `registry.counter("index_cache_hits")` /
    /// `registry.counter("index_cache_misses")` — so the owning
    /// transport's metrics registry reads the very counts the cache
    /// increments.
    pub fn with_counters(capacity: usize, hits: Counter, misses: Counter) -> IndexCache {
        IndexCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits,
            misses,
        }
    }

    /// Moves the entry equal to `instance` to the front and returns its
    /// handle, if resident.
    fn lookup(&mut self, key: u64, instance: &Instance) -> Option<Arc<Instance>> {
        let at = self
            .entries
            .iter()
            .position(|(k, cached)| *k == key && &**cached == instance)?;
        self.hits.inc();
        let entry = self.entries.remove(at);
        let handle = entry.1.clone();
        self.entries.insert(0, entry);
        Some(handle)
    }

    fn admit(&mut self, key: u64, instance: Instance) -> Arc<Instance> {
        self.misses.inc();
        let handle = Arc::new(instance);
        self.entries.insert(0, (key, handle.clone()));
        self.entries.truncate(self.capacity);
        handle
    }

    /// Returns the cached instance equal to `instance`, inserting
    /// `instance` itself on a miss. The returned handle keeps its built
    /// indexes for as long as any caller holds it.
    pub fn warm_owned(&mut self, instance: Instance) -> Arc<Instance> {
        let key = fingerprint(&instance);
        match self.lookup(key, &instance) {
            Some(handle) => handle,
            None => self.admit(key, instance),
        }
    }

    /// Like [`IndexCache::warm_owned`] for a borrowed instance (clones on
    /// a miss).
    pub fn warm(&mut self, instance: &Instance) -> Arc<Instance> {
        let key = fingerprint(instance);
        match self.lookup(key, instance) {
            Some(handle) => handle,
            None => self.admit(key, instance.clone()),
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// A copyable snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Number of resident instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every resident instance (the hit/miss counters survive).
    /// Callers with a natural sharing horizon — e.g. a transport whose
    /// chunks can only repeat within one round — clear at the horizon so
    /// the cache never pins stale instances.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Default for IndexCache {
    /// A cache sized for a typical simulated network (16 entries).
    fn default() -> IndexCache {
        IndexCache::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_instance;

    #[test]
    fn equal_instances_share_one_entry() {
        let mut cache = IndexCache::new(4);
        let a = parse_instance("R(a, b). R(b, c).").unwrap();
        let first = cache.warm(&a);
        let second = cache.warm(&a.clone());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_entries_share_their_indexes() {
        let mut cache = IndexCache::new(4);
        let chunk = parse_instance("R(a, b). R(b, c).").unwrap();
        let first = cache.warm_owned(chunk.clone());
        // Force an indexed lookup on the shared handle…
        let _ = first.posting(cq::Symbol::new("R"), 0, cq::Value::new("a"));
        assert!(first.indexes_built());
        // …and the next warm of an equal chunk sees them already built.
        let second = cache.warm_owned(chunk);
        assert!(second.indexes_built());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = IndexCache::new(2);
        let a = parse_instance("R(a, a).").unwrap();
        let b = parse_instance("R(b, b).").unwrap();
        let c = parse_instance("R(c, c).").unwrap();
        cache.warm(&a);
        cache.warm(&b);
        cache.warm(&a); // refresh a; b is now least recent
        cache.warm(&c); // evicts b
        assert_eq!(cache.len(), 2);
        cache.warm(&a);
        assert_eq!(cache.hits(), 2, "a must still be resident");
        cache.warm(&b);
        assert_eq!(cache.misses(), 4, "b must have been evicted");
    }

    #[test]
    fn registry_backed_counters_report_the_same_values() {
        // The migration contract: a cache built over registry counters
        // makes `hits()`/`misses()` and the registry's view one value.
        let registry = obs::Registry::new();
        let mut cache = IndexCache::with_counters(
            4,
            registry.counter("index_cache_hits"),
            registry.counter("index_cache_misses"),
        );
        let a = parse_instance("R(a, b).").unwrap();
        cache.warm(&a);
        cache.warm(&a.clone());
        cache.warm(&a.clone());
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert_eq!(registry.counter_value("index_cache_hits"), cache.hits());
        assert_eq!(registry.counter_value("index_cache_misses"), cache.misses());
    }

    #[test]
    fn collisionless_lookup_is_by_value_not_just_by_hash() {
        let mut cache = IndexCache::new(4);
        let a = parse_instance("R(a, b).").unwrap();
        let b = parse_instance("R(a, c).").unwrap();
        let wa = cache.warm(&a);
        let wb = cache.warm(&b);
        assert!(!Arc::ptr_eq(&wa, &wb));
        assert_eq!(&*wa, &a);
        assert_eq!(&*wb, &b);
        assert_eq!(cache.len(), 2);
    }
}
