//! The transport abstraction for shipping chunks between rounds.
//!
//! The engines in this crate historically evaluated every node's chunk in
//! the coordinating process — the cluster was simulated in one address
//! space. [`Transport`] factors the *shipping* side of a round out of the
//! engine: the engine computes `dist_P(I)` and hands each node's chunk to
//! the transport, the transport gets the chunk evaluated *somewhere* (in
//! this process, in a worker subprocess, on another machine), and the
//! engine collects the per-node results after a barrier.
//!
//! A round through a transport is always the same four-step conversation:
//!
//! ```text
//! begin_round(r, Q)              announce the round and its query
//! send_chunk(node, chunk) …      ship every node's data chunk
//! barrier()                      wait until every node finished evaluating
//! recv_chunk(node) …             collect every node's local output
//! ```
//!
//! [`InMemoryTransport`] is the refactored in-process path: chunks are
//! buffered, the barrier drains them through the same bounded worker pool
//! the engine always used, and `recv_chunk` hands the results back. The
//! cross-process implementation (`wire::ProcessTransport`) speaks the same
//! conversation over stdio pipes to `pcq-analyze worker` subprocesses.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cq::{evaluate, ConjunctiveQuery, Instance};

use crate::network::Node;

/// Errors raised by a [`Transport`].
///
/// The in-memory transport never fails; process-backed transports surface
/// spawn, pipe and protocol failures through this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// An I/O error talking to a worker (pipe closed, spawn failed, …).
    Io(String),
    /// The peer violated the wire protocol (unexpected message, bad frame).
    Protocol(String),
    /// A chunk was requested for a node the transport never received
    /// (or was asked for twice).
    UnknownNode(Node),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(detail) => write!(f, "transport I/O error: {detail}"),
            TransportError::Protocol(detail) => write!(f, "transport protocol error: {detail}"),
            TransportError::UnknownNode(node) => {
                write!(f, "transport has no result for node {node}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// One node's local evaluation result, as returned by
/// [`Transport::recv_chunk`].
#[derive(Clone, Debug)]
pub struct NodeResult {
    /// The node's local query output.
    pub output: Instance,
    /// Wall-clock time of the node's local evaluation (as measured by
    /// whoever evaluated the chunk — a pool worker or a subprocess).
    pub eval_time: Duration,
}

/// A pluggable mechanism for shipping chunks to nodes and collecting their
/// local evaluation results (see the module docs for the conversation).
///
/// Implementations may evaluate eagerly on `send_chunk` or lazily at the
/// `barrier`; callers must not read results before the barrier returns.
pub trait Transport {
    /// Announces a new round: `query` is what every node will evaluate over
    /// the chunk it is about to receive.
    fn begin_round(&mut self, round: usize, query: &ConjunctiveQuery)
        -> Result<(), TransportError>;

    /// Ships `chunk` — the node's portion of `dist_P(I)` — to `node`.
    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError>;

    /// Blocks until every chunk sent this round has been evaluated.
    fn barrier(&mut self) -> Result<(), TransportError>;

    /// Collects `node`'s local output for the round. Each node's result can
    /// be received exactly once, after the [`Transport::barrier`].
    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError>;

    /// How many chunks the transport can evaluate concurrently (pool
    /// workers, subprocesses, …) — reporting only; `1` means sequential.
    fn parallelism(&self) -> usize {
        1
    }
}

/// Drains `items` through `f` on a bounded pool: `workers` scoped threads
/// steal the next unclaimed item index from a shared atomic cursor until
/// the queue is empty (`workers <= 1` runs on the calling thread). The
/// transport barrier and the streaming engine path share this loop so their
/// pool semantics cannot drift. Results arrive in completion order.
pub(crate) fn drain_pool<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        mine.push(f(item));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("local evaluation panicked"))
            .collect()
    })
}

/// The in-process [`Transport`]: buffers chunks as they are sent and
/// evaluates them at the barrier on a bounded worker pool of scoped OS
/// threads (`workers <= 1` evaluates sequentially on the calling thread).
///
/// This is the classic simulated-cluster path of [`OneRoundEngine`]
/// refactored behind the transport seam; it is infallible and allocates
/// nothing beyond the chunks themselves.
///
/// [`OneRoundEngine`]: crate::OneRoundEngine
pub struct InMemoryTransport {
    workers: usize,
    query: Option<ConjunctiveQuery>,
    pending: Vec<(Node, Instance)>,
    ready: BTreeMap<Node, NodeResult>,
}

impl InMemoryTransport {
    /// A transport evaluating on a pool of up to `workers` threads.
    pub fn new(workers: usize) -> InMemoryTransport {
        InMemoryTransport {
            workers: workers.max(1),
            query: None,
            pending: Vec::new(),
            ready: BTreeMap::new(),
        }
    }
}

impl Transport for InMemoryTransport {
    fn begin_round(
        &mut self,
        _round: usize,
        query: &ConjunctiveQuery,
    ) -> Result<(), TransportError> {
        self.query = Some(query.clone());
        self.pending.clear();
        self.ready.clear();
        Ok(())
    }

    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError> {
        self.pending.push((node, chunk));
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        let query = self
            .query
            .as_ref()
            .ok_or_else(|| TransportError::Protocol("barrier before begin_round".into()))?;
        // The pool is bounded by the chunk count: asking for more workers
        // than chunks costs nothing.
        let workers = self.workers.min(self.pending.len()).max(1);
        let results = drain_pool(&self.pending, workers, |(node, chunk)| {
            let start = Instant::now();
            let output = evaluate(query, chunk);
            (
                *node,
                NodeResult {
                    output,
                    eval_time: start.elapsed(),
                },
            )
        });
        self.pending.clear();
        self.ready.extend(results);
        Ok(())
    }

    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.ready
            .remove(&node)
            .ok_or(TransportError::UnknownNode(node))
    }

    fn parallelism(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;
    use crate::network::Network;
    use crate::policy::DistributionPolicy;
    use cq::parse_instance;

    fn two_hop() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn in_memory_transport_round_trips_chunks() {
        let q = two_hop();
        let i = parse_instance("R(a, b). S(b, c). R(c, d). S(d, e).").unwrap();
        let network = Network::with_size(2);
        let policy = ExplicitPolicy::broadcast(&network, &i);
        let dist = policy.distribute(&i);

        for workers in [1, 3] {
            let mut transport = InMemoryTransport::new(workers);
            transport.begin_round(0, &q).unwrap();
            for (node, chunk) in dist.chunks() {
                transport.send_chunk(node, chunk.clone()).unwrap();
            }
            transport.barrier().unwrap();
            for node in network.nodes() {
                let result = transport.recv_chunk(node).unwrap();
                assert_eq!(result.output, cq::evaluate(&q, &i));
            }
        }
    }

    #[test]
    fn recv_without_send_reports_unknown_node() {
        let mut transport = InMemoryTransport::new(1);
        transport.begin_round(0, &two_hop()).unwrap();
        transport.barrier().unwrap();
        let node = Node::numbered(9);
        assert!(matches!(
            transport.recv_chunk(node),
            Err(TransportError::UnknownNode(n)) if n == node
        ));
    }

    #[test]
    fn barrier_before_begin_round_is_a_protocol_error() {
        let mut transport = InMemoryTransport::new(1);
        assert!(matches!(
            transport.barrier(),
            Err(TransportError::Protocol(_))
        ));
    }

    #[test]
    fn node_result_eq_needs_no_derive() {
        // NodeResult intentionally has no PartialEq (durations differ run to
        // run); equality checks go through `.output`.
        let mut transport = InMemoryTransport::new(2);
        transport.begin_round(0, &two_hop()).unwrap();
        transport
            .send_chunk(
                Node::numbered(0),
                parse_instance("R(a, b). S(b, c).").unwrap(),
            )
            .unwrap();
        transport.barrier().unwrap();
        let r = transport.recv_chunk(Node::numbered(0)).unwrap();
        assert_eq!(r.output.len(), 1);
        // a second recv for the same node is an error (results are moved out)
        assert!(transport.recv_chunk(Node::numbered(0)).is_err());
    }
}
