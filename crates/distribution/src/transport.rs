//! The transport abstraction for shipping chunks between rounds.
//!
//! The engines in this crate historically evaluated every node's chunk in
//! the coordinating process — the cluster was simulated in one address
//! space. [`Transport`] factors the *shipping* side of a round out of the
//! engine: the engine computes `dist_P(I)` and hands each node's chunk to
//! the transport, the transport gets the chunk evaluated *somewhere* (in
//! this process, in a worker subprocess, on another machine), and the
//! engine collects the per-node results after a barrier.
//!
//! A round through a transport is always the same four-step conversation:
//!
//! ```text
//! begin_round(r, Q)              announce the round and its query
//! send_chunk(node, chunk) …      ship every node's data chunk
//! barrier()                      wait until every node finished evaluating
//! recv_chunk(node) …             collect every node's local output
//! ```
//!
//! [`InMemoryTransport`] is the refactored in-process path: chunks are
//! buffered, the barrier drains them through the same bounded worker pool
//! the engine always used, and `recv_chunk` hands the results back. The
//! cross-process implementation (`wire::ProcessTransport`) speaks the same
//! conversation over stdio pipes to `pcq-analyze worker` subprocesses.
//!
//! Incremental (semi-naive) rounds replace the chunk pair with
//! `send_delta`/`recv_delta`: the transport keeps **persistent per-node
//! state** across rounds (a [`delta::DeltaNode`]), each round ships only
//! the facts new since the previous round, and each node answers with only
//! the output facts it has never produced before. A delta round numbered 0
//! resets the per-node state, so one transport can serve several runs.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cq::{evaluate_with, ConjunctiveQuery, EvalOptions, Instance};
use delta::{DeltaNode, IndexCache};

use crate::network::Node;

/// Errors raised by a [`Transport`].
///
/// The in-memory transport never fails; process-backed transports surface
/// spawn, pipe and protocol failures through this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// An I/O error talking to a worker (pipe closed, spawn failed, …).
    Io(String),
    /// The peer violated the wire protocol (unexpected message, bad frame).
    Protocol(String),
    /// A chunk was requested for a node the transport never received
    /// (or was asked for twice).
    UnknownNode(Node),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(detail) => write!(f, "transport I/O error: {detail}"),
            TransportError::Protocol(detail) => write!(f, "transport protocol error: {detail}"),
            TransportError::UnknownNode(node) => {
                write!(f, "transport has no result for node {node}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// One node's local evaluation result, as returned by
/// [`Transport::recv_chunk`].
#[derive(Clone, Debug)]
pub struct NodeResult {
    /// The node's local query output.
    pub output: Instance,
    /// Wall-clock time of the node's local evaluation (as measured by
    /// whoever evaluated the chunk — a pool worker or a subprocess).
    pub eval_time: Duration,
}

/// A pluggable mechanism for shipping chunks to nodes and collecting their
/// local evaluation results (see the module docs for the conversation).
///
/// Implementations may evaluate eagerly on `send_chunk` or lazily at the
/// `barrier`; callers must not read results before the barrier returns.
pub trait Transport {
    /// Announces a new round: `query` is what every node will evaluate over
    /// the chunk it is about to receive, and `options` is how — every node
    /// must evaluate with exactly these [`EvalOptions`], so a run behaves
    /// identically whether its nodes live in this process or behind a wire.
    fn begin_round(
        &mut self,
        round: usize,
        query: &ConjunctiveQuery,
        options: EvalOptions,
    ) -> Result<(), TransportError>;

    /// Ships `chunk` — the node's portion of `dist_P(I)` — to `node`.
    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError>;

    /// Blocks until every chunk sent this round has been evaluated.
    fn barrier(&mut self) -> Result<(), TransportError>;

    /// Collects `node`'s local output for the round. Each node's result can
    /// be received exactly once, after the [`Transport::barrier`].
    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError>;

    /// Asks `node` to evaluate the round's query over the shard it
    /// **already holds** — the chunk or accumulated delta state left
    /// resident by a previous round — shipping zero input facts. This is
    /// the reshuffle-elision primitive: when parallel correctness
    /// transfers from the query that produced the resident shards, the new
    /// query's answer is the union of these per-node results. Replies
    /// arrive via [`Transport::recv_chunk`] after the barrier.
    ///
    /// The default declines: a transport must opt into resident rounds.
    fn send_resident(&mut self, node: Node) -> Result<(), TransportError> {
        let _ = node;
        Err(TransportError::Protocol(
            "this transport does not evaluate resident shards".to_string(),
        ))
    }

    /// Ships only the round's **delta** — the facts assigned to `node`
    /// that are new since the previous round — to a node that keeps its
    /// accumulated state across rounds. A delta sent for round 0 starts the
    /// node from an empty state.
    ///
    /// The default declines: a transport must opt into incremental rounds.
    fn send_delta(&mut self, node: Node, delta: Instance) -> Result<(), TransportError> {
        let _ = delta;
        let _ = node;
        Err(TransportError::Protocol(
            "this transport does not ship deltas".to_string(),
        ))
    }

    /// Collects `node`'s **output delta** for the round: only the facts the
    /// node derived for the first time. Same once-per-node-after-barrier
    /// contract as [`Transport::recv_chunk`].
    fn recv_delta(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        Err(TransportError::UnknownNode(node))
    }

    /// Bytes actually serialized onto a process boundary since the last
    /// call (taking resets the counter), in **both** directions: the wire
    /// transports count coordinator→worker chunk/delta frames and the
    /// worker→coordinator result frames they provoke (round-control
    /// frames are O(1) per round and excluded). In-process transports
    /// ship no bytes and report 0 — the honest answer, not an estimate.
    fn take_bytes_shipped(&mut self) -> u64 {
        0
    }

    /// How many chunks the transport can evaluate concurrently (pool
    /// workers, subprocesses, …) — reporting only; `1` means sequential.
    fn parallelism(&self) -> usize {
        1
    }

    /// Cumulative `(hits, misses)` of the transport's shared index cache,
    /// if it keeps one: a hit means a node's chunk reused another node's
    /// indexed instance instead of rebuilding hash indexes from scratch.
    /// Transports without a cache (including the wire transports, where
    /// every worker owns its memory) report `(0, 0)`.
    fn index_cache_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Drains `items` through `f` on a bounded pool: `workers` scoped threads
/// steal the next unclaimed item index from a shared atomic cursor until
/// the queue is empty (`workers <= 1` runs on the calling thread). The
/// transport barrier and the streaming engine path share this loop so their
/// pool semantics cannot drift. Results arrive in completion order.
pub(crate) fn drain_pool<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        mine.push(f(item));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("local evaluation panicked"))
            .collect()
    })
}

/// The in-process [`Transport`]: buffers chunks as they are sent and
/// evaluates them at the barrier on a bounded worker pool of scoped OS
/// threads (`workers <= 1` evaluates sequentially on the calling thread).
///
/// This is the classic simulated-cluster path of [`OneRoundEngine`]
/// refactored behind the transport seam; it is infallible and allocates
/// nothing beyond the chunks themselves.
///
/// [`OneRoundEngine`]: crate::OneRoundEngine
pub struct InMemoryTransport {
    workers: usize,
    query: Option<ConjunctiveQuery>,
    pending: Vec<(Node, Instance)>,
    pending_deltas: Vec<(Node, Instance)>,
    pending_resident: Vec<Node>,
    ready: BTreeMap<Node, NodeResult>,
    /// Persistent per-node incremental state (delta rounds only); cleared
    /// when a delta round numbered 0 begins.
    nodes: BTreeMap<Node, DeltaNode>,
    /// The last full chunk each node evaluated (chunk rounds only) — the
    /// node's resident shard, served back by [`Transport::send_resident`]
    /// rounds. Shared `Arc`s, so a broadcast round pins one instance, not
    /// one per node.
    resident: BTreeMap<Node, std::sync::Arc<Instance>>,
    /// Shares one indexed instance between equal chunks (a broadcast round
    /// evaluates the same chunk at every node). Cleared at every
    /// `begin_round`: chunks can only repeat within a round, so holding
    /// them longer would pin memory without ever hitting.
    cache: IndexCache,
    /// The transport's metrics registry; the index cache's hit/miss
    /// counters live here (`index_cache_hits` / `index_cache_misses`),
    /// so [`InMemoryTransport::cache_stats`] and the registry report one
    /// value.
    registry: std::sync::Arc<obs::Registry>,
    round: usize,
    eval_options: EvalOptions,
}

impl InMemoryTransport {
    /// A transport evaluating on a pool of up to `workers` threads.
    pub fn new(workers: usize) -> InMemoryTransport {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let cache = IndexCache::with_counters(
            16,
            registry.counter("index_cache_hits"),
            registry.counter("index_cache_misses"),
        );
        InMemoryTransport {
            workers: workers.max(1),
            query: None,
            pending: Vec::new(),
            pending_deltas: Vec::new(),
            pending_resident: Vec::new(),
            ready: BTreeMap::new(),
            nodes: BTreeMap::new(),
            resident: BTreeMap::new(),
            cache,
            registry,
            round: 0,
            eval_options: EvalOptions::default(),
        }
    }

    /// Index-cache statistics: `(hits, misses)` of the shared chunk cache
    /// (diagnostic hook for tests and benches).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// The transport's metrics registry — the single source of truth
    /// behind [`InMemoryTransport::cache_stats`] and any future
    /// transport-level counters.
    pub fn registry(&self) -> std::sync::Arc<obs::Registry> {
        self.registry.clone()
    }

    /// Evaluates the buffered full chunks on the pool, sharing indexes
    /// between equal chunks through the cache.
    ///
    /// Only chunks whose size another chunk of the round repeats go
    /// through the cache — distinct sizes cannot be equal, so hashing them
    /// (and pinning them in the cache) would be pure overhead on the
    /// common partitioning policies. Replicating policies (broadcast) get
    /// the full benefit: their equal-sized, equal chunks collapse onto one
    /// shared instance whose indexes are built once.
    fn drain_chunks(&mut self, query: &ConjunctiveQuery) -> Vec<(Node, NodeResult)> {
        let pending = std::mem::take(&mut self.pending);
        let mut size_counts: BTreeMap<usize, usize> = BTreeMap::new();
        for (_, chunk) in &pending {
            *size_counts.entry(chunk.len()).or_default() += 1;
        }
        let jobs: Vec<(Node, std::sync::Arc<Instance>)> = pending
            .into_iter()
            .map(|(node, chunk)| {
                let shared = if size_counts[&chunk.len()] > 1 {
                    self.cache.warm_owned(chunk)
                } else {
                    std::sync::Arc::new(chunk)
                };
                // The chunk becomes the node's resident shard (replacing
                // any incremental state — a full chunk supersedes it).
                self.nodes.remove(&node);
                self.resident.insert(node, shared.clone());
                (node, shared)
            })
            .collect();
        let workers = self.workers.min(jobs.len()).max(1);
        let options = self.eval_options;
        drain_pool(&jobs, workers, |(node, chunk)| {
            let _span = obs::span!("eval_chunk", node = node, facts = chunk.len());
            let start = Instant::now();
            let output = evaluate_with(query, chunk, options);
            (
                *node,
                NodeResult {
                    output,
                    eval_time: start.elapsed(),
                },
            )
        })
    }

    /// Runs one incremental step per buffered delta on the pool. Each
    /// node's persistent [`DeltaNode`] is taken out of the state map for
    /// the duration of its step and reinstated with the results.
    fn drain_deltas(&mut self, query: &ConjunctiveQuery) -> Vec<(Node, NodeResult)> {
        let pending = std::mem::take(&mut self.pending_deltas);
        let jobs: Vec<Mutex<Option<(Node, Instance, DeltaNode)>>> = pending
            .into_iter()
            .map(|(node, chunk)| {
                let state = self.nodes.remove(&node).unwrap_or_default();
                Mutex::new(Some((node, chunk, state)))
            })
            .collect();
        let workers = self.workers.min(jobs.len()).max(1);
        let results = drain_pool(&jobs, workers, |slot| {
            let (node, chunk, mut state) = slot
                .lock()
                .expect("delta job mutex poisoned")
                .take()
                .expect("each delta job is drained exactly once");
            let _span = obs::span!("eval_delta", node = node, delta_facts = chunk.len());
            let start = Instant::now();
            let fresh = state.step(query, &chunk);
            (node, state, fresh, start.elapsed())
        });
        results
            .into_iter()
            .map(|(node, state, output, eval_time)| {
                self.nodes.insert(node, state);
                (node, NodeResult { output, eval_time })
            })
            .collect()
    }

    /// Evaluates the round's query over each requested node's resident
    /// shard: the accumulated state of its [`DeltaNode`] if the node last
    /// ran incremental rounds, else the last full chunk it evaluated, else
    /// the empty instance (a node that was never shipped anything holds
    /// nothing).
    fn drain_resident(&mut self, query: &ConjunctiveQuery) -> Vec<(Node, NodeResult)> {
        let pending = std::mem::take(&mut self.pending_resident);
        let empty = Instance::new();
        let jobs: Vec<(Node, &Instance)> = pending
            .into_iter()
            .map(|node| {
                let shard = self
                    .nodes
                    .get(&node)
                    .map(|state| state.data().full())
                    .or_else(|| self.resident.get(&node).map(|arc| arc.as_ref()))
                    .unwrap_or(&empty);
                (node, shard)
            })
            .collect();
        let workers = self.workers.min(jobs.len()).max(1);
        let options = self.eval_options;
        drain_pool(&jobs, workers, |(node, shard)| {
            let _span = obs::span!("eval_resident", node = node, facts = shard.len());
            let start = Instant::now();
            let output = evaluate_with(query, shard, options);
            (
                *node,
                NodeResult {
                    output,
                    eval_time: start.elapsed(),
                },
            )
        })
    }
}

impl Transport for InMemoryTransport {
    fn begin_round(
        &mut self,
        round: usize,
        query: &ConjunctiveQuery,
        options: EvalOptions,
    ) -> Result<(), TransportError> {
        self.query = Some(query.clone());
        self.round = round;
        self.eval_options = options;
        self.pending.clear();
        self.pending_deltas.clear();
        self.pending_resident.clear();
        self.ready.clear();
        // Chunks can only repeat within one round; drop last round's.
        self.cache.clear();
        Ok(())
    }

    fn send_chunk(&mut self, node: Node, chunk: Instance) -> Result<(), TransportError> {
        self.registry
            .histogram("chunk_facts")
            .record(chunk.len() as u64);
        self.pending.push((node, chunk));
        Ok(())
    }

    fn send_resident(&mut self, node: Node) -> Result<(), TransportError> {
        self.pending_resident.push(node);
        Ok(())
    }

    fn send_delta(&mut self, node: Node, delta: Instance) -> Result<(), TransportError> {
        self.registry
            .histogram("chunk_facts")
            .record(delta.len() as u64);
        if self.round == 0 {
            // Round 0 opens a fresh incremental run: the node starts over.
            self.nodes.remove(&node);
        }
        self.pending_deltas.push((node, delta));
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        let query = self
            .query
            .clone()
            .ok_or_else(|| TransportError::Protocol("barrier before begin_round".into()))?;
        let _span = obs::span!(
            "barrier",
            round = self.round,
            chunks = self.pending.len() + self.pending_deltas.len() + self.pending_resident.len()
        );
        // The pool is bounded by the chunk count: asking for more workers
        // than chunks costs nothing.
        let full = self.drain_chunks(&query);
        self.ready.extend(full);
        let incremental = self.drain_deltas(&query);
        self.ready.extend(incremental);
        let resident = self.drain_resident(&query);
        self.ready.extend(resident);
        Ok(())
    }

    fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.ready
            .remove(&node)
            .ok_or(TransportError::UnknownNode(node))
    }

    fn recv_delta(&mut self, node: Node) -> Result<NodeResult, TransportError> {
        self.recv_chunk(node)
    }

    fn parallelism(&self) -> usize {
        self.workers
    }

    fn index_cache_stats(&self) -> (u64, u64) {
        self.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitPolicy;
    use crate::network::Network;
    use crate::policy::DistributionPolicy;
    use cq::parse_instance;

    fn two_hop() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("T(x, z) :- R(x, y), S(y, z).").unwrap()
    }

    #[test]
    fn in_memory_transport_round_trips_chunks() {
        let q = two_hop();
        let i = parse_instance("R(a, b). S(b, c). R(c, d). S(d, e).").unwrap();
        let network = Network::with_size(2);
        let policy = ExplicitPolicy::broadcast(&network, &i);
        let dist = policy.distribute(&i);

        for workers in [1, 3] {
            let mut transport = InMemoryTransport::new(workers);
            transport
                .begin_round(0, &q, EvalOptions::default())
                .unwrap();
            for (node, chunk) in dist.chunks() {
                transport.send_chunk(node, chunk.clone()).unwrap();
            }
            transport.barrier().unwrap();
            for node in network.nodes() {
                let result = transport.recv_chunk(node).unwrap();
                assert_eq!(result.output, cq::evaluate(&q, &i));
            }
        }
    }

    #[test]
    fn recv_without_send_reports_unknown_node() {
        let mut transport = InMemoryTransport::new(1);
        transport
            .begin_round(0, &two_hop(), EvalOptions::default())
            .unwrap();
        transport.barrier().unwrap();
        let node = Node::numbered(9);
        assert!(matches!(
            transport.recv_chunk(node),
            Err(TransportError::UnknownNode(n)) if n == node
        ));
    }

    #[test]
    fn barrier_before_begin_round_is_a_protocol_error() {
        let mut transport = InMemoryTransport::new(1);
        assert!(matches!(
            transport.barrier(),
            Err(TransportError::Protocol(_))
        ));
    }

    #[test]
    fn delta_rounds_accumulate_state_across_rounds() {
        let q = two_hop();
        let node = Node::numbered(0);
        let mut transport = InMemoryTransport::new(2);

        // Round 0: R only — no joins yet.
        transport
            .begin_round(0, &q, EvalOptions::default())
            .unwrap();
        transport
            .send_delta(node, parse_instance("R(a, b).").unwrap())
            .unwrap();
        transport.barrier().unwrap();
        assert!(transport.recv_delta(node).unwrap().output.is_empty());

        // Round 1: the S half arrives; the join closes against the state
        // retained from round 0.
        transport
            .begin_round(1, &q, EvalOptions::default())
            .unwrap();
        transport
            .send_delta(node, parse_instance("S(b, c).").unwrap())
            .unwrap();
        transport.barrier().unwrap();
        let result = transport.recv_delta(node).unwrap();
        assert_eq!(result.output, parse_instance("T(a, c).").unwrap());

        // Round 2: a re-announced fact derives nothing new.
        transport
            .begin_round(2, &q, EvalOptions::default())
            .unwrap();
        transport
            .send_delta(node, parse_instance("R(a, b).").unwrap())
            .unwrap();
        transport.barrier().unwrap();
        assert!(transport.recv_delta(node).unwrap().output.is_empty());
    }

    #[test]
    fn delta_round_zero_resets_per_node_state() {
        let q = two_hop();
        let node = Node::numbered(0);
        let mut transport = InMemoryTransport::new(1);
        for _run in 0..2 {
            // If state leaked between runs, the second run's round-1 output
            // would be empty (T(a, c) already shipped by the first run).
            transport
                .begin_round(0, &q, EvalOptions::default())
                .unwrap();
            transport
                .send_delta(node, parse_instance("R(a, b).").unwrap())
                .unwrap();
            transport.barrier().unwrap();
            assert!(transport.recv_delta(node).unwrap().output.is_empty());

            transport
                .begin_round(1, &q, EvalOptions::default())
                .unwrap();
            transport
                .send_delta(node, parse_instance("S(b, c).").unwrap())
                .unwrap();
            transport.barrier().unwrap();
            assert_eq!(
                transport.recv_delta(node).unwrap().output,
                parse_instance("T(a, c).").unwrap()
            );
        }
    }

    #[test]
    fn broadcast_chunks_share_one_cached_instance() {
        // Every node of a broadcast round receives an equal chunk: the
        // index cache must collapse them onto one entry (nodes - 1 hits).
        let q = two_hop();
        let i = parse_instance("R(a, b). S(b, c). R(c, d). S(d, e).").unwrap();
        let network = Network::with_size(4);
        let policy = ExplicitPolicy::broadcast(&network, &i);
        let dist = policy.distribute(&i);
        let mut transport = InMemoryTransport::new(2);
        transport
            .begin_round(0, &q, EvalOptions::default())
            .unwrap();
        for (node, chunk) in dist.chunks() {
            transport.send_chunk(node, chunk.clone()).unwrap();
        }
        transport.barrier().unwrap();
        let (hits, misses) = transport.cache_stats();
        assert_eq!((hits, misses), (3, 1), "4 equal chunks, one build");
        for node in network.nodes() {
            assert_eq!(
                transport.recv_chunk(node).unwrap().output,
                cq::evaluate(&q, &i)
            );
        }
    }

    #[test]
    fn distinct_size_chunks_never_touch_the_cache() {
        // A partitioning policy's chunks (all different sizes here) cannot
        // be equal, so the transport must not pay to hash or retain them.
        let q = two_hop();
        let mut transport = InMemoryTransport::new(2);
        transport
            .begin_round(0, &q, EvalOptions::default())
            .unwrap();
        transport
            .send_chunk(Node::numbered(0), parse_instance("R(a, b).").unwrap())
            .unwrap();
        transport
            .send_chunk(
                Node::numbered(1),
                parse_instance("R(a, b). S(b, c).").unwrap(),
            )
            .unwrap();
        transport.barrier().unwrap();
        assert_eq!(transport.cache_stats(), (0, 0), "no chunk may be hashed");
        assert_eq!(
            transport.recv_chunk(Node::numbered(1)).unwrap().output,
            parse_instance("T(a, c).").unwrap()
        );
    }

    #[test]
    fn default_transport_declines_deltas() {
        // A minimal transport that opts out of the delta protocol must
        // surface the default errors, not panic or mis-route.
        struct ChunksOnly;
        impl Transport for ChunksOnly {
            fn begin_round(
                &mut self,
                _round: usize,
                _query: &ConjunctiveQuery,
                _options: EvalOptions,
            ) -> Result<(), TransportError> {
                Ok(())
            }
            fn send_chunk(&mut self, _node: Node, _chunk: Instance) -> Result<(), TransportError> {
                Ok(())
            }
            fn barrier(&mut self) -> Result<(), TransportError> {
                Ok(())
            }
            fn recv_chunk(&mut self, node: Node) -> Result<NodeResult, TransportError> {
                Err(TransportError::UnknownNode(node))
            }
        }
        let mut t = ChunksOnly;
        assert!(matches!(
            t.send_delta(Node::numbered(0), Instance::new()),
            Err(TransportError::Protocol(_))
        ));
        assert!(matches!(
            t.recv_delta(Node::numbered(0)),
            Err(TransportError::UnknownNode(_))
        ));
        assert!(matches!(
            t.send_resident(Node::numbered(0)),
            Err(TransportError::Protocol(_))
        ));
        assert_eq!(t.take_bytes_shipped(), 0);
    }

    #[test]
    fn resident_rounds_reuse_chunks_from_the_previous_query() {
        let loop_q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z), R(y, y).").unwrap();
        let path_q = ConjunctiveQuery::parse("T(x, z) :- R(x, y), R(y, z).").unwrap();
        let i = parse_instance("R(a, a). R(a, b). R(b, c).").unwrap();
        let node = Node::numbered(0);
        let mut transport = InMemoryTransport::new(2);

        transport
            .begin_round(0, &loop_q, EvalOptions::default())
            .unwrap();
        transport.send_chunk(node, i.clone()).unwrap();
        transport.barrier().unwrap();
        let first = transport.recv_chunk(node).unwrap();
        assert_eq!(first.output, cq::evaluate(&loop_q, &i));

        // The next query runs over the shard the chunk left behind — no
        // facts travel in this round.
        transport
            .begin_round(0, &path_q, EvalOptions::default())
            .unwrap();
        transport.send_resident(node).unwrap();
        transport.barrier().unwrap();
        let second = transport.recv_chunk(node).unwrap();
        assert_eq!(second.output, cq::evaluate(&path_q, &i));
    }

    #[test]
    fn resident_rounds_prefer_accumulated_delta_state() {
        let q = two_hop();
        let node = Node::numbered(0);
        let mut transport = InMemoryTransport::new(1);

        transport
            .begin_round(0, &q, EvalOptions::default())
            .unwrap();
        transport
            .send_delta(node, parse_instance("R(a, b).").unwrap())
            .unwrap();
        transport.barrier().unwrap();
        transport.recv_delta(node).unwrap();
        transport
            .begin_round(1, &q, EvalOptions::default())
            .unwrap();
        transport
            .send_delta(node, parse_instance("S(b, c).").unwrap())
            .unwrap();
        transport.barrier().unwrap();
        transport.recv_delta(node).unwrap();

        // The resident shard is the full accumulated state, not just the
        // last delta.
        transport
            .begin_round(0, &q, EvalOptions::default())
            .unwrap();
        transport.send_resident(node).unwrap();
        transport.barrier().unwrap();
        assert_eq!(
            transport.recv_chunk(node).unwrap().output,
            parse_instance("T(a, c).").unwrap()
        );
    }

    #[test]
    fn resident_round_on_an_unknown_node_yields_empty_output() {
        let mut transport = InMemoryTransport::new(1);
        transport
            .begin_round(0, &two_hop(), EvalOptions::default())
            .unwrap();
        transport.send_resident(Node::numbered(7)).unwrap();
        transport.barrier().unwrap();
        assert!(transport
            .recv_chunk(Node::numbered(7))
            .unwrap()
            .output
            .is_empty());
    }

    #[test]
    fn node_result_eq_needs_no_derive() {
        // NodeResult intentionally has no PartialEq (durations differ run to
        // run); equality checks go through `.output`.
        let mut transport = InMemoryTransport::new(2);
        transport
            .begin_round(0, &two_hop(), EvalOptions::default())
            .unwrap();
        transport
            .send_chunk(
                Node::numbered(0),
                parse_instance("R(a, b). S(b, c).").unwrap(),
            )
            .unwrap();
        transport.barrier().unwrap();
        let r = transport.recv_chunk(Node::numbered(0)).unwrap();
        assert_eq!(r.output.len(), 1);
        // a second recv for the same node is an error (results are moved out)
        assert!(transport.recv_chunk(Node::numbered(0)).is_err());
    }
}
